//! Per-endpoint service metrics: lock-free counters and log₂-bucketed
//! latency histograms, surfaced through the `stats` endpoint and the
//! `snakes serve --metrics-every` ticker.

use crate::protocol::{BatchingStatsBody, EndpointStatsBody};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram buckets: bucket `i` counts latencies in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1 µs`). 40 buckets cover
/// up to ~2^39 µs ≈ 6.4 days — far beyond any deadline.
const BUCKETS: usize = 40;

/// A fixed-bucket log₂ latency histogram with relaxed atomic counters.
/// Quantiles are upper bounds of the answering bucket — at most 2× the
/// true value, which is the right fidelity for load-shedding decisions
/// and trend lines, at zero contention.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_of(us: u64) -> usize {
        ((u64::BITS - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Records one latency sample.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_of(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The maximum recorded latency in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us.load(Ordering::Relaxed)
    }

    /// The upper bound (µs) of the bucket holding the `q`-quantile sample,
    /// for `q` in `[0, 1]`. Zero when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max_us()
    }
}

/// The service endpoints tracked individually. `Other` absorbs unknown
/// endpoint names so a misbehaving client cannot grow the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `recommend`.
    Recommend,
    /// `price`.
    Price,
    /// `drift`.
    Drift,
    /// `explain`.
    Explain,
    /// `recluster`.
    Recluster,
    /// `recluster_status`.
    ReclusterStatus,
    /// `recluster_abort`.
    ReclusterAbort,
    /// `stats`.
    Stats,
    /// `ping`.
    Ping,
    /// `shutdown`.
    Shutdown,
    /// Anything else.
    Other,
}

/// All endpoints, in wire-stable reporting order.
pub const ENDPOINTS: [Endpoint; 11] = [
    Endpoint::Recommend,
    Endpoint::Price,
    Endpoint::Drift,
    Endpoint::Explain,
    Endpoint::Recluster,
    Endpoint::ReclusterStatus,
    Endpoint::ReclusterAbort,
    Endpoint::Stats,
    Endpoint::Ping,
    Endpoint::Shutdown,
    Endpoint::Other,
];

impl Endpoint {
    /// Maps a wire endpoint name.
    pub fn of(name: &str) -> Self {
        match name {
            "recommend" => Endpoint::Recommend,
            "price" => Endpoint::Price,
            "drift" => Endpoint::Drift,
            "explain" => Endpoint::Explain,
            "recluster" => Endpoint::Recluster,
            "recluster_status" => Endpoint::ReclusterStatus,
            "recluster_abort" => Endpoint::ReclusterAbort,
            "stats" => Endpoint::Stats,
            "ping" => Endpoint::Ping,
            "shutdown" => Endpoint::Shutdown,
            _ => Endpoint::Other,
        }
    }

    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Recommend => "recommend",
            Endpoint::Price => "price",
            Endpoint::Drift => "drift",
            Endpoint::Explain => "explain",
            Endpoint::Recluster => "recluster",
            Endpoint::ReclusterStatus => "recluster_status",
            Endpoint::ReclusterAbort => "recluster_abort",
            Endpoint::Stats => "stats",
            Endpoint::Ping => "ping",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    fn index(self) -> usize {
        ENDPOINTS
            .iter()
            .position(|e| *e == self)
            .expect("endpoint listed")
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    /// Completed requests (success or error).
    pub requests: AtomicU64,
    /// Requests answered with an error body.
    pub errors: AtomicU64,
    /// Requests rejected at admission (queue full).
    pub shed: AtomicU64,
    /// Requests that exceeded their deadline.
    pub deadline_exceeded: AtomicU64,
    /// End-to-end latency (admission to response ready).
    pub latency: Histogram,
}

impl EndpointMetrics {
    /// The wire stats body for this endpoint.
    pub fn to_body(&self, endpoint: Endpoint) -> EndpointStatsBody {
        EndpointStatsBody {
            endpoint: endpoint.name().into(),
            requests: self.requests.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            p50_us: self.latency.quantile_us(0.50),
            p99_us: self.latency.quantile_us(0.99),
            max_us: self.latency.max_us(),
        }
    }
}

/// The per-endpoint metrics registry shared by every connection and
/// worker.
#[derive(Debug, Default)]
pub struct Registry {
    per_endpoint: [EndpointMetrics; ENDPOINTS.len()],
    /// Requests currently admitted and queued (not yet executing).
    pub queue_depth: AtomicU64,
    /// Requests admitted to the queue over the server's lifetime. After a
    /// full drain this must equal [`Registry::jobs_finished`] — an
    /// admitted job that never finishes was dropped on the floor.
    pub admitted: AtomicU64,
    /// Admitted jobs a worker finished (produced a response for, whether
    /// ok, errored, deadline-expired, or panic-contained).
    pub jobs_finished: AtomicU64,
    /// Responses replayed from the idempotency cache.
    pub deduplicated: AtomicU64,
    /// First executions stored under an idempotency key.
    pub idempotency_stored: AtomicU64,
    /// Handler panics caught in workers and surfaced in-band.
    pub panics_caught: AtomicU64,
    /// Distinct same-tick coalescing groups (a leader that gained at
    /// least one follower).
    pub batches: AtomicU64,
    /// Requests that reused a same-tick leader's result instead of
    /// running their own SignatureCache / recommendation pass.
    pub batch_coalesced: AtomicU64,
    /// Exponentially weighted mean of per-request execution time, stored
    /// as `f64` nanoseconds in bits. Zero until the first sample. Feeds
    /// [`Registry::suggested_retry_after_ms`].
    pub service_ns_ewma: AtomicU64,
}

/// EWMA smoothing factor for [`Registry::service_ns_ewma`]: each sample
/// contributes 1/8 — stable under bursts yet tracks load shifts within a
/// few dozen requests.
const EWMA_ALPHA: f64 = 0.125;

/// Ceiling for drain-rate-scaled retry hints (10 s): a saturated queue
/// should back clients off firmly, not strand them for minutes.
const MAX_RETRY_AFTER_MS: u64 = 10_000;

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counters for `endpoint`.
    pub fn endpoint(&self, endpoint: Endpoint) -> &EndpointMetrics {
        &self.per_endpoint[endpoint.index()]
    }

    /// Records a completed request.
    pub fn record_completion(&self, endpoint: Endpoint, latency: Duration, ok: bool) {
        let m = self.endpoint(endpoint);
        m.requests.fetch_add(1, Ordering::Relaxed);
        if !ok {
            m.errors.fetch_add(1, Ordering::Relaxed);
        }
        m.latency.record(latency);
    }

    /// Records an admission rejection (the request never ran).
    pub fn record_shed(&self, endpoint: Endpoint) {
        self.endpoint(endpoint).shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a deadline miss.
    pub fn record_deadline(&self, endpoint: Endpoint) {
        self.endpoint(endpoint)
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Records an idempotent replay (a stored response was returned).
    pub fn record_deduplicated(&self) {
        self.deduplicated.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a first execution stored under an idempotency key.
    pub fn record_idempotency_stored(&self) {
        self.idempotency_stored.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a caught handler panic.
    pub fn record_panic_caught(&self) {
        self.panics_caught.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a batch follower: a request that reused a same-tick
    /// leader's result. `counted` is the leader entry's "already counted
    /// as a batch" flag — the first follower also counts the group.
    pub fn record_batch_follower(&self, counted: &mut bool) {
        if !*counted {
            *counted = true;
            self.batches.fetch_add(1, Ordering::Relaxed);
        }
        self.batch_coalesced.fetch_add(1, Ordering::Relaxed);
    }

    /// The `stats.batching` wire body.
    pub fn batching_body(&self) -> BatchingStatsBody {
        BatchingStatsBody {
            batches: self.batches.load(Ordering::Relaxed),
            coalesced: self.batch_coalesced.load(Ordering::Relaxed),
        }
    }

    /// Folds one measured execution time into the service-time EWMA.
    pub fn record_service_time(&self, elapsed: Duration) {
        let sample = elapsed.as_nanos().min(u128::from(u64::MAX)) as f64;
        // Racy read-modify-write is fine: the EWMA feeds an advisory
        // retry hint, and losing a sample under contention skews nothing.
        let prev = f64::from_bits(self.service_ns_ewma.load(Ordering::Relaxed));
        let next = if prev == 0.0 {
            sample
        } else {
            prev + EWMA_ALPHA * (sample - prev)
        };
        self.service_ns_ewma
            .store(next.to_bits(), Ordering::Relaxed);
    }

    /// A load-shed retry hint scaled to the measured queue drain rate:
    /// roughly how long until `queue_depth` requests ahead of the retry
    /// have been served, given the smoothed per-request service time.
    /// Falls back to `fallback` (the configured constant) before any
    /// sample lands; always at least 1 ms and at most 10 s.
    pub fn suggested_retry_after_ms(&self, fallback: u64) -> u64 {
        let ewma_ns = f64::from_bits(self.service_ns_ewma.load(Ordering::Relaxed));
        if ewma_ns <= 0.0 {
            return fallback.clamp(1, MAX_RETRY_AFTER_MS);
        }
        let depth = self.queue_depth.load(Ordering::Relaxed);
        let drain_ms = ((depth + 1) as f64 * ewma_ns / 1e6).ceil() as u64;
        drain_ms.clamp(1, MAX_RETRY_AFTER_MS)
    }

    /// Wire bodies for every endpoint, in [`ENDPOINTS`] order.
    pub fn to_bodies(&self) -> Vec<EndpointStatsBody> {
        ENDPOINTS
            .iter()
            .map(|&e| self.endpoint(e).to_body(e))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0);
        for us in [1u64, 2, 3, 100, 1000, 100_000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.max_us(), 100_000);
        // p50 falls in the bucket holding the 3rd sample (3 µs → [2,4)).
        assert_eq!(h.quantile_us(0.5), 4);
        // p100 upper-bounds the largest sample.
        assert!(h.quantile_us(1.0) >= 100_000);
        // Monotone in q.
        assert!(h.quantile_us(0.99) >= h.quantile_us(0.5));
    }

    #[test]
    fn endpoint_mapping_is_total() {
        assert_eq!(Endpoint::of("price"), Endpoint::Price);
        assert_eq!(Endpoint::of("nope"), Endpoint::Other);
        for e in ENDPOINTS {
            assert_eq!(Endpoint::of(e.name()), e);
        }
    }

    #[test]
    fn registry_counts() {
        let r = Registry::new();
        r.record_completion(Endpoint::Price, Duration::from_micros(10), true);
        r.record_completion(Endpoint::Price, Duration::from_micros(20), false);
        r.record_shed(Endpoint::Price);
        r.record_deadline(Endpoint::Price);
        let body = r.endpoint(Endpoint::Price).to_body(Endpoint::Price);
        assert_eq!(body.requests, 2);
        assert_eq!(body.errors, 1);
        assert_eq!(body.shed, 1);
        assert_eq!(body.deadline_exceeded, 1);
        assert!(body.p50_us > 0);
        let bodies = r.to_bodies();
        assert_eq!(bodies.len(), ENDPOINTS.len());
        assert_eq!(bodies[1].endpoint, "price");
    }

    #[test]
    fn batching_counters_count_groups_and_followers() {
        let r = Registry::new();
        let mut counted = false;
        r.record_batch_follower(&mut counted);
        r.record_batch_follower(&mut counted);
        let mut counted2 = false;
        r.record_batch_follower(&mut counted2);
        let body = r.batching_body();
        assert_eq!(body.batches, 2, "two distinct leader entries");
        assert_eq!(body.coalesced, 3, "three followers total");
    }

    #[test]
    fn retry_hint_scales_with_queue_depth_and_service_time() {
        let r = Registry::new();
        // No samples yet: the configured constant wins.
        assert_eq!(r.suggested_retry_after_ms(50), 50);
        // 2 ms per request, 9 queued ahead → ~20 ms to drain past us.
        for _ in 0..64 {
            r.record_service_time(Duration::from_millis(2));
        }
        r.queue_depth.store(9, Ordering::Relaxed);
        let hint = r.suggested_retry_after_ms(50);
        assert!((15..=25).contains(&hint), "hint {hint} ∉ [15, 25]");
        // Deeper queue → proportionally longer hint.
        r.queue_depth.store(99, Ordering::Relaxed);
        let deeper = r.suggested_retry_after_ms(50);
        assert!(deeper > hint * 5, "deeper {deeper} vs {hint}");
        // Never below 1 ms, never above the 10 s ceiling.
        r.queue_depth.store(u64::MAX / 2, Ordering::Relaxed);
        assert_eq!(r.suggested_retry_after_ms(50), 10_000);
    }
}
