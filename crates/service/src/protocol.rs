//! The versioned JSON-lines wire protocol of the clustering advisor
//! service, plus the schema/workload input specs it shares with the CLI.
//!
//! One request per line, one response per line, both UTF-8 JSON documents.
//! Every request carries the protocol version (`v`), an opaque client
//! correlation id (`id`, echoed verbatim), and the endpoint name.
//!
//! **Version 2** unifies the evaluation inputs — which version 1 grew by
//! accretion as flat top-level fields — into one shared [`EvalEnvelope`]
//! (`env`): `schema`, `workload`, `strategy`, `measure`, `eval` travel
//! together for every evaluating endpoint. Version 1 frames (flat fields,
//! `v: 1`) remain fully supported: the server resolves each input through
//! [`Request::schema_spec`] and friends, which prefer the envelope and
//! fall back to the flat field, and answers with the request's own `v` so
//! v1 clients see v1-shaped responses (the extra v2 fields are skipped or
//! ignored under the forward-compat contract pinned by the golden-fixture
//! tests).
//!
//! The endpoints:
//!
//! | endpoint    | input                                   | output |
//! |-------------|-----------------------------------------|--------|
//! | `recommend` | `env.schema`, `env.workload`            | [`RecommendationBody`] |
//! | `price`     | `env.schema`, `env.workload`, `env.strategy`, opt. `env.measure`, `env.eval` | [`PriceBody`] |
//! | `drift`     | `session` (+ `env.schema`/`env.workload` once), `deltas` | [`DriftBody`] |
//! | `explain`   | `env.schema`, `env.workload`, opt. `env.strategy` | [`snakes_core::explain::CostExplanation`] |
//! | `recluster` | `session` (job name), `env.schema`, `env.workload`, `env.measure`, [`ReclusterSpec`] | [`ReclusterBody`] |
//! | `recluster_status` | `session` (job name)             | [`ReclusterBody`] |
//! | `recluster_abort`  | `session` (job name)             | [`ReclusterBody`] |
//! | `stats`     | —                                       | [`StatsBody`] |
//! | `ping`      | —                                       | `ok` only |
//! | `shutdown`  | —                                       | `ok`, then graceful drain |

use serde::{Deserialize, Serialize};
use snakes_core::eval::EvalOptions;
use snakes_core::explain::CostExplanation;
use snakes_core::lattice::{Class, LatticeShape};
use snakes_core::schema::{Hierarchy, StarSchema};
use snakes_core::workload::{WeightUpdate, Workload};

/// The wire protocol version this crate speaks.
pub const PROTOCOL_VERSION: u32 = 2;

/// The oldest protocol version the server still accepts. Version-1 frames
/// (flat evaluation fields instead of the [`EvalEnvelope`]) are upgraded
/// on admission and answered in version-1 shape.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

fn default_version() -> u32 {
    PROTOCOL_VERSION
}

#[allow(clippy::trivially_copy_pass_by_ref)]
fn is_false(b: &bool) -> bool {
    !*b
}

// ---------------------------------------------------------------------------
// Input specs (shared with the CLI's file-based commands).
// ---------------------------------------------------------------------------

/// Errors from spec parsing and validation.
#[derive(Debug)]
pub enum SpecError {
    /// Malformed JSON.
    Json(serde_json::Error),
    /// Structurally valid JSON that does not describe a valid object.
    Invalid(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "invalid JSON: {e}"),
            SpecError::Invalid(m) => write!(f, "invalid specification: {m}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl From<serde_json::Error> for SpecError {
    fn from(e: serde_json::Error) -> Self {
        SpecError::Json(e)
    }
}

impl From<snakes_core::error::Error> for SpecError {
    fn from(e: snakes_core::error::Error) -> Self {
        SpecError::Invalid(e.to_string())
    }
}

/// `{"dims": [{"name": ..., "fanouts": [...]}]}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SchemaSpec {
    /// The dimensions, leaf-adjacent fanouts first.
    pub dims: Vec<DimSpec>,
}

/// One dimension of a [`SchemaSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimSpec {
    /// Dimension name.
    pub name: String,
    /// Per-level fanouts, `f(d, 1)` first.
    pub fanouts: Vec<u64>,
}

impl SchemaSpec {
    /// Parses and validates a schema document.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON or invalid hierarchies.
    pub fn parse(json: &str) -> Result<StarSchema, SpecError> {
        let spec: SchemaSpec = serde_json::from_str(json)?;
        spec.build()
    }

    /// Validates an already-deserialized spec into a [`StarSchema`].
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on invalid hierarchies.
    pub fn build(self) -> Result<StarSchema, SpecError> {
        let dims = self
            .dims
            .into_iter()
            .map(|d| Hierarchy::new(d.name, d.fanouts))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(StarSchema::new(dims)?)
    }

    /// The spec describing `schema` (the inverse of [`SchemaSpec::build`]).
    pub fn of(schema: &StarSchema) -> Self {
        SchemaSpec {
            dims: schema
                .dims()
                .iter()
                .map(|h| DimSpec {
                    name: h.name().to_string(),
                    fanouts: h.fanouts().to_vec(),
                })
                .collect(),
        }
    }

    /// Renders a schema back to its JSON spec.
    pub fn render(schema: &StarSchema) -> String {
        serde_json::to_string_pretty(&Self::of(schema)).expect("spec serializes")
    }
}

/// A sparse class weight.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassWeight {
    /// Level per dimension.
    pub class: Vec<usize>,
    /// Non-negative weight (normalized across entries).
    pub weight: f64,
}

/// One of three workload encodings (see crate docs).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Dense probabilities in rank order.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub probs: Option<Vec<f64>>,
    /// Sparse class weights.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub classes: Option<Vec<ClassWeight>>,
    /// Per-dimension level distributions, multiplied.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub marginals: Option<Vec<Vec<f64>>>,
}

impl WorkloadSpec {
    /// Parses and validates a workload document against a lattice.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on malformed JSON, multiple encodings, or an
    /// invalid distribution.
    pub fn parse(json: &str, shape: &LatticeShape) -> Result<Workload, SpecError> {
        let spec: WorkloadSpec = serde_json::from_str(json)?;
        spec.build(shape)
    }

    /// Validates an already-deserialized spec against a lattice.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] on multiple encodings or an invalid
    /// distribution.
    pub fn build(self, shape: &LatticeShape) -> Result<Workload, SpecError> {
        let provided = [
            self.probs.is_some(),
            self.classes.is_some(),
            self.marginals.is_some(),
        ]
        .iter()
        .filter(|&&x| x)
        .count();
        if provided != 1 {
            return Err(SpecError::Invalid(format!(
                "exactly one of `probs`, `classes`, `marginals` must be given ({provided} were)"
            )));
        }
        if let Some(probs) = self.probs {
            return Ok(Workload::new(shape.clone(), probs)?);
        }
        if let Some(classes) = self.classes {
            let mut weights = vec![0.0; shape.num_classes()];
            for cw in classes {
                let class = Class(cw.class);
                shape.check(&class)?;
                if cw.weight < 0.0 || cw.weight.is_nan() {
                    return Err(SpecError::Invalid(format!(
                        "negative weight for class {class}"
                    )));
                }
                weights[shape.rank(&class)] += cw.weight;
            }
            return Ok(Workload::from_weights(shape.clone(), weights)?);
        }
        let marginals = self.marginals.expect("one branch must hold");
        Ok(Workload::product(shape.clone(), &marginals)?)
    }

    /// A dense-probability spec describing `workload`.
    pub fn of(workload: &Workload) -> Self {
        WorkloadSpec {
            probs: Some(workload.probs().to_vec()),
            classes: None,
            marginals: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------------------

/// A clustering strategy named on the wire: either a lattice path (step
/// dimensions, plain or snaked) or a fixed curve family by name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StrategySpec {
    /// Step dimensions of a lattice path (as `LatticePath::dims`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dims: Option<Vec<usize>>,
    /// Whether the lattice-path curve is snaked.
    #[serde(default)]
    pub snaked: bool,
    /// A named curve family over the schema's grid (`"hilbert"`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub kind: Option<String>,
}

impl StrategySpec {
    /// A snaked lattice-path strategy.
    pub fn snaked_path(dims: Vec<usize>) -> Self {
        StrategySpec {
            dims: Some(dims),
            snaked: true,
            kind: None,
        }
    }

    /// A plain (un-snaked) lattice-path strategy.
    pub fn plain_path(dims: Vec<usize>) -> Self {
        StrategySpec {
            dims: Some(dims),
            snaked: false,
            kind: None,
        }
    }

    /// The compact Hilbert curve over the schema's grid.
    pub fn hilbert() -> Self {
        StrategySpec {
            dims: None,
            snaked: false,
            kind: Some("hilbert".into()),
        }
    }
}

fn default_records_per_cell() -> u64 {
    1
}
fn default_page_size() -> u64 {
    8192
}
fn default_record_size() -> u64 {
    125
}

/// Optional physical measurement attached to a `price` request: pack a
/// uniformly filled grid (`records_per_cell` records in every cell) along
/// the strategy and measure seeks/normalized blocks through the server's
/// shared cost memo.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeasureSpec {
    /// Records in every grid cell.
    #[serde(default = "default_records_per_cell")]
    pub records_per_cell: u64,
    /// Page size in bytes.
    #[serde(default = "default_page_size")]
    pub page_size: u64,
    /// Record size in bytes.
    #[serde(default = "default_record_size")]
    pub record_size: u64,
    /// Measure through the real paged engine (bulk-load an in-memory
    /// [`TableFile`](snakes_storage::TableFile) and scan it through its
    /// buffer pool) instead of the analytic cost memo. Bit-identical
    /// results, but the request additionally exercises — and reports, via
    /// `stats.storage` — physical page I/O. Capped at
    /// [`MAX_PHYSICAL_BYTES`](crate::engine::MAX_PHYSICAL_BYTES).
    #[serde(default)]
    pub physical: bool,
}

impl Default for MeasureSpec {
    fn default() -> Self {
        MeasureSpec {
            records_per_cell: default_records_per_cell(),
            page_size: default_page_size(),
            record_size: default_record_size(),
            physical: false,
        }
    }
}

/// One sparse workload delta of a `drift` request. Multiple deltas in one
/// request are coalesced: each advances the session's workload version,
/// but the incremental re-optimization runs once, on the final
/// distribution.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeltaSpec {
    /// The sparse `(rank, weight)` updates.
    #[serde(default)]
    pub updates: Vec<WeightUpdate>,
}

/// The shared evaluation envelope of protocol version 2: every input an
/// evaluating endpoint reads, in one body. Version 1 spread these over
/// flat request fields; the envelope carries them together so new
/// endpoints (like `recluster`) compose the same inputs instead of
/// growing more top-level fields. Each member is optional — endpoints
/// require what they need and ignore the rest — and any member absent
/// from the envelope falls back to the matching flat v1 field (see
/// [`Request::schema_spec`]).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EvalEnvelope {
    /// Star schema.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema: Option<SchemaSpec>,
    /// Workload distribution.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workload: Option<WorkloadSpec>,
    /// Strategy to price/explain or to recluster toward.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strategy: Option<StrategySpec>,
    /// Physical measurement / table geometry.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub measure: Option<MeasureSpec>,
    /// Evaluation options (thread-pool shape, query engine).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eval: Option<EvalOptions>,
}

fn default_chunk_pages() -> u64 {
    4
}

/// Parameters of a `recluster` request: migrate the job's table from its
/// current linearization to `to`, `chunk_pages` pages per step, while
/// continuing to serve scans bit-identically from the mixed layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReclusterSpec {
    /// The linearization currently on disk. Defaults to the job's known
    /// layout (required when the job does not exist yet).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub from: Option<StrategySpec>,
    /// The target linearization. Defaults to `env.strategy`.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub to: Option<StrategySpec>,
    /// Pages copied per migration step (bounds the per-tick work and thus
    /// the serving-latency impact).
    #[serde(default = "default_chunk_pages")]
    pub chunk_pages: u64,
}

impl Default for ReclusterSpec {
    fn default() -> Self {
        ReclusterSpec {
            from: None,
            to: None,
            chunk_pages: default_chunk_pages(),
        }
    }
}

/// One request line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Protocol version ([`PROTOCOL_VERSION`]).
    #[serde(default = "default_version")]
    pub v: u32,
    /// Client correlation id, echoed verbatim in the response.
    #[serde(default)]
    pub id: u64,
    /// Endpoint name (`recommend`, `price`, `drift`, `explain`,
    /// `recluster`, `recluster_status`, `recluster_abort`, `stats`,
    /// `ping`, `shutdown`).
    #[serde(default)]
    pub endpoint: String,
    /// Per-request deadline in milliseconds, measured from admission.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deadline_ms: Option<u64>,
    /// The v2 evaluation envelope: schema, workload, strategy, measure,
    /// and eval options in one body. Preferred over the flat v1 fields
    /// below; absent members fall back to them.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub env: Option<EvalEnvelope>,
    /// Star schema (v1 flat form; v2 clients put it in `env`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub schema: Option<SchemaSpec>,
    /// Workload (v1 flat form; v2 clients put it in `env`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub workload: Option<WorkloadSpec>,
    /// Strategy to price/explain (v1 flat form; v2 clients put it in
    /// `env`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub strategy: Option<StrategySpec>,
    /// Optional physical measurement of a `price` request (v1 flat form;
    /// v2 clients put it in `env`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub measure: Option<MeasureSpec>,
    /// Drift-session or recluster-job name. Sessions/jobs are created on
    /// first use and survive across connections.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub session: Option<String>,
    /// Sparse workload deltas of a `drift` request (coalesced).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub deltas: Option<Vec<DeltaSpec>>,
    /// Online-reclustering parameters of a `recluster` request.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recluster: Option<ReclusterSpec>,
    /// Evaluation options for physical measurement (v1 flat form; v2
    /// clients put them in `env`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub eval: Option<EvalOptions>,
    /// Idempotency key: requests sharing a key are deduplicated
    /// server-side, so a retry of an acknowledged mutation (notably a
    /// `drift` delta) replays the stored response instead of re-applying.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub idempotency_key: Option<String>,
}

impl Request {
    /// A request for `endpoint` with every payload field empty.
    pub fn new(endpoint: &str) -> Self {
        Request {
            v: PROTOCOL_VERSION,
            endpoint: endpoint.into(),
            ..Request::default()
        }
    }

    /// A `recommend` request (v2 envelope form).
    pub fn recommend(schema: SchemaSpec, workload: WorkloadSpec) -> Self {
        Request {
            env: Some(EvalEnvelope {
                schema: Some(schema),
                workload: Some(workload),
                ..EvalEnvelope::default()
            }),
            ..Request::new("recommend")
        }
    }

    /// A `price` request (v2 envelope form).
    pub fn price(schema: SchemaSpec, workload: WorkloadSpec, strategy: StrategySpec) -> Self {
        Request {
            env: Some(EvalEnvelope {
                schema: Some(schema),
                workload: Some(workload),
                strategy: Some(strategy),
                ..EvalEnvelope::default()
            }),
            ..Request::new("price")
        }
    }

    /// A `drift` request carrying `deltas` for `session`.
    pub fn drift(session: &str, deltas: Vec<DeltaSpec>) -> Self {
        Request {
            session: Some(session.into()),
            deltas: Some(deltas),
            ..Request::new("drift")
        }
    }

    /// A `recluster` request: start (or resume) job `job` migrating a
    /// table of `schema`'s grid toward `spec.to`, pricing benefit against
    /// `workload`.
    pub fn recluster(
        job: &str,
        schema: SchemaSpec,
        workload: WorkloadSpec,
        spec: ReclusterSpec,
    ) -> Self {
        Request {
            session: Some(job.into()),
            env: Some(EvalEnvelope {
                schema: Some(schema),
                workload: Some(workload),
                ..EvalEnvelope::default()
            }),
            recluster: Some(spec),
            ..Request::new("recluster")
        }
    }

    /// A `recluster_status` request for job `job`.
    pub fn recluster_status(job: &str) -> Self {
        Request {
            session: Some(job.into()),
            ..Request::new("recluster_status")
        }
    }

    /// A `recluster_abort` request for job `job`.
    pub fn recluster_abort(job: &str) -> Self {
        Request {
            session: Some(job.into()),
            ..Request::new("recluster_abort")
        }
    }

    /// This request tagged with `key` for server-side deduplication.
    #[must_use]
    pub fn with_idempotency_key(mut self, key: impl Into<String>) -> Self {
        self.idempotency_key = Some(key.into());
        self
    }

    /// This request with `measure` in its evaluation envelope.
    #[must_use]
    pub fn with_measure(mut self, measure: MeasureSpec) -> Self {
        self.env.get_or_insert_with(EvalEnvelope::default).measure = Some(measure);
        self
    }

    /// This request with `eval` options in its evaluation envelope.
    #[must_use]
    pub fn with_eval(mut self, eval: EvalOptions) -> Self {
        self.env.get_or_insert_with(EvalEnvelope::default).eval = Some(eval);
        self
    }

    /// The schema input: the envelope's when present, else the flat v1
    /// field. All `*_spec`/`eval_opts` accessors resolve member-wise, so
    /// a v1 frame, a v2 frame, and a mixed frame (envelope plus stray
    /// flat fields) all read identically.
    pub fn schema_spec(&self) -> Option<&SchemaSpec> {
        self.env
            .as_ref()
            .and_then(|e| e.schema.as_ref())
            .or(self.schema.as_ref())
    }

    /// The workload input (envelope first, flat v1 fallback).
    pub fn workload_spec(&self) -> Option<&WorkloadSpec> {
        self.env
            .as_ref()
            .and_then(|e| e.workload.as_ref())
            .or(self.workload.as_ref())
    }

    /// The strategy input (envelope first, flat v1 fallback).
    pub fn strategy_spec(&self) -> Option<&StrategySpec> {
        self.env
            .as_ref()
            .and_then(|e| e.strategy.as_ref())
            .or(self.strategy.as_ref())
    }

    /// The measurement input (envelope first, flat v1 fallback).
    pub fn measure_spec(&self) -> Option<&MeasureSpec> {
        self.env
            .as_ref()
            .and_then(|e| e.measure.as_ref())
            .or(self.measure.as_ref())
    }

    /// The evaluation options (envelope first, flat v1 fallback).
    pub fn eval_opts(&self) -> Option<&EvalOptions> {
        self.env
            .as_ref()
            .and_then(|e| e.eval.as_ref())
            .or(self.eval.as_ref())
    }

    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("requests serialize")
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn parse(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

// ---------------------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------------------

/// A wire-level failure.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorBody {
    /// Stable machine-readable code (`bad_request`, `overloaded`,
    /// `deadline_exceeded`, `shutting_down`, `internal`).
    pub code: String,
    /// Human-readable detail.
    pub message: String,
    /// For `overloaded`: suggested client backoff before retrying.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub retry_after_ms: Option<u64>,
}

/// One row-major baseline of a recommendation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RowMajorBody {
    /// Dimension order, innermost loop first.
    pub order_innermost_first: Vec<usize>,
    /// Expected cost without snaking.
    pub cost_plain: f64,
    /// Expected cost with snaking.
    pub cost_snaked: f64,
}

/// The `recommend` payload: the optimal snaked lattice path with its
/// sandwich-bound diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecommendationBody {
    /// Step dimensions of the optimal path, innermost first.
    pub path_dims: Vec<usize>,
    /// Human-readable path.
    pub path: String,
    /// Expected cost of the path without snaking.
    pub expected_cost_plain: f64,
    /// Expected cost of the recommended snaked path.
    pub expected_cost_snaked: f64,
    /// Upper bound on `snaked / global optimum` (2 by §5.3).
    pub guarantee_factor: f64,
    /// Largest per-class improvement snaking achieved (`< 2`).
    pub max_snaking_benefit: f64,
    /// Every row-major baseline.
    pub row_majors: Vec<RowMajorBody>,
    /// `1 − snaked / worst row-major`.
    pub savings_vs_worst_row_major: f64,
}

/// Physical measurement results of a `price` request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MeasuredBody {
    /// Expected seeks per query.
    pub avg_seeks: f64,
    /// Expected blocks read, normalized by the per-query minimum.
    pub avg_normalized_blocks: f64,
}

/// The `price` payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PriceBody {
    /// Human-readable strategy identity.
    pub strategy: String,
    /// Analytic expected cost (average fragments per query) via the
    /// crossing-signature table.
    pub expected_cost: f64,
    /// Whether the signature table came from the shared cache.
    pub cache_hit: bool,
    /// Physical measurement, when requested.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub measured: Option<MeasuredBody>,
}

/// The `drift` payload: the session's re-optimization outcome.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftBody {
    /// Session name.
    pub session: String,
    /// Workload version after applying this request's deltas.
    pub version: u64,
    /// Number of deltas coalesced into the single re-optimization.
    pub coalesced: usize,
    /// Total-variation distance drifted by this request's deltas.
    pub drift_tv: f64,
    /// Step dimensions of the current optimal path.
    pub path_dims: Vec<usize>,
    /// Human-readable path.
    pub path: String,
    /// Expected cost of the optimal path under the current workload.
    pub cost: f64,
    /// Whether the warm restart fired (stability certificate held).
    pub reused: bool,
    /// The certified cost-shift bound backing the reuse decision.
    pub shift_bound: f64,
    /// The optimality margin at the anchor workload.
    pub gap: f64,
}

/// The `recluster` / `recluster_status` / `recluster_abort` payload: one
/// migration job's progress.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ReclusterBody {
    /// Job name (the request's `session`).
    pub job: String,
    /// Job state: `running`, `done`, or `aborted`.
    pub state: String,
    /// Human-readable identity of the source linearization.
    pub from: String,
    /// Human-readable identity of the target linearization.
    pub to: String,
    /// Cells fully migrated (every new-curve rank below the fence is
    /// served from the new layout).
    pub fence: u64,
    /// Total grid cells to migrate.
    pub total_cells: u64,
    /// Bounded migration steps applied so far.
    pub chunks_applied: u64,
    /// Records copied so far.
    pub records_moved: u64,
    /// Differential probes run against this job (each asserts a mixed
    /// scan is bit-identical to both pure layouts).
    pub probes: u64,
}

/// Online-reclustering counters of the `stats` payload, aggregated over
/// every job since startup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReclusterStatsBody {
    /// Jobs started (explicit `recluster` requests plus auto-triggers).
    pub jobs_started: u64,
    /// Jobs that ran to completion (table fully in the target layout).
    pub jobs_completed: u64,
    /// Jobs aborted by `recluster_abort`.
    pub jobs_aborted: u64,
    /// Jobs resumed from the durability log at startup.
    pub jobs_recovered: u64,
    /// Jobs currently migrating.
    pub active: u64,
    /// Bounded migration steps applied across all jobs.
    pub chunks_applied: u64,
    /// Records copied across all jobs.
    pub records_moved: u64,
    /// Differential probes run (mixed scan vs both pure layouts).
    pub probes: u64,
    /// Jobs started by the drift-handler's cost/benefit trigger rather
    /// than an explicit request.
    pub auto_triggers: u64,
}

/// Hit/miss counters of one shared cache.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStatsBody {
    /// Cache hits.
    pub hits: u64,
    /// Cache misses (i.e. recomputations performed).
    pub misses: u64,
    /// Resident entries.
    pub entries: u64,
}

/// Latency/outcome counters of one endpoint.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EndpointStatsBody {
    /// Endpoint name.
    pub endpoint: String,
    /// Completed requests (including errored ones).
    pub requests: u64,
    /// Requests that returned an error body.
    pub errors: u64,
    /// Requests rejected at admission (queue full).
    pub shed: u64,
    /// Requests that exceeded their deadline.
    pub deadline_exceeded: u64,
    /// Median end-to-end latency (admission to response), microseconds.
    pub p50_us: u64,
    /// 99th-percentile latency, microseconds.
    pub p99_us: u64,
    /// Maximum observed latency, microseconds.
    pub max_us: u64,
}

/// Storage-engine counters of the `stats` payload: durable-state health
/// (WAL size, checkpoints, recoveries) plus the accumulated buffer-pool
/// counters of every physical measurement served.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StorageStatsBody {
    /// Whether the server runs with a durable data directory.
    pub enabled: bool,
    /// Acknowledged bytes in the write-ahead log (header included).
    pub wal_bytes: u64,
    /// Live entries in the write-ahead log.
    pub wal_entries: u64,
    /// Checkpoints installed since startup.
    pub checkpoints: u64,
    /// 1 when this process recovered prior state at startup, else 0.
    pub recoveries: u64,
    /// Drift sessions rebuilt by that recovery.
    pub recovered_sessions: u64,
    /// Buffer-pool fetches served from resident frames.
    pub pool_hits: u64,
    /// Buffer-pool fetches that touched the backing file.
    pub pool_misses: u64,
    /// `pool_hits / (pool_hits + pool_misses)` (0 before any fetch).
    pub pool_hit_rate: f64,
    /// Frames evicted to make room.
    pub pool_evictions: u64,
    /// Pages physically read from backing files.
    pub physical_reads: u64,
    /// Pages physically written to backing files.
    pub physical_writes: u64,
}

/// Same-tick request-coalescing counters of the `stats` payload. Only the
/// sharded core batches (the legacy blocking core executes one request per
/// worker at a time), so both gauges stay 0 there.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchingStatsBody {
    /// Distinct coalescing groups: a leader computation that at least one
    /// same-tick follower reused.
    pub batches: u64,
    /// Requests answered from a same-tick leader's result instead of
    /// running their own signature-cache / recommendation pass.
    pub coalesced: u64,
}

/// Whole-lattice aggregation-kernel counters of the `stats` payload: how
/// signature-cache misses were computed (blocked + LUT kernel vs the
/// scalar fallback vs a multi-worker walk) and where the time went.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregationStatsBody {
    /// Curve walks served by the blocked + LUT kernel.
    pub walks_blocked: u64,
    /// Curve walks that fell back to the scalar kernel (LUT too large).
    pub walks_scalar: u64,
    /// Curve walks split across multiple workers.
    pub walks_parallel: u64,
    /// Grid edges classified across all walks.
    pub edges: u64,
    /// Nanoseconds spent decoding rank blocks into coordinates.
    pub decode_nanos: u64,
    /// Nanoseconds spent classifying edges into crossing signatures.
    pub count_nanos: u64,
    /// Nanoseconds spent in the k-dimensional prefix sum.
    pub prefix_nanos: u64,
}

/// The `stats` payload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsBody {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// Worker threads executing requests.
    pub workers: u64,
    /// Admission queue capacity.
    pub queue_capacity: u64,
    /// Requests currently queued (admitted, not yet executing).
    pub queue_depth: u64,
    /// Live drift sessions.
    pub sessions: u64,
    /// Shared crossing-signature cache counters.
    pub signature_cache: CacheStatsBody,
    /// Shared physical cost memo counters.
    pub cost_memo: CacheStatsBody,
    /// Per-endpoint counters.
    pub endpoints: Vec<EndpointStatsBody>,
    /// Idempotency-cache counters (`hits` = deduplicated replays,
    /// `misses` = first executions stored under a key).
    #[serde(default)]
    pub idempotency: CacheStatsBody,
    /// Handler panics caught and surfaced as in-band `internal` errors.
    #[serde(default)]
    pub panics_caught: u64,
    /// Same-tick request-coalescing counters (sharded core only).
    #[serde(default)]
    pub batching: BatchingStatsBody,
    /// Storage-engine counters (WAL, checkpoints, buffer pool).
    #[serde(default)]
    pub storage: StorageStatsBody,
    /// Aggregation-kernel counters (signature-cache miss computation).
    #[serde(default)]
    pub aggregation: AggregationStatsBody,
    /// Online-reclustering counters (migration jobs).
    #[serde(default)]
    pub recluster: ReclusterStatsBody,
}

/// One response line.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Response {
    /// Protocol version.
    #[serde(default = "default_version")]
    pub v: u32,
    /// The request's correlation id, echoed.
    #[serde(default)]
    pub id: u64,
    /// Whether the request succeeded.
    #[serde(default)]
    pub ok: bool,
    /// Failure detail when `ok` is false.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<ErrorBody>,
    /// `recommend` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recommendation: Option<RecommendationBody>,
    /// `price` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub price: Option<PriceBody>,
    /// `drift` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub drift: Option<DriftBody>,
    /// `explain` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub explanation: Option<CostExplanation>,
    /// `recluster` / `recluster_status` / `recluster_abort` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recluster: Option<ReclusterBody>,
    /// `stats` payload.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub stats: Option<StatsBody>,
    /// True when this response was replayed from the idempotency cache
    /// instead of re-executing the request.
    #[serde(default, skip_serializing_if = "is_false")]
    pub deduplicated: bool,
}

impl Response {
    /// A success response echoing `id`.
    pub fn ok(id: u64) -> Self {
        Response {
            v: PROTOCOL_VERSION,
            id,
            ok: true,
            ..Response::default()
        }
    }

    /// A failure response echoing `id`.
    pub fn err(id: u64, error: ErrorBody) -> Self {
        Response {
            v: PROTOCOL_VERSION,
            id,
            ok: false,
            error: Some(error),
            ..Response::default()
        }
    }

    /// This response restamped with the requesting client's protocol
    /// version (clamped to the supported range), so a v1 client is
    /// answered with `v: 1` frames — the body fields it does not know
    /// are already skipped or ignored under the forward-compat contract.
    #[must_use]
    pub fn for_version(mut self, v: u32) -> Self {
        self.v = v.clamp(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION);
        self
    }

    /// Serializes to one protocol line (no trailing newline).
    pub fn to_line(&self) -> String {
        serde_json::to_string(self).expect("responses serialize")
    }

    /// Parses one protocol line.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error on malformed input.
    pub fn parse(line: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_roundtrip() {
        let json =
            r#"{"dims":[{"name":"parts","fanouts":[40,5]},{"name":"time","fanouts":[12,7]}]}"#;
        let schema = SchemaSpec::parse(json).unwrap();
        assert_eq!(schema.k(), 2);
        assert_eq!(schema.grid_shape(), vec![200, 84]);
        let rendered = SchemaSpec::render(&schema);
        let again = SchemaSpec::parse(&rendered).unwrap();
        assert_eq!(schema, again);
    }

    #[test]
    fn schema_rejects_bad_input() {
        assert!(SchemaSpec::parse("{").is_err());
        assert!(SchemaSpec::parse(r#"{"dims":[]}"#).is_err());
        assert!(SchemaSpec::parse(r#"{"dims":[{"name":"x","fanouts":[0]}]}"#).is_err());
    }

    #[test]
    fn workload_three_encodings() {
        let shape = LatticeShape::new(vec![1, 1]);
        let w1 = WorkloadSpec::parse(r#"{"probs":[0.25,0.25,0.25,0.25]}"#, &shape).unwrap();
        let w2 = WorkloadSpec::parse(
            r#"{"classes":[{"class":[0,0],"weight":1},{"class":[1,0],"weight":1},
                           {"class":[0,1],"weight":1},{"class":[1,1],"weight":1}]}"#,
            &shape,
        )
        .unwrap();
        let w3 = WorkloadSpec::parse(r#"{"marginals":[[0.5,0.5],[0.5,0.5]]}"#, &shape).unwrap();
        assert_eq!(w1, w2);
        assert_eq!(w1, w3);
    }

    #[test]
    fn workload_rejects_ambiguous_and_invalid() {
        let shape = LatticeShape::new(vec![1, 1]);
        assert!(WorkloadSpec::parse("{}", &shape).is_err());
        assert!(
            WorkloadSpec::parse(r#"{"probs":[1.0,0,0,0],"marginals":[[1,0],[1,0]]}"#, &shape)
                .is_err()
        );
        assert!(WorkloadSpec::parse(r#"{"probs":[0.5,0.5]}"#, &shape).is_err());
        assert!(
            WorkloadSpec::parse(r#"{"classes":[{"class":[5,0],"weight":1}]}"#, &shape).is_err()
        );
        assert!(
            WorkloadSpec::parse(r#"{"classes":[{"class":[0,0],"weight":-1}]}"#, &shape).is_err()
        );
    }

    #[test]
    fn sparse_weights_accumulate() {
        let shape = LatticeShape::new(vec![1]);
        let w = WorkloadSpec::parse(
            r#"{"classes":[{"class":[0],"weight":1},{"class":[0],"weight":1},
                           {"class":[1],"weight":2}]}"#,
            &shape,
        )
        .unwrap();
        assert!((w.prob(&Class(vec![0])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn request_line_roundtrip_and_defaults() {
        let req = Request::recommend(
            SchemaSpec {
                dims: vec![DimSpec {
                    name: "d".into(),
                    fanouts: vec![2, 2],
                }],
            },
            WorkloadSpec {
                probs: Some(vec![0.5, 0.25, 0.25]),
                ..WorkloadSpec::default()
            },
        );
        let back = Request::parse(&req.to_line()).unwrap();
        assert_eq!(req, back);
        // A bare `{}` is a valid (if useless) request at the current
        // version with an empty endpoint.
        let bare = Request::parse("{}").unwrap();
        assert_eq!(bare.v, PROTOCOL_VERSION);
        assert_eq!(bare.endpoint, "");
        assert!(bare.schema.is_none());
    }

    #[test]
    fn unknown_fields_are_ignored() {
        // Forward compat: newer peers may add fields; older ones skip them.
        let req =
            Request::parse(r#"{"endpoint":"ping","id":7,"some_future_field":{"x":1}}"#).unwrap();
        assert_eq!(req.endpoint, "ping");
        assert_eq!(req.id, 7);
        let resp = Response::parse(r#"{"id":7,"ok":true,"expansion":[1,2,3]}"#).unwrap();
        assert!(resp.ok);
        assert_eq!(resp.id, 7);
    }

    #[test]
    fn envelope_and_flat_fields_resolve_identically() {
        let schema = SchemaSpec {
            dims: vec![DimSpec {
                name: "d".into(),
                fanouts: vec![2],
            }],
        };
        let workload = WorkloadSpec {
            probs: Some(vec![0.5, 0.5]),
            ..WorkloadSpec::default()
        };
        let strategy = StrategySpec::snaked_path(vec![0]);
        // v2 envelope form (constructor) vs hand-built v1 flat form.
        let v2 = Request::price(schema.clone(), workload.clone(), strategy.clone());
        let v1 = Request {
            v: 1,
            schema: Some(schema.clone()),
            workload: Some(workload.clone()),
            strategy: Some(strategy.clone()),
            ..Request::new("price")
        };
        assert_eq!(v2.schema_spec(), v1.schema_spec());
        assert_eq!(v2.workload_spec(), v1.workload_spec());
        assert_eq!(v2.strategy_spec(), v1.strategy_spec());
        assert!(v2.measure_spec().is_none() && v2.eval_opts().is_none());
        // Member-wise resolution: envelope wins where present, flat
        // fields fill the gaps.
        let mixed = Request {
            measure: Some(MeasureSpec::default()),
            schema: Some(SchemaSpec { dims: vec![] }),
            ..v2.clone()
        };
        assert_eq!(mixed.schema_spec(), Some(&schema), "envelope wins");
        assert_eq!(
            mixed.measure_spec(),
            Some(&MeasureSpec::default()),
            "flat fallback"
        );
        // Builder helpers write into the envelope.
        let with = v2
            .with_measure(MeasureSpec::default())
            .with_eval(snakes_core::eval::EvalOptions::serial());
        assert_eq!(
            with.env.as_ref().unwrap().measure,
            Some(MeasureSpec::default())
        );
        assert!(with.eval.is_none());
    }

    #[test]
    fn recluster_requests_roundtrip() {
        let schema = SchemaSpec {
            dims: vec![DimSpec {
                name: "d".into(),
                fanouts: vec![2, 2],
            }],
        };
        let workload = WorkloadSpec {
            marginals: Some(vec![vec![0.5, 0.25, 0.25]]),
            ..WorkloadSpec::default()
        };
        let req = Request::recluster(
            "nightly",
            schema,
            workload,
            ReclusterSpec {
                to: Some(StrategySpec::hilbert()),
                ..ReclusterSpec::default()
            },
        );
        assert_eq!(req.v, PROTOCOL_VERSION);
        assert_eq!(req.session.as_deref(), Some("nightly"));
        let back = Request::parse(&req.to_line()).unwrap();
        assert_eq!(req, back);
        assert_eq!(back.recluster.as_ref().unwrap().chunk_pages, 4);
        // Defaulted chunk_pages survives a sparse document.
        let sparse: ReclusterSpec = serde_json::from_str("{}").unwrap();
        assert_eq!(sparse, ReclusterSpec::default());
        for ctor in [Request::recluster_status, Request::recluster_abort] {
            let r = ctor("nightly");
            assert_eq!(Request::parse(&r.to_line()).unwrap(), r);
        }
    }

    #[test]
    fn responses_mirror_the_requesters_version() {
        assert_eq!(Response::ok(1).v, PROTOCOL_VERSION);
        assert_eq!(Response::ok(1).for_version(1).v, 1);
        assert_eq!(Response::ok(1).for_version(2).v, 2);
        // Out-of-range versions clamp to the supported window.
        assert_eq!(Response::ok(1).for_version(0).v, MIN_PROTOCOL_VERSION);
        assert_eq!(Response::ok(1).for_version(99).v, PROTOCOL_VERSION);
    }

    #[test]
    fn response_error_shape() {
        let resp = Response::err(
            3,
            ErrorBody {
                code: "overloaded".into(),
                message: "queue full".into(),
                retry_after_ms: Some(25),
            },
        );
        let line = resp.to_line();
        assert!(line.contains("\"retry_after_ms\":25"));
        let back = Response::parse(&line).unwrap();
        assert_eq!(back, resp);
        assert!(!back.ok);
    }
}
