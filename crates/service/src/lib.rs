//! # snakes-service
//!
//! A long-running clustering **advisor daemon** over the `snakes`
//! libraries: a versioned JSON-lines protocol on TCP serving
//!
//! * `recommend` — the paper's full advice (optimal lattice path, snaked
//!   vs. plain costs, Theorem 3 guarantee) for a posted schema + workload;
//! * `price` — expected cost of a named strategy through a shared
//!   [crossing-signature cache](snakes_curves::SignatureCache), with
//!   optional physical measurement through a shared cost memo;
//! * `drift` — named sessions streaming sparse workload deltas into an
//!   [incremental DP](snakes_core::dp::IncrementalDp) warm restart,
//!   coalescing each request's deltas into one re-optimization;
//! * `explain` — per-class cost attribution for a strategy;
//! * `recluster` / `recluster_status` / `recluster_abort` — an online
//!   reclustering executor that applies a recommendation to a clustered
//!   [table file](snakes_storage::TableFile) in bounded chunks *while
//!   serving*, with a WAL-logged fence so a killed daemon resumes the
//!   migration exactly where it stopped;
//! * `stats` — cache hit rates, per-endpoint latency histograms, queue
//!   depth, reclustering progress.
//!
//! The daemon is plain `std` — no async runtime: a hand-rolled epoll
//! readiness loop drives per-core worker [shards](shard), each owning a
//! partition of connections and drift-session stripes (cross-shard
//! requests forward over [SPSC mailboxes](spsc) instead of locking). The
//! JSON-lines protocol is pipelined — many in-flight frames per
//! connection, responses in request order — and same-fingerprint
//! `price`/`recommend` requests landing in one tick coalesce into a
//! single signature-cache pass. A bounded run queue sheds load instead of
//! stalling (backoff hints scale with the measured drain rate),
//! per-request deadlines cancel cooperatively, and `shutdown`/SIGTERM
//! drains without losing in-flight responses. Every answer is
//! bit-identical to the corresponding direct library call.
//!
//! ```no_run
//! use snakes_service::{Client, Request, Server, ServerConfig};
//! # use snakes_service::protocol::{SchemaSpec, WorkloadSpec};
//! # use snakes_core::{lattice::LatticeShape, schema::StarSchema, workload::Workload};
//! let server = Server::spawn(ServerConfig::default()).unwrap();
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! # let schema = StarSchema::paper_toy();
//! # let workload = Workload::uniform(LatticeShape::of_schema(&schema));
//! let resp = client
//!     .call(Request::recommend(SchemaSpec::of(&schema), WorkloadSpec::of(&workload)))
//!     .unwrap();
//! println!("{}", resp.recommendation.unwrap().path);
//! server.join();
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod durability;
pub mod engine;
pub mod error;
pub mod fault;
pub mod metrics;
pub mod protocol;
pub mod reactor;
mod recluster;
pub mod server;
pub mod shard;
pub mod sim;
pub mod spsc;

pub use client::{
    Client, Dialer, PipelinedClient, RetryPolicy, RetryStats, RetryingClient, TcpDialer, Transport,
};
pub use durability::Media;
pub use engine::{AutoRecluster, BatchScope, Deadline, Engine};
pub use error::ServiceError;
pub use fault::{FaultConfig, FaultPlan};
pub use metrics::{Endpoint, Registry};
pub use protocol::{
    EvalEnvelope, ReclusterSpec, Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION,
};
pub use reactor::{EpollReactor, Reactor, ShardStream, SimReactor, TcpShardStream, Waker};
pub use server::{metrics_digest, serve_forever, Core, Server, ServerConfig, MAX_LINE_BYTES};
pub use shard::{ShardedConfig, ShardedCore};
pub use sim::{run_schedule, run_schedule_kind, SimConfig, SimCoreKind, SimReport, SimServer};
