//! Clients for the JSON-lines protocol.
//!
//! * [`Client`] — the minimal blocking TCP client: one request in flight
//!   per connection, no retries. Open several connections for
//!   concurrency.
//! * [`PipelinedClient`] — keeps a window of requests in flight on one
//!   connection and reaps responses in request order; the way to saturate
//!   the sharded core from few connections.
//! * [`RetryingClient`] — the production client: generic over a
//!   [`Transport`]/[`Dialer`] pair, it retries transient failures with
//!   capped exponential backoff plus deterministic jitter, honors the
//!   server's `retry_after_ms` hint on load-shed responses, and stamps
//!   `recommend`/`price`/`drift` requests with idempotency keys so a
//!   retry of an acknowledged mutation is deduplicated server-side.

use crate::error::ServiceError;
use crate::fault::SplitMix64;
use crate::protocol::{Request, Response};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response. A request with id 0
    /// is assigned the connection's next sequence number; the response's
    /// echoed id is verified either way.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on transport failure, [`ServiceError::Protocol`]
    /// on a malformed or mismatched response line. Server-side failures are
    /// *not* errors here — they come back as `ok: false` responses.
    pub fn call(&mut self, mut request: Request) -> Result<Response, ServiceError> {
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServiceError::Protocol(
                "server closed the connection".into(),
            ));
        }
        let response = Response::parse(&reply)
            .map_err(|e| ServiceError::Protocol(format!("malformed response: {e}")))?;
        if response.id != request.id {
            return Err(ServiceError::Protocol(format!(
                "response id {} does not match request id {}",
                response.id, request.id
            )));
        }
        Ok(response)
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn shutdown(&mut self) -> Result<Response, ServiceError> {
        self.call(Request::new("shutdown"))
    }
}

/// A pipelining protocol client: up to `window` requests in flight on one
/// TCP connection, responses reaped strictly in request order (the
/// server's per-connection ordering guarantee).
///
/// Keep the window at or below the server's queue capacity — a window
/// wider than the admission bound just converts the excess into
/// `overloaded` shed responses.
pub struct PipelinedClient {
    /// Buffered: frames accumulate and flush in one syscall right before
    /// the client blocks on a response, so back-to-back sends coalesce
    /// into large TCP segments.
    writer: std::io::BufWriter<TcpStream>,
    reader: BufReader<TcpStream>,
    next_id: u64,
    window: usize,
    pending: VecDeque<u64>,
}

impl PipelinedClient {
    /// Connects with the given in-flight window (minimum 1).
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs, window: usize) -> std::io::Result<PipelinedClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = std::io::BufWriter::new(stream.try_clone()?);
        Ok(PipelinedClient {
            writer,
            reader: BufReader::new(stream),
            next_id: 1,
            window: window.max(1),
            pending: VecDeque::new(),
        })
    }

    /// Sends one request without waiting for its response. When the
    /// window is full, first reaps (and returns) the oldest in-flight
    /// response; otherwise returns `None`.
    ///
    /// # Errors
    ///
    /// As [`Client::call`]: transport failures and malformed or
    /// out-of-order response lines. Server-side failures come back as
    /// `ok: false` responses from [`PipelinedClient::finish`].
    pub fn send(&mut self, mut request: Request) -> Result<Option<Response>, ServiceError> {
        let reaped = if self.pending.len() >= self.window {
            Some(self.reap_one()?)
        } else {
            None
        };
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.pending.push_back(request.id);
        Ok(reaped)
    }

    /// Reaps every remaining in-flight response, in request order.
    ///
    /// # Errors
    ///
    /// As [`PipelinedClient::send`].
    pub fn finish(&mut self) -> Result<Vec<Response>, ServiceError> {
        let mut out = Vec::with_capacity(self.pending.len());
        while !self.pending.is_empty() {
            out.push(self.reap_one()?);
        }
        Ok(out)
    }

    /// How many requests are currently in flight.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    fn reap_one(&mut self) -> Result<Response, ServiceError> {
        let expected = self
            .pending
            .pop_front()
            .expect("reap_one called with an empty window");
        // Everything buffered must be on the wire before blocking on the
        // response.
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServiceError::Protocol(
                "server closed the connection".into(),
            ));
        }
        let response = Response::parse(&reply)
            .map_err(|e| ServiceError::Protocol(format!("malformed response: {e}")))?;
        if response.id != expected {
            return Err(ServiceError::Protocol(format!(
                "pipelined response id {} arrived out of order (expected {})",
                response.id, expected
            )));
        }
        Ok(response)
    }
}

// ---------------------------------------------------------------------------
// Transport abstraction + retrying client.
// ---------------------------------------------------------------------------

/// One bidirectional protocol conversation: a place to send request lines
/// and receive response lines. Implemented by [`TcpTransport`] and by the
/// simulation harness's fault-injecting pipes.
pub trait Transport: Send {
    /// Sends one request line (the transport appends the newline).
    ///
    /// # Errors
    ///
    /// Transport-level failure; the connection must be considered dead.
    fn send_line(&mut self, line: &str) -> Result<(), ServiceError>;

    /// Receives one response line (without its newline).
    ///
    /// # Errors
    ///
    /// Transport-level failure or end-of-stream; the connection must be
    /// considered dead.
    fn recv_line(&mut self) -> Result<String, ServiceError>;
}

/// Opens fresh [`Transport`]s; a [`RetryingClient`] re-dials after any
/// transport failure.
pub trait Dialer: Send {
    /// Opens a fresh connection.
    ///
    /// # Errors
    ///
    /// Transport-level failure (connection refused, server gone).
    fn dial(&mut self) -> Result<Box<dyn Transport>, ServiceError>;
}

/// [`Transport`] over one TCP connection.
pub struct TcpTransport {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl TcpTransport {
    /// Connects to `addr`.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<TcpTransport> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(TcpTransport {
            writer,
            reader: BufReader::new(stream),
        })
    }
}

impl Transport for TcpTransport {
    fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        Ok(())
    }

    fn recv_line(&mut self) -> Result<String, ServiceError> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(ServiceError::Protocol(
                "server closed the connection".into(),
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

/// [`Dialer`] for TCP.
#[derive(Debug, Clone)]
pub struct TcpDialer {
    /// The server address.
    pub addr: SocketAddr,
}

impl Dialer for TcpDialer {
    fn dial(&mut self) -> Result<Box<dyn Transport>, ServiceError> {
        Ok(Box::new(TcpTransport::connect(self.addr)?))
    }
}

/// Retry tuning of a [`RetryingClient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per logical request (first try included).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Cap on the exponential backoff, milliseconds.
    pub max_backoff_ms: u64,
    /// Seed of the deterministic jitter stream.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 2_000,
            jitter_seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based): capped
    /// exponential with equal-jitter (half fixed, half uniform), floored
    /// by the server's `retry_after_ms` hint when one was given.
    pub fn backoff_ms(&self, retry: u32, rng: &mut SplitMix64, floor: Option<u64>) -> u64 {
        let exp = self
            .base_backoff_ms
            .saturating_mul(1u64 << retry.saturating_sub(1).min(20))
            .min(self.max_backoff_ms);
        let half = exp / 2;
        let jittered = half + rng.below(exp - half + 1);
        // The server's hint wins even over the cap — it knows its queue.
        jittered.max(floor.unwrap_or(0))
    }
}

/// Counters of one [`RetryingClient`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetryStats {
    /// Attempts sent (including first tries).
    pub attempts: u64,
    /// Retries performed (attempts beyond each request's first).
    pub retries: u64,
    /// Fresh connections dialed after a transport failure.
    pub redials: u64,
    /// Responses served from the server's idempotency cache.
    pub deduplicated: u64,
    /// Total backoff slept, milliseconds.
    pub backoff_ms: u64,
}

/// Which in-band error codes a retry can fix. `bad_request` is
/// deterministic and `shutting_down` is terminal, so neither retries.
fn retryable_code(code: &str) -> bool {
    matches!(code, "overloaded" | "deadline_exceeded" | "internal")
}

/// A protocol client with transparent retries and idempotency keys. One
/// request in flight at a time; the underlying connection is re-dialed
/// after any transport failure.
///
/// `recommend`, `price`, and `drift` requests without an explicit
/// idempotency key are stamped with `{key_prefix}-{n}` — the same key
/// across every retry of one logical request — so the server deduplicates
/// re-executions and a retried `drift` applies its deltas exactly once.
/// **`key_prefix` must be unique per client instance** (e.g. include a
/// host/pid/connection discriminator); colliding prefixes would replay
/// another client's cached answers.
pub struct RetryingClient {
    dialer: Box<dyn Dialer>,
    transport: Option<Box<dyn Transport>>,
    policy: RetryPolicy,
    rng: SplitMix64,
    next_id: u64,
    next_key: u64,
    key_prefix: String,
    stats: RetryStats,
}

impl RetryingClient {
    /// A client dialing through `dialer` under `policy`.
    pub fn new(dialer: impl Dialer + 'static, policy: RetryPolicy, key_prefix: &str) -> Self {
        let rng = SplitMix64::new(policy.jitter_seed);
        RetryingClient {
            dialer: Box::new(dialer),
            transport: None,
            policy,
            rng,
            next_id: 1,
            next_key: 1,
            key_prefix: key_prefix.to_string(),
            stats: RetryStats::default(),
        }
    }

    /// A TCP client with the default policy.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure of the eager first dial.
    pub fn connect_tcp(addr: SocketAddr, key_prefix: &str) -> Result<Self, ServiceError> {
        let mut client =
            RetryingClient::new(TcpDialer { addr }, RetryPolicy::default(), key_prefix);
        client.transport = Some(client.dialer.dial()?);
        Ok(client)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> RetryStats {
        self.stats
    }

    /// Sends one logical request, retrying transient failures (transport
    /// errors, `overloaded`, `deadline_exceeded`, `internal`) up to the
    /// policy's attempt budget. Responses with `ok: false` and a
    /// non-retryable code are returned, not errors.
    ///
    /// # Errors
    ///
    /// The final transport-level failure once every attempt is exhausted.
    pub fn call(&mut self, mut request: Request) -> Result<Response, ServiceError> {
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        if request.idempotency_key.is_none()
            && matches!(request.endpoint.as_str(), "recommend" | "price" | "drift")
        {
            request.idempotency_key = Some(format!("{}-{}", self.key_prefix, self.next_key));
            self.next_key += 1;
        }
        let line = request.to_line();
        let mut last_failure: Option<ServiceError> = None;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if attempt > 1 {
                self.stats.retries += 1;
                let floor = last_failure.as_ref().and_then(|f| match f {
                    ServiceError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                    _ => None,
                });
                let backoff = self.policy.backoff_ms(attempt - 1, &mut self.rng, floor);
                self.stats.backoff_ms += backoff;
                std::thread::sleep(std::time::Duration::from_millis(backoff));
            }
            self.stats.attempts += 1;
            let transport = match &mut self.transport {
                Some(t) => t,
                None => match self.dialer.dial() {
                    Ok(t) => {
                        self.stats.redials += 1;
                        self.transport.insert(t)
                    }
                    Err(e) => {
                        last_failure = Some(e);
                        continue;
                    }
                },
            };
            let outcome = transport
                .send_line(&line)
                .and_then(|()| transport.recv_line());
            let reply = match outcome {
                Ok(reply) => reply,
                Err(e) => {
                    // The connection is unusable; re-dial on the retry.
                    self.transport = None;
                    last_failure = Some(e);
                    continue;
                }
            };
            let response = match Response::parse(&reply) {
                Ok(r) if r.id == request.id => r,
                Ok(r) => {
                    self.transport = None;
                    last_failure = Some(ServiceError::Protocol(format!(
                        "response id {} does not match request id {}",
                        r.id, request.id
                    )));
                    continue;
                }
                Err(e) => {
                    self.transport = None;
                    last_failure = Some(ServiceError::Protocol(format!("malformed response: {e}")));
                    continue;
                }
            };
            if response.deduplicated {
                self.stats.deduplicated += 1;
            }
            match &response.error {
                Some(e) if retryable_code(&e.code) => {
                    last_failure = Some(match e.retry_after_ms {
                        Some(retry_after_ms) => ServiceError::Overloaded { retry_after_ms },
                        None => ServiceError::Protocol(e.message.clone()),
                    });
                    continue;
                }
                _ => return Ok(response),
            }
        }
        Err(last_failure.unwrap_or_else(|| {
            ServiceError::Protocol("retry budget exhausted before any attempt".into())
        }))
    }
}
