//! A small blocking client for the JSON-lines protocol: one request in
//! flight per connection; open several connections for concurrency.

use crate::error::ServiceError;
use crate::protocol::{Request, Response};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking protocol client over one TCP connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
            next_id: 1,
        })
    }

    /// Sends one request and waits for its response. A request with id 0
    /// is assigned the connection's next sequence number; the response's
    /// echoed id is verified either way.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Io`] on transport failure, [`ServiceError::Protocol`]
    /// on a malformed or mismatched response line. Server-side failures are
    /// *not* errors here — they come back as `ok: false` responses.
    pub fn call(&mut self, mut request: Request) -> Result<Response, ServiceError> {
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        let mut line = request.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ServiceError::Protocol(
                "server closed the connection".into(),
            ));
        }
        let response = Response::parse(&reply)
            .map_err(|e| ServiceError::Protocol(format!("malformed response: {e}")))?;
        if response.id != request.id {
            return Err(ServiceError::Protocol(format!(
                "response id {} does not match request id {}",
                response.id, request.id
            )));
        }
        Ok(response)
    }

    /// Asks the server to drain and stop.
    ///
    /// # Errors
    ///
    /// As [`Client::call`].
    pub fn shutdown(&mut self) -> Result<Response, ServiceError> {
        self.call(Request::new("shutdown"))
    }
}
