//! Bounded single-producer / single-consumer mailboxes.
//!
//! The sharded core forwards cross-shard work (drift requests whose session
//! stripe is owned by another shard, and the completions flowing back) over
//! these rings instead of taking locks. Each directed shard pair `(i, j)`
//! owns exactly one ring, so the single-producer / single-consumer
//! discipline is enforced structurally: shard `i` holds the [`Producer`]
//! end and shard `j` the [`Consumer`] end, and neither type is `Clone`.
//!
//! The implementation is the classic Lamport ring: a power-of-two slot
//! array indexed by free-running head/tail counters. The producer publishes
//! a slot with a release store of `tail`; the consumer acquires it before
//! reading, and releases the slot back with its store of `head`. No CAS, no
//! locks, no spinning — a full ring simply reports [`PushError`] and
//! the caller keeps the item (the shard core parks such items in a local
//! retry queue and wakes the peer).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Error returned by [`Producer::push`] when the ring is full; carries the
/// rejected item back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct PushError<T>(pub T);

struct Ring<T> {
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    mask: usize,
    /// Next slot the consumer will read. Only stored by the consumer.
    head: AtomicUsize,
    /// Next slot the producer will write. Only stored by the producer.
    tail: AtomicUsize,
}

// SAFETY: the ring is shared between exactly one producer thread and one
// consumer thread. Every slot is written by the producer strictly before
// the release store of `tail` that publishes it, and read by the consumer
// strictly after the acquire load of `tail` that observes it; the mirror
// argument covers slot reuse through `head`. `T: Send` is required because
// values cross threads.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // By the time the ring drops both endpoints are gone, so plain
        // loads are fine; drop any items still in flight.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for at in head..tail {
            let slot = &mut self.slots[at & self.mask];
            // SAFETY: slots in [head, tail) hold initialized values that
            // were never consumed.
            unsafe { slot.get_mut().assume_init_drop() };
        }
    }
}

/// The sending half of a bounded SPSC ring. Not `Clone`: exactly one
/// producer exists per ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of `head` so the fast path does not touch the
    /// consumer's cache line on every push.
    head_cache: usize,
}

/// The receiving half of a bounded SPSC ring. Not `Clone`: exactly one
/// consumer exists per ring.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Cached copy of `tail`, mirror of [`Producer::head_cache`].
    tail_cache: usize,
}

/// Creates a bounded SPSC ring with room for at least `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let ring = Arc::new(Ring {
        slots,
        mask: cap - 1,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
            head_cache: 0,
        },
        Consumer {
            ring,
            tail_cache: 0,
        },
    )
}

impl<T: Send> Producer<T> {
    /// Enqueues `item`, or hands it back if the ring is full.
    pub fn push(&mut self, item: T) -> Result<(), PushError<T>> {
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail - self.head_cache > self.ring.mask {
            // Looks full against the cached head; refresh and re-check.
            self.head_cache = self.ring.head.load(Ordering::Acquire);
            if tail - self.head_cache > self.ring.mask {
                return Err(PushError(item));
            }
        }
        let slot = &self.ring.slots[tail & self.ring.mask];
        // SAFETY: slot `tail` is unpublished (tail - head <= mask), so the
        // consumer cannot touch it until the release store below.
        unsafe { (*slot.get()).write(item) };
        self.ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }
}

impl<T: Send> Consumer<T> {
    /// Dequeues the oldest item, or `None` if the ring is empty.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.tail_cache {
            self.tail_cache = self.ring.tail.load(Ordering::Acquire);
            if head == self.tail_cache {
                return None;
            }
        }
        let slot = &self.ring.slots[head & self.ring.mask];
        // SAFETY: slot `head` was published by the acquire-observed tail
        // and will not be rewritten until the release store below frees it.
        let item = unsafe { (*slot.get()).assume_init_read() };
        self.ring.head.store(head + 1, Ordering::Release);
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn fifo_order_and_full_signal() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert_eq!(tx.push(99), Err(PushError(99)));
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
        // Wraps around the power-of-two boundary without losing order.
        for round in 0..10u32 {
            tx.push(round).unwrap();
            tx.push(round + 100).unwrap();
            assert_eq!(rx.pop(), Some(round));
            assert_eq!(rx.pop(), Some(round + 100));
        }
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, mut rx) = ring::<u8>(3);
        for i in 0..4 {
            tx.push(i).unwrap();
        }
        assert!(tx.push(9).is_err());
        for i in 0..4 {
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn drops_in_flight_items() {
        struct Probe(Arc<AtomicU64>);
        impl Drop for Probe {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let dropped = Arc::new(AtomicU64::new(0));
        let (mut tx, rx) = ring::<Probe>(8);
        for _ in 0..5 {
            assert!(tx.push(Probe(Arc::clone(&dropped))).is_ok());
        }
        drop(rx);
        drop(tx);
        assert_eq!(dropped.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_stream_is_lossless() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = ring::<u64>(64);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                let mut next = 0;
                while next < N {
                    match tx.push(next) {
                        Ok(()) => next += 1,
                        Err(PushError(_)) => std::hint::spin_loop(),
                    }
                }
            });
            let mut expect = 0;
            while expect < N {
                if let Some(got) = rx.pop() {
                    assert_eq!(got, expect);
                    expect += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }
}
