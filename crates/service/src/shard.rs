//! The nonblocking sharded core: per-core event-loop shards, request
//! pipelining, cross-shard forwarding, and per-tick batching.
//!
//! Each shard is one thread running a readiness event loop over a
//! [`Reactor`]. A shard exclusively owns an accept-balanced set of
//! connections, a bounded run queue (the admission/shedding point), and
//! one stripe of the engine's drift-session registry
//! ([`snakes_core::session::session_shard`] maps a session name to its
//! stripe, and stripe `i` belongs to shard `i`). A `drift` request that
//! arrives on the wrong shard is forwarded to its owner over an SPSC
//! mailbox ([`crate::spsc`]) instead of taking a lock; the completion
//! flows back the same way and is spliced into the origin connection's
//! in-order response window.
//!
//! One tick of a shard:
//!
//! 1. wait for readiness (or a peer/acceptor wake),
//! 2. adopt newly accepted connections,
//! 3. drain peer mailboxes (forwarded jobs in, completions back),
//! 4. read every ready connection to `WouldBlock`, splitting the bytes
//!    into pipelined frames — each frame gets an ordered response slot;
//!    malformed frames are answered in-band in their slot and the
//!    connection stays usable,
//! 5. run the queue to completion, all jobs sharing one [`BatchScope`]
//!    (same-fingerprint `price`/`recommend` requests coalesce into one
//!    SignatureCache pass),
//! 6. flush the WAL — one fsync covers every commit of the tick
//!    (group commit), and **no response is released before it**,
//! 7. route completions (local slots, remote `Done` mailboxes) and flush
//!    each connection's contiguous ready prefix to its socket.
//!
//! The blocking `Core`/`serve_connection` stack stays in the tree as the
//! conformance oracle: every admission, deadline, shedding, drain,
//! idempotency and durability semantic here is defined by matching it.

use crate::engine::{BatchScope, Deadline, Engine};
use crate::error::ServiceError;
use crate::metrics::Endpoint;
use crate::protocol::{Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use crate::reactor::{Reactor, ShardStream, Waker};
use crate::server::{panic_message, MAX_LINE_BYTES};
use crate::spsc;
use std::collections::{HashMap, VecDeque};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Tuning for a sharded core.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards (event-loop threads); must be ≥ 1.
    pub shards: usize,
    /// Per-shard run-queue capacity: the admission bound. A shard sheds
    /// (in-band `overloaded`) once this many of its admitted requests are
    /// in flight.
    pub queue_capacity: usize,
    /// Fallback backoff hint for shed responses, used until the measured
    /// drain rate produces a better one
    /// ([`crate::metrics::Registry::suggested_retry_after_ms`]).
    pub retry_after_ms: u64,
}

/// One parsed, admitted request and everything needed to answer it.
struct ShardJob {
    /// Shard that admitted the request (owns the connection).
    origin: usize,
    /// Connection id on the origin shard.
    conn: usize,
    /// Response-slot sequence on that connection.
    seq: u64,
    request: Request,
    endpoint: Endpoint,
    admitted: Instant,
    deadline: Deadline,
}

/// A message on a shard-to-shard mailbox.
enum Forward {
    /// A job whose session stripe the receiver owns.
    Job(Box<ShardJob>),
    /// A completed forwarded job, routed back to the origin shard. The
    /// response is already WAL-durable (the executor flushes before
    /// sending), so the origin may release it immediately.
    Done {
        conn: usize,
        seq: u64,
        response: Box<Response>,
    },
}

/// One in-order response slot of a pipelined connection.
enum Slot {
    /// The frame is still executing (possibly on another shard).
    Pending,
    /// The response is ready to be flushed once every earlier slot is.
    Ready(Box<Response>),
}

/// One nonblocking connection owned by a shard.
struct Conn {
    stream: Box<dyn ShardStream>,
    /// Unparsed input bytes.
    inbuf: Vec<u8>,
    /// Prefix of `inbuf` already scanned and known newline-free.
    scanned: usize,
    /// Inside an over-long frame: bytes are dropped through the next
    /// newline, which answers an in-band `bad_request`.
    discarding: bool,
    /// In-order response window; slot `i` answers frame `base_seq + i`.
    slots: VecDeque<Slot>,
    /// Sequence of `slots[0]`.
    base_seq: u64,
    /// Sequence the next parsed frame will get.
    next_seq: u64,
    /// Serialized-but-unwritten response bytes.
    outbuf: Vec<u8>,
    /// The peer half-closed its write side (EOF read).
    peer_closed: bool,
    /// Whether the reactor currently watches for write readiness.
    write_interest: bool,
    /// Last time bytes arrived; prices the drain grace window.
    last_activity: Instant,
}

impl Conn {
    fn new(stream: Box<dyn ShardStream>) -> Self {
        Conn {
            stream,
            inbuf: Vec::new(),
            scanned: 0,
            discarding: false,
            slots: VecDeque::new(),
            base_seq: 0,
            next_seq: 0,
            outbuf: Vec::new(),
            peer_closed: false,
            write_interest: false,
            last_activity: Instant::now(),
        }
    }

    /// Whether the connection owes nothing: no pending or unflushed
    /// responses.
    fn idle(&self) -> bool {
        self.slots.is_empty() && self.outbuf.is_empty()
    }
}

/// What one parsed frame turned out to be.
enum Frame {
    /// A complete line (newline stripped not guaranteed — raw bytes).
    Line(Vec<u8>),
    /// An over-long frame was discarded through its newline.
    TooLong,
}

/// Splits as many complete frames as possible out of `conn.inbuf`,
/// honoring [`MAX_LINE_BYTES`] with discard-through-newline semantics
/// (mirrors the blocking core's `read_frame`).
fn take_frames(conn: &mut Conn) -> Vec<Frame> {
    let mut frames = Vec::new();
    loop {
        if conn.discarding {
            match conn.inbuf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    conn.inbuf.drain(..=i);
                    conn.scanned = 0;
                    conn.discarding = false;
                    frames.push(Frame::TooLong);
                }
                None => {
                    conn.inbuf.clear();
                    conn.scanned = 0;
                    return frames;
                }
            }
        } else {
            match conn.inbuf[conn.scanned..].iter().position(|&b| b == b'\n') {
                Some(rel) => {
                    let end = conn.scanned + rel;
                    if end + 1 > MAX_LINE_BYTES {
                        // The whole oversize line (newline included) was
                        // already buffered: discard it in one step.
                        conn.inbuf.drain(..=end);
                        conn.scanned = 0;
                        frames.push(Frame::TooLong);
                        continue;
                    }
                    let line: Vec<u8> = conn.inbuf.drain(..=end).collect();
                    conn.scanned = 0;
                    frames.push(Frame::Line(line));
                }
                None => {
                    conn.scanned = conn.inbuf.len();
                    if conn.scanned > MAX_LINE_BYTES {
                        conn.inbuf.clear();
                        conn.scanned = 0;
                        conn.discarding = true;
                        continue;
                    }
                    return frames;
                }
            }
        }
    }
}

/// A shard's adoption inbox for freshly accepted connections. A plain
/// mutex (connection setup is rare; the request path never touches it).
type AdoptionInbox = Arc<Mutex<Vec<Box<dyn ShardStream>>>>;

/// The shared face of a running sharded core: accept-balances new
/// connections across shards and coordinates the drain.
pub struct ShardedCore {
    engine: Arc<Engine>,
    draining: Arc<AtomicBool>,
    /// Per-shard adoption inboxes for freshly accepted connections.
    inboxes: Vec<AdoptionInbox>,
    wakers: Vec<Waker>,
    /// Which shard threads are still running; a drained shard clears its
    /// flag before exiting so new connections are never stranded in a
    /// dead shard's inbox.
    live: Arc<Vec<AtomicBool>>,
    next_shard: AtomicUsize,
    retry_after_ms: u64,
}

impl ShardedCore {
    /// Spawns one event-loop thread per shard, each driving a reactor
    /// produced by `reactor_for(shard_index)`. Returns the shared handle
    /// plus the shard thread handles (join them after
    /// [`ShardedCore::shutdown`] to complete a drain).
    ///
    /// # Errors
    ///
    /// Propagates reactor construction failures.
    pub fn start<F>(
        engine: Engine,
        config: &ShardedConfig,
        mut reactor_for: F,
    ) -> io::Result<(Arc<ShardedCore>, Vec<std::thread::JoinHandle<()>>)>
    where
        F: FnMut(usize) -> io::Result<Box<dyn Reactor>>,
    {
        let shards = config.shards.max(1);
        // Amortize fsyncs across each tick's commits; responses are
        // withheld until the flush, so durability semantics are intact.
        engine.set_group_commit(true);
        let engine = Arc::new(engine);
        let draining = Arc::new(AtomicBool::new(false));
        let live: Arc<Vec<AtomicBool>> =
            Arc::new((0..shards).map(|_| AtomicBool::new(true)).collect());
        let in_flight = Arc::new(AtomicU64::new(0));
        let published: Arc<Vec<AtomicU64>> =
            Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());

        let mut reactors = Vec::with_capacity(shards);
        let mut wakers = Vec::with_capacity(shards);
        let mut inboxes = Vec::with_capacity(shards);
        for i in 0..shards {
            let reactor = reactor_for(i)?;
            wakers.push(reactor.waker());
            reactors.push(reactor);
            inboxes.push(Arc::new(Mutex::new(Vec::new())));
        }

        // One SPSC ring per directed shard pair. `producers[i][j]` is the
        // sending end of i→j; `consumers[j][i]` the receiving end.
        let ring_cap = config.queue_capacity.max(8);
        let mut producers: Vec<Vec<Option<spsc::Producer<Forward>>>> = (0..shards)
            .map(|_| (0..shards).map(|_| None).collect())
            .collect();
        let mut consumers: Vec<Vec<Option<spsc::Consumer<Forward>>>> = (0..shards)
            .map(|_| (0..shards).map(|_| None).collect())
            .collect();
        for i in 0..shards {
            for j in 0..shards {
                if i == j {
                    continue;
                }
                let (tx, rx) = spsc::ring(ring_cap);
                producers[i][j] = Some(tx);
                consumers[j][i] = Some(rx);
            }
        }

        let core = Arc::new(ShardedCore {
            engine: Arc::clone(&engine),
            draining: Arc::clone(&draining),
            inboxes: inboxes.clone(),
            wakers: wakers.clone(),
            live: Arc::clone(&live),
            next_shard: AtomicUsize::new(0),
            retry_after_ms: config.retry_after_ms,
        });

        let mut threads = Vec::with_capacity(shards);
        let mut producer_rows = producers.into_iter();
        let mut consumer_rows = consumers.into_iter();
        let mut reactor_iter = reactors.into_iter();
        for (me, inbox) in inboxes.iter().enumerate() {
            let mut shard = Shard {
                me,
                shards,
                engine: Arc::clone(&engine),
                reactor: reactor_iter.next().expect("reactor per shard"),
                draining: Arc::clone(&draining),
                inbox: Arc::clone(inbox),
                to_peers: producer_rows.next().expect("producer row"),
                from_peers: consumer_rows.next().expect("consumer row"),
                peer_wakers: wakers.clone(),
                published: Arc::clone(&published),
                in_flight: Arc::clone(&in_flight),
                live: Arc::clone(&live),
                conns: HashMap::new(),
                next_conn: 0,
                runq: VecDeque::new(),
                outbox: (0..shards).map(|_| VecDeque::new()).collect(),
                my_inflight: 0,
                queue_capacity: config.queue_capacity,
                retry_after_ms: config.retry_after_ms,
                drain_since: None,
                migrating: false,
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("snakes-shard-{me}"))
                    .spawn(move || shard.run())
                    .expect("spawn shard"),
            );
        }
        Ok((core, threads))
    }

    /// The shared engine (caches, sessions, metrics).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: admission stops, every admitted request
    /// (local or forwarded) still gets its response, then the shard
    /// threads exit.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        for w in &self.wakers {
            w.wake();
        }
    }

    /// Hands a new connection to the next live shard (round-robin accept
    /// balancing) and wakes it. Once every shard has drained and exited,
    /// the stream is simply dropped — closing it, which the peer observes
    /// as EOF — rather than stranded in a dead inbox.
    pub fn add_connection(&self, stream: Box<dyn ShardStream>) {
        let n = self.inboxes.len();
        for _ in 0..n {
            let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % n;
            if !self.live[shard].load(Ordering::SeqCst) {
                continue;
            }
            self.inboxes[shard].lock().expect("inbox lock").push(stream);
            self.wakers[shard].wake();
            if !self.live[shard].load(Ordering::SeqCst) {
                // The shard exited between the push and the re-check; its
                // final inbox sweep may have missed us. Reclaim and close
                // whatever is left so no peer waits on a dead shard.
                self.inboxes[shard].lock().expect("inbox lock").clear();
            }
            return;
        }
        // No live shard: dropping the stream closes it.
    }

    /// The configured fallback backoff hint for shed responses.
    pub fn retry_after_ms(&self) -> u64 {
        self.retry_after_ms
    }
}

/// The per-thread state of one shard.
struct Shard {
    me: usize,
    shards: usize,
    engine: Arc<Engine>,
    reactor: Box<dyn Reactor>,
    draining: Arc<AtomicBool>,
    inbox: Arc<Mutex<Vec<Box<dyn ShardStream>>>>,
    /// Sending ends of the i→j rings (`None` at `j == me`).
    to_peers: Vec<Option<spsc::Producer<Forward>>>,
    /// Receiving ends of the i→me rings (`None` at `i == me`).
    from_peers: Vec<Option<spsc::Consumer<Forward>>>,
    peer_wakers: Vec<Waker>,
    /// Per-shard published backlog (runq + outbox + own in-flight): the
    /// drain barrier. A shard may exit only when every entry is zero.
    published: Arc<Vec<AtomicU64>>,
    /// Messages currently inside SPSC rings (incremented before push,
    /// decremented after pop): closes the publish/consume race window in
    /// the drain barrier.
    in_flight: Arc<AtomicU64>,
    /// Per-shard liveness flags (see [`ShardedCore::add_connection`]).
    live: Arc<Vec<AtomicBool>>,
    conns: HashMap<usize, Conn>,
    next_conn: usize,
    runq: VecDeque<ShardJob>,
    /// Undelivered forwards per target, retried when a ring was full.
    outbox: Vec<VecDeque<Forward>>,
    /// Requests this shard admitted that have not yet been answered
    /// (queued locally, executing, or awaiting a remote completion). The
    /// admission bound: at `queue_capacity`, new frames are shed.
    my_inflight: usize,
    queue_capacity: usize,
    retry_after_ms: u64,
    /// When the drain was first observed by this shard; prices the grace
    /// window during which idle connections still get `shutting_down`
    /// answers instead of a close (mirrors the blocking core's final
    /// 50 ms read-timeout poll).
    drain_since: Option<Instant>,
    /// Whether the last tick advanced a reclustering migration: keeps the
    /// event loop on the short wait so an idle server migrates at full
    /// speed instead of one chunk per 250 ms poll.
    migrating: bool,
}

/// How long a drained connection stays open for late frames before it is
/// closed — the blocking core's read-timeout poll interval.
const DRAIN_GRACE: Duration = Duration::from_millis(50);

impl Shard {
    fn run(&mut self) {
        let mut ready: Vec<usize> = Vec::new();
        loop {
            self.publish_backlog();
            let timeout =
                if self.draining() || self.migrating || self.outbox.iter().any(|q| !q.is_empty()) {
                    Duration::from_millis(5)
                } else {
                    Duration::from_millis(250)
                };
            ready.clear();
            if self.reactor.wait(timeout, &mut ready).is_err() {
                // A broken poller cannot serve; drain what we have.
                self.draining.store(true, Ordering::SeqCst);
            }

            if self.draining() && self.drain_since.is_none() {
                self.drain_since = Some(Instant::now());
            }
            self.adopt_new_connections(&mut ready);
            self.drain_peer_mailboxes();
            for token in std::mem::take(&mut ready) {
                self.service_readable(token);
            }
            let completions = self.execute_run_queue();
            self.release_completions(completions);
            // One bounded migration chunk per tick for each job this
            // shard's stripe owns, interleaved with request service; the
            // fence advance must be durable before the next wait.
            let stepped = self.engine.tick_reclusters(self.me, self.shards);
            if stepped > 0 {
                let _ = self.engine.flush_wal();
            }
            self.migrating = stepped > 0;
            self.flush_outboxes();
            let dead: Vec<usize> = self
                .conns
                .keys()
                .copied()
                .collect::<Vec<_>>()
                .into_iter()
                .filter(|&id| !self.flush_connection(id))
                .collect();
            for id in dead {
                self.drop_connection(id);
            }

            if self.draining() && self.try_exit() {
                return;
            }
        }
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn publish_backlog(&self) {
        let outboxed: usize = self.outbox.iter().map(VecDeque::len).sum();
        let backlog = (self.runq.len() + outboxed + self.my_inflight) as u64;
        self.published[self.me].store(backlog, Ordering::SeqCst);
    }

    /// Whether the drain has fully settled: nothing queued, outboxed, or
    /// in flight anywhere. Only then may this shard thread exit without
    /// stranding an admitted request.
    fn try_exit(&mut self) -> bool {
        if !self.runq.is_empty()
            || self.my_inflight != 0
            || self.outbox.iter().any(|q| !q.is_empty())
        {
            return false;
        }
        // Late messages may still sit in the rings; drain once more and
        // re-check from scratch if anything arrived.
        self.drain_peer_mailboxes();
        if !self.runq.is_empty() || self.in_flight.load(Ordering::SeqCst) != 0 {
            return false;
        }
        self.publish_backlog();
        if self.published.iter().any(|p| p.load(Ordering::SeqCst) != 0) {
            return false;
        }
        // Settled — but linger until every connection has closed (peer
        // hangup, or idle past the drain grace window) so late frames
        // still get their `shutting_down` answers.
        if !self.conns.is_empty() {
            return false;
        }
        // Mark dead *before* the final inbox sweep: add_connection either
        // sees the flag and routes elsewhere, or its push is caught by
        // this sweep (or by its own re-check). Dropping the leftover
        // streams closes them.
        self.live[self.me].store(false, Ordering::SeqCst);
        self.inbox.lock().expect("inbox lock").clear();
        true
    }

    fn adopt_new_connections(&mut self, ready: &mut Vec<usize>) {
        let fresh: Vec<Box<dyn ShardStream>> =
            std::mem::take(&mut *self.inbox.lock().expect("inbox lock"));
        for mut stream in fresh {
            let id = self.next_conn;
            self.next_conn += 1;
            if self.reactor.register(id, stream.as_mut()).is_err() {
                continue; // the peer is already gone
            }
            self.conns.insert(id, Conn::new(stream));
            // Bytes may have landed before registration: read now.
            if !ready.contains(&id) {
                ready.push(id);
            }
        }
    }

    fn drain_peer_mailboxes(&mut self) {
        for origin in 0..self.shards {
            let mut batch = Vec::new();
            if let Some(rx) = self.from_peers[origin].as_mut() {
                while let Some(message) = rx.pop() {
                    batch.push(message);
                }
            }
            for message in batch {
                self.in_flight.fetch_sub(1, Ordering::SeqCst);
                match message {
                    Forward::Job(job) => self.runq.push_back(*job),
                    Forward::Done {
                        conn,
                        seq,
                        response,
                    } => {
                        // The executor flushed its WAL before sending, so
                        // the response may be released immediately.
                        self.my_inflight -= 1;
                        self.fill_slot(conn, seq, *response);
                    }
                }
            }
        }
    }

    /// Reads a ready connection to `WouldBlock` and admits every complete
    /// frame. Unknown tokens (already-dropped connections, stale wakes)
    /// are ignored.
    fn service_readable(&mut self, token: usize) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut chunk = [0u8; 16 * 1024];
        let mut frames = Vec::new();
        loop {
            match conn.stream.read_nb(&mut chunk) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    conn.last_activity = Instant::now();
                    // Parse per chunk so a hostile oversize line is
                    // discarded as it streams in instead of accumulating.
                    frames.append(&mut take_frames(conn));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    // Broken socket: nothing can be answered anymore.
                    self.drop_connection(token);
                    return;
                }
            }
        }
        for frame in frames {
            self.admit_frame(token, frame);
        }
    }

    /// Gives one frame its ordered response slot and either answers it
    /// in-band (malformed, version skew, draining, shed) or admits it.
    fn admit_frame(&mut self, token: usize, frame: Frame) {
        let line = match frame {
            Frame::TooLong => {
                let body = ServiceError::BadRequest(format!("line exceeds {MAX_LINE_BYTES} bytes"))
                    .to_body();
                self.answer_inline(token, Response::err(0, body));
                return;
            }
            Frame::Line(line) => line,
        };
        let text = match std::str::from_utf8(&line) {
            Ok(t) => t.trim(),
            Err(_) => {
                let body = ServiceError::BadRequest("frame is not valid UTF-8".into()).to_body();
                self.answer_inline(token, Response::err(0, body));
                return;
            }
        };
        if text.is_empty() {
            return; // blank keep-alive lines produce no response
        }
        let request = match Request::parse(text) {
            Ok(r) => r,
            Err(e) => {
                let body = ServiceError::BadRequest(format!("malformed request: {e}")).to_body();
                self.answer_inline(token, Response::err(0, body));
                return;
            }
        };
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&request.v) {
            let body = ServiceError::BadRequest(format!(
                "unsupported protocol version {} (this server speaks \
                 {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                request.v
            ))
            .to_body();
            self.answer_inline(token, Response::err(request.id, body));
            return;
        }
        let endpoint = Endpoint::of(&request.endpoint);
        if endpoint == Endpoint::Shutdown {
            // Must work even under full queues: flip the global drain
            // flag and wake every shard.
            self.draining.store(true, Ordering::SeqCst);
            for w in &self.peer_wakers {
                w.wake();
            }
            self.engine
                .registry
                .record_completion(endpoint, Duration::ZERO, true);
            self.answer_inline(token, Response::ok(request.id).for_version(request.v));
            return;
        }
        if self.draining() {
            self.answer_inline(
                token,
                Response::err(request.id, ServiceError::ShuttingDown.to_body())
                    .for_version(request.v),
            );
            return;
        }
        if self.my_inflight >= self.queue_capacity {
            // The load-shedding point. The hint scales with the measured
            // drain rate so pipelined bursts back off proportionally.
            self.engine.registry.record_shed(endpoint);
            let retry_after_ms = self
                .engine
                .registry
                .suggested_retry_after_ms(self.retry_after_ms);
            self.answer_inline(
                token,
                Response::err(
                    request.id,
                    ServiceError::Overloaded { retry_after_ms }.to_body(),
                )
                .for_version(request.v),
            );
            return;
        }
        // Admitted: the deadline starts now, and exactly one response is
        // owed from here on (the sim's first invariant).
        let admitted = Instant::now();
        let deadline = Deadline::from_ms(admitted, request.deadline_ms);
        let seq = self.open_slot(token);
        self.engine
            .registry
            .admitted
            .fetch_add(1, Ordering::Relaxed);
        self.engine
            .registry
            .queue_depth
            .fetch_add(1, Ordering::Relaxed);
        self.my_inflight += 1;
        let job = ShardJob {
            origin: self.me,
            conn: token,
            seq,
            request,
            endpoint,
            admitted,
            deadline,
        };
        let target = self.job_target(&job);
        if target == self.me {
            self.runq.push_back(job);
        } else {
            self.outbox[target].push_back(Forward::Job(Box::new(job)));
        }
    }

    /// The shard that must execute `job`: drift requests go to their
    /// session's stripe owner, recluster control frames go to the shard
    /// whose tick owns the job's stripe (so start/status/abort serialize
    /// with the migration steps), everything else runs where it arrived.
    fn job_target(&self, job: &ShardJob) -> usize {
        let stickied = matches!(
            job.endpoint,
            Endpoint::Drift
                | Endpoint::Recluster
                | Endpoint::ReclusterStatus
                | Endpoint::ReclusterAbort
        );
        if stickied {
            if let Some(name) = job.request.session.as_deref() {
                return snakes_core::session::session_shard(name, self.shards);
            }
        }
        self.me
    }

    /// Opens the next in-order response slot on `token`.
    fn open_slot(&mut self, token: usize) -> u64 {
        let conn = self.conns.get_mut(&token).expect("conn exists");
        let seq = conn.next_seq;
        conn.next_seq += 1;
        conn.slots.push_back(Slot::Pending);
        seq
    }

    /// Answers a frame immediately (no admission): opens its slot and
    /// fills it in one step, keeping pipelined ordering intact.
    fn answer_inline(&mut self, token: usize, response: Response) {
        let seq = self.open_slot(token);
        self.fill_slot(token, seq, response);
    }

    fn fill_slot(&mut self, token: usize, seq: u64, response: Response) {
        // The connection may have died while the job executed; the
        // response is then dropped, exactly like the blocking core
        // dropping a reply to a closed channel.
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let idx = (seq - conn.base_seq) as usize;
        conn.slots[idx] = Slot::Ready(Box::new(response));
    }

    /// Runs the queue to completion. All jobs of the tick share one
    /// [`BatchScope`]; completions are *returned*, not released — the
    /// caller flushes the WAL first.
    fn execute_run_queue(&mut self) -> Vec<(ShardJob, Response)> {
        let mut done = Vec::with_capacity(self.runq.len());
        let mut scope = BatchScope::new();
        while let Some(job) = self.runq.pop_front() {
            self.engine
                .registry
                .queue_depth
                .fetch_sub(1, Ordering::Relaxed);
            let response = if job.deadline.expired() {
                // Expired while queued (or in a mailbox): fail without
                // touching the engine.
                Response::err(job.request.id, ServiceError::DeadlineExceeded.to_body())
            } else {
                let started = Instant::now();
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.engine
                        .handle_batched(&job.request, &job.deadline, &mut scope)
                }));
                self.engine.registry.record_service_time(started.elapsed());
                match result {
                    Ok(response) => response,
                    Err(payload) => {
                        self.engine.registry.record_panic_caught();
                        Response::err(
                            job.request.id,
                            ServiceError::HandlerPanic(panic_message(payload.as_ref())).to_body(),
                        )
                    }
                }
            };
            if response
                .error
                .as_ref()
                .is_some_and(|e| e.code == "deadline_exceeded")
            {
                self.engine.registry.record_deadline(job.endpoint);
            }
            self.engine.registry.record_completion(
                job.endpoint,
                job.admitted.elapsed(),
                response.ok,
            );
            self.engine
                .registry
                .jobs_finished
                .fetch_add(1, Ordering::Relaxed);
            // Answer in the dialect the request spoke (v1 clients never
            // see v2-only fields).
            let response = response.for_version(job.request.v);
            done.push((job, response));
        }
        done
    }

    /// Makes the tick's commits durable, then releases its responses:
    /// local ones into their slots, remote ones into `Done` mailboxes.
    fn release_completions(&mut self, completions: Vec<(ShardJob, Response)>) {
        if completions.is_empty() {
            return;
        }
        let flushed = self.engine.flush_wal();
        for (job, mut response) in completions {
            if let Err(e) = &flushed {
                // Group-commit fsync failed: the tick's commits are NOT
                // durable and must not be acknowledged as if they were.
                // The WAL is poisoned (fail-stop), so replacing every
                // response with an in-band `internal` error converges
                // with what per-append sync would have produced.
                if response.ok {
                    let err = io::Error::new(e.kind(), format!("wal flush failed: {e}"));
                    response = Response::err(response.id, ServiceError::Io(err).to_body());
                }
            }
            if job.origin == self.me {
                self.my_inflight -= 1;
                self.fill_slot(job.conn, job.seq, response);
            } else {
                self.outbox[job.origin].push_back(Forward::Done {
                    conn: job.conn,
                    seq: job.seq,
                    response: Box::new(response),
                });
            }
        }
    }

    /// Pushes as much outboxed traffic as the rings accept and wakes the
    /// receiving shards. Full rings keep their backlog here for the next
    /// tick (the short-timeout wait retries promptly).
    fn flush_outboxes(&mut self) {
        for target in 0..self.shards {
            if self.outbox[target].is_empty() {
                continue;
            }
            let Some(tx) = self.to_peers[target].as_mut() else {
                continue;
            };
            let mut sent = false;
            while let Some(message) = self.outbox[target].pop_front() {
                // Count the message as in flight *before* the push so the
                // drain barrier can never observe it nowhere.
                self.in_flight.fetch_add(1, Ordering::SeqCst);
                match tx.push(message) {
                    Ok(()) => sent = true,
                    Err(spsc::PushError(message)) => {
                        self.in_flight.fetch_sub(1, Ordering::SeqCst);
                        self.outbox[target].push_front(message);
                        break;
                    }
                }
            }
            if sent {
                self.peer_wakers[target].wake();
            }
        }
    }

    /// Serializes the connection's contiguous ready prefix and writes as
    /// much as the socket accepts. Returns `false` when the connection is
    /// finished (broken pipe, or closed and idle) and must be dropped.
    fn flush_connection(&mut self, token: usize) -> bool {
        let drain_grace_over = self.draining()
            && self
                .drain_since
                .is_some_and(|since| since.elapsed() >= DRAIN_GRACE);
        let Some(conn) = self.conns.get_mut(&token) else {
            return true;
        };
        while let Some(Slot::Ready(_)) = conn.slots.front() {
            let Some(Slot::Ready(response)) = conn.slots.pop_front() else {
                unreachable!("front checked above");
            };
            conn.base_seq += 1;
            let mut line = response.to_line();
            line.push('\n');
            conn.outbuf.extend_from_slice(line.as_bytes());
        }
        while !conn.outbuf.is_empty() {
            match conn.stream.write_nb(&conn.outbuf) {
                Ok(0) => return false,
                Ok(n) => {
                    conn.outbuf.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
        let want_write = !conn.outbuf.is_empty();
        if want_write != conn.write_interest
            && self
                .reactor
                .set_write_interest(token, conn.stream.as_ref(), want_write)
                .is_ok()
        {
            conn.write_interest = want_write;
        }
        if conn.peer_closed && conn.idle() {
            return false;
        }
        if drain_grace_over && conn.idle() && conn.last_activity.elapsed() >= DRAIN_GRACE {
            // Drained and quiet past the grace window: close out. A frame
            // arriving inside the window still gets its `shutting_down`
            // answer, exactly like the oracle's last read-timeout poll.
            return false;
        }
        true
    }

    fn drop_connection(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.reactor.deregister(token, conn.stream.as_ref());
            // Pending slots die with the connection; their jobs still
            // run to completion wherever they are (the admitted ==
            // finished invariant is about work, not sockets).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conn_with(bytes: &[u8]) -> Conn {
        struct NullStream;
        impl ShardStream for NullStream {
            fn read_nb(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
                Err(io::ErrorKind::WouldBlock.into())
            }
            fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
                Ok(buf.len())
            }
        }
        let mut conn = Conn::new(Box::new(NullStream));
        conn.inbuf.extend_from_slice(bytes);
        conn
    }

    #[test]
    fn take_frames_splits_pipelined_lines() {
        let mut conn = conn_with(b"alpha\nbeta\ngam");
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 2);
        assert!(matches!(&frames[0], Frame::Line(l) if l == b"alpha\n"));
        assert!(matches!(&frames[1], Frame::Line(l) if l == b"beta\n"));
        assert_eq!(conn.inbuf, b"gam", "partial tail stays buffered");
        // The tail completes on the next read.
        conn.inbuf.extend_from_slice(b"ma\n");
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Line(l) if l == b"gamma\n"));
        assert!(conn.inbuf.is_empty());
    }

    #[test]
    fn take_frames_discards_oversized_lines_through_their_newline() {
        let mut conn = conn_with(b"ok-1\n");
        conn.inbuf
            .extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 1, "the oversize tail is still open");
        assert!(matches!(&frames[0], Frame::Line(l) if l == b"ok-1\n"));
        assert!(conn.discarding);
        assert!(conn.inbuf.is_empty(), "discarded bytes are not retained");
        // More garbage, then the newline, then a healthy frame: exactly
        // one TooLong marker and the healthy frame survive, in order.
        conn.inbuf.extend_from_slice(b"yyyy\nok-2\n");
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 2);
        assert!(matches!(&frames[0], Frame::TooLong));
        assert!(matches!(&frames[1], Frame::Line(l) if l == b"ok-2\n"));
        assert!(!conn.discarding);
    }

    #[test]
    fn take_frames_handles_exact_boundary() {
        // A line of exactly MAX_LINE_BYTES (incl. newline) is legal.
        let mut line = vec![b'a'; MAX_LINE_BYTES - 1];
        line.push(b'\n');
        let mut conn = conn_with(&line);
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 1);
        assert!(matches!(&frames[0], Frame::Line(l) if l.len() == MAX_LINE_BYTES));
    }

    #[test]
    fn take_frames_rejects_complete_oversized_lines() {
        // One byte past the cap, newline already buffered: the whole line
        // is discarded and flagged, and the following frame still parses.
        let mut payload = vec![b'a'; MAX_LINE_BYTES];
        payload.push(b'\n');
        payload.extend_from_slice(b"ok\n");
        let mut conn = conn_with(&payload);
        let frames = take_frames(&mut conn);
        assert_eq!(frames.len(), 2);
        assert!(matches!(&frames[0], Frame::TooLong));
        assert!(matches!(&frames[1], Frame::Line(l) if l == b"ok\n"));
        assert!(conn.inbuf.is_empty());
        assert!(!conn.discarding);
    }
}
