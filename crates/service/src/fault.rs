//! Deterministic fault injection for the advisor service.
//!
//! Everything here is driven by seeds, never by ambient entropy, so any
//! failure a fault schedule provokes can be replayed exactly:
//!
//! * [`SplitMix64`] — the tiny, dependency-free RNG every fault decision
//!   draws from;
//! * [`FaultConfig`] — the knob set (percent probabilities per fault
//!   class), parseable from the compact `key=value,...` form used by
//!   `snakes serve --fault-plan`;
//! * [`FaultPlan`] — server-side handler faults (worker panics, handler
//!   delays that skew execution against per-request deadlines). Decisions
//!   are a pure function of `(seed, request token, occurrence)`, so a
//!   retried request re-rolls while a replayed schedule reproduces;
//! * [`TransportFaults`] — client-side transport faults (torn frames,
//!   chunked slow writes, dropped connections around the response),
//!   consumed by the simulation harness in [`crate::sim`].
//!
//! Injected panics carry the [`InjectedPanic`] payload; call
//! [`silence_injected_panics`] once to keep them out of stderr while the
//! worker-side `catch_unwind` turns them into in-band `internal` errors.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A tiny deterministic RNG (Sebastiano Vigna's SplitMix64). Not
/// cryptographic; exactly reproducible from its seed on every platform,
/// which is the property fault schedules need.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw in `[0, n)`; 0 when `n` is 0.
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `pct`/100.
    pub fn chance(&mut self, pct: u8) -> bool {
        self.below(100) < u64::from(pct)
    }
}

/// The fault mix of one schedule: per-class probabilities in percent.
/// Transport faults apply on the client side of the simulated link;
/// handler faults apply inside the worker executing the request.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FaultConfig {
    /// Seed for every fault decision derived from this config.
    #[serde(default)]
    pub seed: u64,
    /// % of request frames torn mid-line, then the connection dropped.
    #[serde(default)]
    pub torn_write_pct: u8,
    /// % of request frames written in small chunks with pauses (the
    /// server sees partial reads and read-timeout polls).
    #[serde(default)]
    pub chunked_write_pct: u8,
    /// % of requests whose connection drops after the frame is sent but
    /// before the response is read.
    #[serde(default)]
    pub drop_before_read_pct: u8,
    /// % of requests whose connection drops after a partial response read.
    #[serde(default)]
    pub drop_mid_read_pct: u8,
    /// % of handled requests that panic inside the worker.
    #[serde(default)]
    pub panic_pct: u8,
    /// % of handled requests delayed inside the handler (clock skew
    /// against the request deadline).
    #[serde(default)]
    pub delay_pct: u8,
    /// Upper bound on the injected handler delay, milliseconds.
    #[serde(default)]
    pub max_delay_ms: u64,
    /// % of schedules that fire a drain (shutdown) while requests are
    /// still in flight.
    #[serde(default)]
    pub shutdown_race_pct: u8,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::quiet(0)
    }
}

impl FaultConfig {
    /// A fault-free plan (the control group): every probability zero.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            torn_write_pct: 0,
            chunked_write_pct: 0,
            drop_before_read_pct: 0,
            drop_mid_read_pct: 0,
            panic_pct: 0,
            delay_pct: 0,
            max_delay_ms: 0,
            shutdown_race_pct: 0,
        }
    }

    /// A moderately vicious default mix for manual chaos runs.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            seed,
            torn_write_pct: 8,
            chunked_write_pct: 12,
            drop_before_read_pct: 8,
            drop_mid_read_pct: 6,
            panic_pct: 5,
            delay_pct: 10,
            max_delay_ms: 2,
            shutdown_race_pct: 10,
        }
    }

    /// Parses the compact `key=value[,key=value...]` form used by
    /// `snakes serve --fault-plan`, e.g.
    /// `"seed=42,panic=5,delay=10,max_delay_ms=3"`. Unset keys default to
    /// zero; the key set is documented in `docs/API.md`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending token on unknown keys or
    /// unparseable values.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut config = FaultConfig::quiet(0);
        for token in spec.split(',') {
            let token = token.trim();
            if token.is_empty() {
                continue;
            }
            let (key, value) = token
                .split_once('=')
                .ok_or_else(|| format!("fault-plan token `{token}` is not key=value"))?;
            let pct = |v: &str| -> Result<u8, String> {
                let n: u8 = v
                    .parse()
                    .map_err(|e| format!("fault-plan `{key}={v}`: {e}"))?;
                if n > 100 {
                    return Err(format!("fault-plan `{key}={v}`: percent exceeds 100"));
                }
                Ok(n)
            };
            match key.trim() {
                "seed" => {
                    config.seed = value
                        .parse()
                        .map_err(|e| format!("fault-plan `seed={value}`: {e}"))?;
                }
                "torn" => config.torn_write_pct = pct(value)?,
                "chunked" => config.chunked_write_pct = pct(value)?,
                "drop_before" => config.drop_before_read_pct = pct(value)?,
                "drop_mid" => config.drop_mid_read_pct = pct(value)?,
                "panic" => config.panic_pct = pct(value)?,
                "delay" => config.delay_pct = pct(value)?,
                "max_delay_ms" => {
                    config.max_delay_ms = value
                        .parse()
                        .map_err(|e| format!("fault-plan `max_delay_ms={value}`: {e}"))?;
                }
                "shutdown_race" => config.shutdown_race_pct = pct(value)?,
                other => return Err(format!("unknown fault-plan key `{other}`")),
            }
        }
        Ok(config)
    }
}

/// The payload of every injected handler panic. The worker's
/// `catch_unwind` maps it to an in-band `internal` error; the panic hook
/// installed by [`silence_injected_panics`] keeps it off stderr.
#[derive(Debug)]
pub struct InjectedPanic;

/// Installs (once, process-wide) a panic hook that stays silent for
/// [`InjectedPanic`] payloads and delegates everything else to the
/// previously installed hook.
pub fn silence_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedPanic>().is_none() {
                previous(info);
            }
        }));
    });
}

/// What a [`FaultPlan`] does to one handled request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandlerFault {
    /// Panic inside the worker (caught, surfaced as `internal`).
    Panic,
    /// Sleep this long before executing (skews execution relative to the
    /// request's deadline).
    DelayMs(u64),
}

/// Server-side fault injector: decides, per handled request, whether to
/// panic or delay. The decision is a pure function of the plan seed, a
/// caller-supplied request token, and how many times that token has been
/// seen — so a fixed seed replays identically while a *retried* request
/// (same token, next occurrence) re-rolls and eventually passes.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    seen: Mutex<HashMap<u64, u32>>,
    panics_injected: AtomicU64,
    delays_injected: AtomicU64,
}

/// Bound on the occurrence map; beyond it the map resets (a long-running
/// chaos daemon must not grow without bound).
const SEEN_CAPACITY: usize = 1 << 16;

impl FaultPlan {
    /// A plan executing `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            seen: Mutex::new(HashMap::new()),
            panics_injected: AtomicU64::new(0),
            delays_injected: AtomicU64::new(0),
        }
    }

    /// The plan's configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The fault (if any) for this arrival of `token`. Stateful only in
    /// the per-token occurrence counter.
    pub fn handler_fault(&self, token: u64) -> Option<HandlerFault> {
        let occurrence = {
            let mut seen = self.seen.lock().expect("fault plan lock");
            if seen.len() >= SEEN_CAPACITY {
                seen.clear();
            }
            let n = seen.entry(token).or_insert(0);
            *n += 1;
            *n
        };
        let mut rng = SplitMix64::new(
            self.config
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(token)
                .wrapping_add(u64::from(occurrence) << 32),
        );
        if rng.chance(self.config.panic_pct) {
            self.panics_injected.fetch_add(1, Ordering::Relaxed);
            return Some(HandlerFault::Panic);
        }
        if rng.chance(self.config.delay_pct) && self.config.max_delay_ms > 0 {
            self.delays_injected.fetch_add(1, Ordering::Relaxed);
            return Some(HandlerFault::DelayMs(
                1 + rng.below(self.config.max_delay_ms),
            ));
        }
        None
    }

    /// Executes the fault for this arrival of `token`: sleeps for a delay
    /// fault, panics (with [`InjectedPanic`]) for a panic fault.
    pub fn perturb(&self, token: u64) {
        match self.handler_fault(token) {
            Some(HandlerFault::Panic) => std::panic::panic_any(InjectedPanic),
            Some(HandlerFault::DelayMs(ms)) => {
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            None => {}
        }
    }

    /// Panics injected so far.
    pub fn panics_injected(&self) -> u64 {
        self.panics_injected.load(Ordering::Relaxed)
    }

    /// Delays injected so far.
    pub fn delays_injected(&self) -> u64 {
        self.delays_injected.load(Ordering::Relaxed)
    }
}

/// A stable request token for fault decisions: FNV-1a over the endpoint,
/// the correlation id, and the idempotency key (when present). Retries of
/// one logical request map to one token; distinct requests to distinct
/// tokens (up to hashing).
pub fn request_token(endpoint: &str, id: u64, idempotency_key: Option<&str>) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    eat(endpoint.as_bytes());
    eat(&id.to_le_bytes());
    if let Some(key) = idempotency_key {
        eat(key.as_bytes());
    }
    h
}

/// What happens to one outbound request frame on the simulated link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteFault {
    /// The frame goes out whole.
    Clean,
    /// The frame is cut after `at` bytes and the connection dropped.
    Torn {
        /// Bytes delivered before the cut (may equal the frame length:
        /// the frame arrives whole but unterminated, then the link dies).
        at: usize,
    },
    /// The frame goes out whole, but in `chunk`-byte pieces with
    /// `pause_ms` pauses in between (partial reads server-side).
    Chunked {
        /// Bytes per piece (≥ 1).
        chunk: usize,
        /// Pause between pieces, milliseconds.
        pause_ms: u64,
    },
}

/// What happens on the read side after a frame was delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadFault {
    /// The response is read normally.
    Clean,
    /// The connection drops before any of the response is read.
    DropBeforeRead,
    /// The connection drops after a partial response read.
    DropMidRead,
}

/// Client-side transport fault source: one per simulated client, seeded,
/// consumed attempt-by-attempt. Deterministic because each simulated
/// client owns its generator (no cross-thread interleaving in the draw
/// order).
#[derive(Debug)]
pub struct TransportFaults {
    config: FaultConfig,
    rng: SplitMix64,
    torn: u64,
    chunked: u64,
    dropped: u64,
}

impl TransportFaults {
    /// A fault source for one simulated client. `salt` separates clients
    /// sharing one schedule seed.
    pub fn new(config: FaultConfig, salt: u64) -> Self {
        let seed = config.seed ^ salt.wrapping_mul(0xA076_1D64_78BD_642F);
        TransportFaults {
            config,
            rng: SplitMix64::new(seed),
            torn: 0,
            chunked: 0,
            dropped: 0,
        }
    }

    /// The fate of an outbound frame of `len` bytes.
    pub fn write_fault(&mut self, len: usize) -> WriteFault {
        if self.rng.chance(self.config.torn_write_pct) {
            self.torn += 1;
            return WriteFault::Torn {
                at: self.rng.below(len as u64 + 1) as usize,
            };
        }
        if len > 1 && self.rng.chance(self.config.chunked_write_pct) {
            self.chunked += 1;
            return WriteFault::Chunked {
                chunk: 1 + self.rng.below((len / 2) as u64) as usize,
                pause_ms: self.rng.below(2),
            };
        }
        WriteFault::Clean
    }

    /// The fate of the response read following a delivered frame.
    pub fn read_fault(&mut self) -> ReadFault {
        if self.rng.chance(self.config.drop_before_read_pct) {
            self.dropped += 1;
            return ReadFault::DropBeforeRead;
        }
        if self.rng.chance(self.config.drop_mid_read_pct) {
            self.dropped += 1;
            return ReadFault::DropMidRead;
        }
        ReadFault::Clean
    }

    /// `(torn, chunked, dropped)` counts injected so far.
    pub fn counts(&self) -> (u64, u64, u64) {
        (self.torn, self.chunked, self.dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_reproducible_and_uniformish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
        let mut hits = 0;
        for _ in 0..10_000 {
            if c.chance(25) {
                hits += 1;
            }
        }
        assert!((2_000..3_000).contains(&hits), "25% chance drew {hits}");
    }

    #[test]
    fn config_parses_and_rejects() {
        let c = FaultConfig::parse("seed=42, panic=5,delay=10,max_delay_ms=3").unwrap();
        assert_eq!(c.seed, 42);
        assert_eq!(c.panic_pct, 5);
        assert_eq!(c.delay_pct, 10);
        assert_eq!(c.max_delay_ms, 3);
        assert_eq!(c.torn_write_pct, 0);
        assert!(FaultConfig::parse("panic").is_err());
        assert!(FaultConfig::parse("panic=101").is_err());
        assert!(FaultConfig::parse("frobnicate=1").is_err());
        assert_eq!(FaultConfig::parse("").unwrap(), FaultConfig::quiet(0));
    }

    #[test]
    fn handler_faults_are_token_deterministic_and_reroll_per_occurrence() {
        let config = FaultConfig {
            panic_pct: 50,
            ..FaultConfig::quiet(99)
        };
        let a = FaultPlan::new(config.clone());
        let b = FaultPlan::new(config);
        // Same seed, same tokens in any order: identical decisions per
        // (token, occurrence).
        let tokens: Vec<u64> = (0..64).map(|i| request_token("price", i, None)).collect();
        let first_a: Vec<_> = tokens.iter().map(|&t| a.handler_fault(t)).collect();
        let first_b: Vec<_> = tokens.iter().rev().map(|&t| b.handler_fault(t)).collect();
        let first_b: Vec<_> = first_b.into_iter().rev().collect();
        assert_eq!(first_a, first_b);
        // At 50% panic odds, 20 occurrences of one token must eventually
        // draw a pass (else retries could never succeed).
        let plan = FaultPlan::new(FaultConfig {
            panic_pct: 50,
            ..FaultConfig::quiet(3)
        });
        let token = request_token("drift", 1, Some("k"));
        assert!((0..20).any(|_| plan.handler_fault(token).is_none()));
        assert!(plan.panics_injected() > 0);
    }

    #[test]
    fn transport_faults_cover_all_classes() {
        let config = FaultConfig {
            torn_write_pct: 30,
            chunked_write_pct: 30,
            drop_before_read_pct: 20,
            drop_mid_read_pct: 20,
            ..FaultConfig::quiet(5)
        };
        let mut faults = TransportFaults::new(config, 1);
        let mut saw = (false, false, false, false, false);
        for _ in 0..500 {
            match faults.write_fault(100) {
                WriteFault::Clean => saw.0 = true,
                WriteFault::Torn { at } => {
                    assert!(at <= 100);
                    saw.1 = true;
                }
                WriteFault::Chunked { chunk, .. } => {
                    assert!(chunk >= 1);
                    saw.2 = true;
                }
            }
            match faults.read_fault() {
                ReadFault::Clean => {}
                ReadFault::DropBeforeRead => saw.3 = true,
                ReadFault::DropMidRead => saw.4 = true,
            }
        }
        assert_eq!(saw, (true, true, true, true, true));
        let (torn, chunked, dropped) = faults.counts();
        assert!(torn > 0 && chunked > 0 && dropped > 0);
    }

    #[test]
    fn request_tokens_separate_requests() {
        let a = request_token("price", 1, None);
        let b = request_token("price", 2, None);
        let c = request_token("drift", 1, None);
        let d = request_token("price", 1, Some("key"));
        assert!(a != b && a != c && a != d && b != c);
    }
}
