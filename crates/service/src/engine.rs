//! The advisor engine: endpoint handlers executing against state shared
//! by every connection — the crossing-signature cache, the physical cost
//! memo, and the drift-session registry.
//!
//! The engine is transport-agnostic: [`Engine::handle`] maps one
//! [`Request`] to one [`Response`], so tests (and the in-process client)
//! can drive it without a socket. Everything it computes is bit-identical
//! to the corresponding direct library call — caches only ever memoize
//! pure functions of their keys, and f64s survive the JSON wire because
//! Rust formats them shortest-roundtrip.

use crate::durability::{Checkpoint, Durability, IdemSnapshot, LogEntry, Media, SessionSnapshot};
use crate::error::ServiceError;
use crate::fault::{request_token, FaultPlan};
use crate::metrics::Registry;
use crate::protocol::{
    AggregationStatsBody, CacheStatsBody, DriftBody, MeasuredBody, PriceBody, RecommendationBody,
    Request, Response, RowMajorBody, SchemaSpec, StatsBody, StorageStatsBody, StrategySpec,
};
use parking_lot::Mutex;
use snakes_core::advisor::{recommend_with_model, Recommendation};
use snakes_core::cost::CostModel;
use snakes_core::dp::IncrementalDp;
use snakes_core::lattice::LatticeShape;
use snakes_core::path::LatticePath;
use snakes_core::schema::StarSchema;
use snakes_core::session::session_shard;
use snakes_core::workload::{VersionedWorkload, Workload, WorkloadDelta};
use snakes_curves::{
    path_curve, snaked_path_curve, CompactHilbert, Linearization, SignatureCache, StrategyId,
};
use snakes_storage::{CellData, PackedLayout, PoolStats, SharedCostMemo, StorageConfig, TableFile};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// Largest grid a `measure` request may pack (cells). Keeps one hostile
/// request from allocating the machine away; analytic pricing has no such
/// bound (signature tables are O(|L|)).
pub const MAX_MEASURE_CELLS: u64 = 1 << 22;

/// Largest table a *physical* measurement (`measure.physical`) may
/// bulk-load, in record bytes (64 MiB). The analytic memo path has no
/// such bound because it materializes nothing.
pub const MAX_PHYSICAL_BYTES: u64 = 64 << 20;

/// A per-request deadline, measured from admission. Handlers check it
/// cooperatively at stage boundaries (between parse, optimize, pack and
/// measure), so an expired request stops consuming its worker early.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds after `start` (`None` = unbounded).
    pub fn from_ms(start: Instant, ms: Option<u64>) -> Self {
        Deadline {
            at: ms.map(|m| start + std::time::Duration::from_millis(m)),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Errors with [`ServiceError::DeadlineExceeded`] once expired.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::DeadlineExceeded`] when expired.
    pub fn check(&self) -> Result<(), ServiceError> {
        if self.expired() {
            Err(ServiceError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// One drift session: a versioned workload and its incremental DP, pinned
/// to the schema it was created with.
struct DriftSession {
    schema_fingerprint: u64,
    /// The wire spec of the session's schema — logged with every durable
    /// drift record so recovery can rebuild the session standalone.
    schema_spec: SchemaSpec,
    versioned: VersionedWorkload,
    dp: IncrementalDp,
}

/// Bound on the idempotency cache. Far beyond any retry window; when hit,
/// the cache recycles wholesale (a key older than 2¹⁶ distinct successors
/// has no live retries).
const IDEMPOTENCY_CAPACITY: usize = 1 << 16;

/// One idempotency slot: `None` while the first arrival executes (the
/// slot's mutex serializes duplicates behind it), `Some` once an
/// authoritative response is stored.
type IdempotencySlot = Arc<Mutex<Option<Response>>>;

/// The drift-session registry, striped by [`session_shard`] so the
/// sharded core's exclusive-ownership discipline maps one stripe to one
/// shard. Each stripe keeps its own mutex: under the ownership discipline
/// it is uncontended (only the owning shard locks it on the request path;
/// `stats`, checkpoints and state probes touch other stripes rarely), and
/// with the legacy blocking core every worker may lock every stripe, which
/// is exactly the old global-lock behavior split `n` ways.
struct SessionMap {
    stripes: Vec<Mutex<HashMap<String, Arc<Mutex<DriftSession>>>>>,
}

impl SessionMap {
    fn new(stripes: usize) -> Self {
        SessionMap {
            stripes: (0..stripes.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    fn stripe(&self, name: &str) -> &Mutex<HashMap<String, Arc<Mutex<DriftSession>>>> {
        &self.stripes[session_shard(name, self.stripes.len())]
    }

    fn get(&self, name: &str) -> Option<Arc<Mutex<DriftSession>>> {
        self.stripe(name).lock().get(name).map(Arc::clone)
    }

    fn insert(&self, name: String, session: Arc<Mutex<DriftSession>>) {
        self.stripe(&name).lock().insert(name, session);
    }

    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Handles to every session, across all stripes.
    fn handles(&self) -> Vec<(String, Arc<Mutex<DriftSession>>)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            out.extend(stripe.iter().map(|(k, v)| (k.clone(), Arc::clone(v))));
        }
        out
    }
}

/// Exact identity of one `price` computation: schema fingerprint, strategy
/// and the workload's probability vector bit-for-bit. Two requests with
/// equal keys are guaranteed the same `expected_cost` bits.
#[derive(PartialEq, Eq, Hash)]
struct PriceKey {
    schema: u64,
    strategy: StrategyId,
    probs: Vec<u64>,
}

/// Exact identity of one `recommend` computation.
#[derive(PartialEq, Eq, Hash)]
struct RecommendKey {
    schema: u64,
    probs: Vec<u64>,
}

/// A per-tick coalescing scope for same-fingerprint read-only work.
///
/// The sharded core creates one scope per event-loop tick and threads it
/// through every request executed in that tick via
/// [`Engine::handle_batched`]. The first request for a given
/// (schema, strategy, workload) key performs the real SignatureCache
/// dot-product pass; followers in the same tick reuse its result. The
/// fan-out is bit-identical to serial evaluation: a serial follower would
/// hit the signature cache and recompute the identical dot product over
/// the identical probability vector, reporting `cache_hit: true` — which
/// is precisely what the scope replays. Entries keyed on full probability
/// bits, never on a lossy hash, so a collision cannot cross-contaminate.
#[derive(Default)]
pub struct BatchScope {
    prices: HashMap<PriceKey, Memoized<f64>>,
    recommendations: HashMap<RecommendKey, Memoized<RecommendationBody>>,
}

/// A memoized leader result plus whether this key already counted toward
/// the `stats.batching.batches` gauge (first follower counts the batch).
struct Memoized<T> {
    value: T,
    counted: bool,
}

impl BatchScope {
    /// A fresh, empty scope (one per tick — or per call, which disables
    /// coalescing and reproduces strictly serial behavior).
    pub fn new() -> Self {
        Self::default()
    }
}

/// The shared advisor state. One engine serves every connection of a
/// server; `Arc<Engine>` is the unit of sharing.
pub struct Engine {
    signatures: Mutex<SignatureCache>,
    memo: SharedCostMemo,
    sessions: SessionMap,
    idempotency: Mutex<HashMap<String, IdempotencySlot>>,
    /// Durable substrate (WAL + checkpoints); `None` runs in-memory only.
    durability: Option<Durability>,
    /// Accumulated buffer-pool counters of every physical measurement.
    measure_pool: Mutex<PoolStats>,
    fault: Option<FaultPlan>,
    /// Request-outcome counters, shared with the server's admission path.
    pub registry: Registry,
    started: Instant,
    workers: u64,
    queue_capacity: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine with empty caches.
    pub fn new() -> Self {
        Engine {
            signatures: Mutex::new(SignatureCache::new()),
            memo: SharedCostMemo::new(),
            sessions: SessionMap::new(1),
            idempotency: Mutex::new(HashMap::new()),
            durability: None,
            measure_pool: Mutex::new(PoolStats::default()),
            fault: None,
            registry: Registry::new(),
            started: Instant::now(),
            workers: 0,
            queue_capacity: 0,
        }
    }

    /// As [`Engine::new`], recording the server's worker count and queue
    /// capacity for the `stats` endpoint. The session registry is striped
    /// `workers` ways ([`session_shard`] picks the stripe), so a sharded
    /// server built with `workers == shards` gets a one-to-one mapping
    /// from session stripes to owning shards.
    pub fn with_limits(workers: usize, queue_capacity: usize) -> Self {
        Engine {
            workers: workers as u64,
            queue_capacity: queue_capacity as u64,
            sessions: SessionMap::new(workers.max(1)),
            ..Engine::new()
        }
    }

    /// The number of session stripes (equal to the shard count the engine
    /// was built for; `1` for a default engine).
    pub fn session_stripes(&self) -> usize {
        self.sessions.stripes.len()
    }

    /// Arms deterministic fault injection: every executed request rolls
    /// for a handler panic or delay against `plan`. Replays from the
    /// idempotency cache do not roll (they execute nothing).
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Attaches durable storage and recovers any prior state from it:
    /// every drift session (at its exact acknowledged version and
    /// probability vector) and every stored idempotent response. From
    /// here on, `drift` commits are logged to the WAL *before* they are
    /// acknowledged, so a crash at any write boundary loses nothing that
    /// was acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates media I/O errors; `InvalidData` when recovered state is
    /// corrupt (fail-stop — the engine refuses to start on bad state
    /// rather than silently dropping it).
    pub fn with_durability(mut self, media: Media) -> io::Result<Self> {
        let corrupt = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let (durability, recovered) = Durability::open(media)?;
        let sessions = SessionMap::new(self.sessions.stripes.len());
        for snap in recovered.sessions {
            let schema = snap
                .schema
                .clone()
                .build()
                .map_err(|e| corrupt(format!("session `{}`: {e}", snap.name)))?;
            let shape = LatticeShape::of_schema(&schema);
            // `Workload::new` stores the probabilities verbatim, so the
            // recovered distribution is bit-identical to the logged one.
            let workload = Workload::new(shape, snap.probs)
                .map_err(|e| corrupt(format!("session `{}`: {e}", snap.name)))?;
            let session = DriftSession {
                schema_fingerprint: schema.fingerprint(),
                schema_spec: snap.schema,
                versioned: VersionedWorkload::restore(workload, snap.version),
                dp: IncrementalDp::new(CostModel::of_schema(&schema)),
            };
            sessions.insert(snap.name, Arc::new(Mutex::new(session)));
        }
        let mut idempotency = HashMap::new();
        for snap in recovered.idempotency {
            idempotency.insert(snap.key, Arc::new(Mutex::new(Some(snap.response))));
        }
        self.sessions = sessions;
        self.idempotency = Mutex::new(idempotency);
        self.durability = Some(durability);
        Ok(self)
    }

    /// Switches the WAL to group commit: appends buffer in the log and
    /// [`Engine::flush_wal`] performs one fsync for the whole batch. The
    /// sharded core enables this and flushes once per event-loop tick,
    /// *before* releasing any of the tick's responses to sockets — so the
    /// "durable before acknowledged" contract is preserved while the
    /// fsync cost is amortized across every commit in the tick. Without
    /// this call each append syncs individually (the legacy core's
    /// behavior, and what direct [`Engine::handle`] callers get).
    pub fn set_group_commit(&self, enabled: bool) {
        if let Some(d) = &self.durability {
            d.set_deferred_sync(enabled);
        }
    }

    /// Forces buffered WAL appends to disk (one fsync, no-op when clean
    /// or when durability is off).
    ///
    /// # Errors
    ///
    /// Propagates the sync failure; the WAL is then poisoned and every
    /// subsequent mutation fails, so callers must treat an error here as
    /// fail-stop and withhold the tick's acknowledgements.
    pub fn flush_wal(&self) -> io::Result<()> {
        match &self.durability {
            Some(d) => d.flush(),
            None => Ok(()),
        }
    }

    /// Executes one request. Transport errors aside, every failure is
    /// reported in-band as an error body; the response always echoes the
    /// request id.
    ///
    /// With an idempotency key, the dedup lookup happens before anything
    /// else — before even the deadline check — so a retry of an already
    /// acknowledged mutation replays the stored response instead of
    /// re-executing. Only authoritative outcomes (`ok` and `bad_request`)
    /// are stored; transient failures (`overloaded`, `deadline_exceeded`,
    /// `internal`, `shutting_down`) leave the slot empty for the retry.
    ///
    /// # Panics
    ///
    /// Only under an armed fault plan (injected handler panics); the
    /// server's workers catch those and answer in-band.
    pub fn handle(&self, req: &Request, deadline: &Deadline) -> Response {
        // A fresh scope per call coalesces nothing: strictly serial
        // behavior, and the oracle the batched path is tested against.
        self.handle_batched(req, deadline, &mut BatchScope::new())
    }

    /// As [`Engine::handle`], coalescing same-fingerprint `price` and
    /// `recommend` computations through `scope`. The sharded core passes
    /// one scope per event-loop tick; results are bit-identical to calling
    /// [`Engine::handle`] once per request (see [`BatchScope`]).
    pub fn handle_batched(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Response {
        let resp = match req.idempotency_key.as_deref().filter(|k| !k.is_empty()) {
            None => self.execute(req, deadline, scope),
            Some(key) => {
                let slot = self.claim_slot(key);
                let mut slot = slot.lock();
                match slot.as_ref() {
                    Some(stored) => {
                        self.registry.record_deduplicated();
                        let mut resp = stored.clone();
                        resp.id = req.id;
                        resp.deduplicated = true;
                        resp
                    }
                    None => {
                        let resp = self.execute(req, deadline, scope);
                        if is_authoritative(&resp) {
                            self.registry.record_idempotency_stored();
                            *slot = Some(resp.clone());
                            // A committed drift already logged its response
                            // atomically with the session mutation. Every
                            // other authoritative response is logged
                            // best-effort: losing one costs a re-execution
                            // of a side-effect-free request, never state.
                            if req.endpoint != "drift" || !resp.ok {
                                if let Some(d) = &self.durability {
                                    let _ = d.append(&LogEntry {
                                        drift: None,
                                        idempotency: Some(IdemSnapshot {
                                            key: key.to_string(),
                                            response: resp.clone(),
                                        }),
                                    });
                                }
                            }
                        }
                        resp
                    }
                }
            }
        };
        self.maybe_checkpoint();
        resp
    }

    /// The slot for `key`, created empty on first sight. Duplicates of an
    /// in-flight request serialize behind the slot's own mutex, so the map
    /// lock is never held across execution.
    fn claim_slot(&self, key: &str) -> IdempotencySlot {
        let mut map = self.idempotency.lock();
        if map.len() >= IDEMPOTENCY_CAPACITY && !map.contains_key(key) {
            map.clear();
        }
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    /// The stored response for `key`, if an authoritative outcome was
    /// recorded. Lets a client (or the simulation harness) recover the
    /// answer of a request whose response was lost in transit.
    pub fn idempotent_replay(&self, key: &str) -> Option<Response> {
        let slot = {
            let map = self.idempotency.lock();
            Arc::clone(map.get(key)?)
        };
        let slot = slot.lock();
        slot.clone()
    }

    /// `(workload version, class probabilities)` of a drift session, for
    /// state-equivalence checks. `None` for unknown sessions.
    pub fn session_state(&self, name: &str) -> Option<(u64, Vec<f64>)> {
        let session = self.sessions.get(name)?;
        let session = session.lock();
        Some((
            session.versioned.version(),
            session.versioned.workload().probs().to_vec(),
        ))
    }

    fn execute(&self, req: &Request, deadline: &Deadline, scope: &mut BatchScope) -> Response {
        if let Some(plan) = &self.fault {
            plan.perturb(request_token(
                &req.endpoint,
                req.id,
                req.idempotency_key.as_deref(),
            ));
        }
        let result = match req.endpoint.as_str() {
            "recommend" => self.recommend(req, deadline, scope),
            "price" => self.price(req, deadline, scope),
            "drift" => self.drift(req, deadline),
            "explain" => self.explain(req, deadline),
            "stats" => self.stats(req),
            "ping" => Ok(Response::ok(req.id)),
            other => Err(ServiceError::BadRequest(format!(
                "unknown endpoint `{other}`"
            ))),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => Response::err(req.id, e.to_body()),
        }
    }

    fn parse_inputs(&self, req: &Request) -> Result<(StarSchema, Workload), ServiceError> {
        let schema = req
            .schema
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`schema` is required".into()))?
            .build()?;
        let shape = LatticeShape::of_schema(&schema);
        let workload = req
            .workload
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`workload` is required".into()))?
            .build(&shape)?;
        Ok((schema, workload))
    }

    fn recommend(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        deadline.check()?;
        let key = RecommendKey {
            schema: schema.fingerprint(),
            probs: workload.probs().iter().map(|p| p.to_bits()).collect(),
        };
        let body = match scope.recommendations.get_mut(&key) {
            Some(memo) => {
                // Same tick, same inputs: the recommendation is a pure
                // function of (schema, workload), so the fan-out clones
                // the leader's body — byte-identical to recomputing it.
                self.registry.record_batch_follower(&mut memo.counted);
                memo.value.clone()
            }
            None => {
                let model = CostModel::of_schema(&schema);
                let rec = recommend_with_model(&model, &workload);
                let body = recommendation_body(&rec);
                scope.recommendations.insert(
                    key,
                    Memoized {
                        value: body.clone(),
                        counted: false,
                    },
                );
                body
            }
        };
        Ok(Response {
            recommendation: Some(body),
            ..Response::ok(req.id)
        })
    }

    fn price(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        let strategy = req
            .strategy
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`strategy` is required".into()))?;
        let (lazy, id, label) = resolve_strategy(&schema, &strategy)?;
        deadline.check()?;
        let key = PriceKey {
            schema: schema.fingerprint(),
            strategy: id.clone(),
            probs: workload.probs().iter().map(|p| p.to_bits()).collect(),
        };
        let (expected_cost, cache_hit) = match scope.prices.get_mut(&key) {
            Some(memo) => {
                // A same-tick leader already ran this exact dot product.
                // Serially, this request would hit the signature cache and
                // recompute the identical product over identical bits, so
                // replaying (leader cost, cache_hit: true) is bit-exact.
                self.registry.record_batch_follower(&mut memo.counted);
                (memo.value, true)
            }
            None => {
                let (cost, hit) = {
                    let mut cache = self.signatures.lock();
                    let hits_before = cache.hits();
                    // The curve is built only on a signature-cache miss:
                    // the steady-state pricing path never walks the grid.
                    let table = cache.get_or_compute_with(&schema, &id, || lazy.build(&schema));
                    (table.expected_cost(&workload), cache.hits() > hits_before)
                };
                scope.prices.insert(
                    key,
                    Memoized {
                        value: cost,
                        counted: false,
                    },
                );
                (cost, hit)
            }
        };
        deadline.check()?;
        let measured = match &req.measure {
            None => None,
            Some(m) => {
                let curve = lazy.build(&schema);
                let cells = schema.num_cells();
                if cells > MAX_MEASURE_CELLS {
                    return Err(ServiceError::BadRequest(format!(
                        "grid has {cells} cells; physical measurement is capped at \
                         {MAX_MEASURE_CELLS}"
                    )));
                }
                if m.records_per_cell == 0 || m.page_size == 0 || m.record_size == 0 {
                    return Err(ServiceError::BadRequest(
                        "`measure` fields must be positive".into(),
                    ));
                }
                let data = CellData::from_counts(
                    schema.grid_shape(),
                    vec![m.records_per_cell; cells as usize],
                );
                let config = StorageConfig {
                    page_size: m.page_size,
                    record_size: m.record_size,
                };
                deadline.check()?;
                let stats = if m.physical {
                    // Measure through the real paged engine: bulk-load an
                    // in-memory table and scan every query through its
                    // buffer pool. Bit-identical to the analytic memo
                    // (tests/storage_differential.rs proves it), but the
                    // pool's physical counters feed `stats.storage`.
                    let bytes = cells
                        .checked_mul(m.records_per_cell)
                        .and_then(|r| r.checked_mul(m.record_size))
                        .ok_or_else(|| {
                            ServiceError::BadRequest("`measure` sizes overflow".into())
                        })?;
                    if bytes > MAX_PHYSICAL_BYTES {
                        return Err(ServiceError::BadRequest(format!(
                            "physical measurement would pack {bytes} record bytes; \
                             capped at {MAX_PHYSICAL_BYTES}"
                        )));
                    }
                    let record = vec![0u8; m.record_size as usize];
                    let mut table =
                        TableFile::create_in_memory(&curve, &data, config, |_, _| record.clone())?;
                    let stats = table.workload_stats(&schema, &curve, &workload)?;
                    self.measure_pool.lock().absorb(table.pool_stats());
                    stats
                } else {
                    let layout = PackedLayout::pack(&curve, &data, config);
                    let eval = req.eval.unwrap_or_default();
                    self.memo
                        .workload_stats(&schema, &curve, &layout, &workload, eval.engine)
                };
                Some(MeasuredBody {
                    avg_seeks: stats.avg_seeks,
                    avg_normalized_blocks: stats.avg_normalized_blocks,
                })
            }
        };
        Ok(Response {
            price: Some(PriceBody {
                strategy: label,
                expected_cost,
                cache_hit,
                measured,
            }),
            ..Response::ok(req.id)
        })
    }

    fn drift(&self, req: &Request, deadline: &Deadline) -> Result<Response, ServiceError> {
        let name = req
            .session
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`session` is required".into()))?;
        let session = {
            let mut stripe = self.sessions.stripe(&name).lock();
            match stripe.get(&name) {
                Some(s) => Arc::clone(s),
                None => {
                    let (schema, workload) = self.parse_inputs(req).map_err(|e| {
                        ServiceError::BadRequest(format!(
                            "session `{name}` does not exist and cannot be created: {e}"
                        ))
                    })?;
                    let model = CostModel::of_schema(&schema);
                    let s = Arc::new(Mutex::new(DriftSession {
                        schema_fingerprint: schema.fingerprint(),
                        schema_spec: SchemaSpec::of(&schema),
                        versioned: VersionedWorkload::new(workload),
                        dp: IncrementalDp::new(model),
                    }));
                    stripe.insert(name.clone(), Arc::clone(&s));
                    s
                }
            }
        };
        let mut session = session.lock();
        if let Some(spec) = &req.schema {
            // A schema on a follow-up call must agree with the session's.
            let schema = spec.clone().build()?;
            if schema.fingerprint() != session.schema_fingerprint {
                return Err(ServiceError::BadRequest(format!(
                    "session `{name}` was created for a different schema"
                )));
            }
        }
        deadline.check()?;
        // Coalesce: apply every delta (each bumps the version), then
        // re-optimize once, on the final distribution. The deltas are
        // applied to a scratch copy and committed only if every one is
        // valid — and no fallible check (deadline included) runs after the
        // commit — so a request mutates the session exactly-wholly or
        // not at all. That atomicity is what makes an idempotent retry of
        // an acknowledged `drift` apply its deltas exactly once.
        let deltas = req.deltas.as_deref().unwrap_or(&[]);
        let mut scratch = session.versioned.clone();
        let mut drift_tv = 0.0;
        for spec in deltas {
            let delta = WorkloadDelta::new(spec.updates.clone())?;
            drift_tv += scratch.apply(&delta)?;
        }
        let workload = scratch.workload().clone();
        let outcome = session.dp.reoptimize(&workload);
        let resp = Response {
            drift: Some(DriftBody {
                session: name.clone(),
                version: scratch.version(),
                coalesced: deltas.len(),
                drift_tv,
                path_dims: outcome.path.dims().to_vec(),
                path: outcome.path.to_string(),
                cost: outcome.cost,
                reused: outcome.reused,
                shift_bound: outcome.shift_bound,
                gap: outcome.gap,
            }),
            ..Response::ok(req.id)
        };
        // Log before commit: the after-state snapshot — and, when the
        // request carries an idempotency key, the response acknowledging
        // it, in the same atomic entry — must be durable before the
        // session mutates. A WAL failure aborts the request with the
        // session untouched, so durable state never trails acknowledged
        // state.
        if let Some(d) = &self.durability {
            d.append(&LogEntry {
                drift: Some(SessionSnapshot {
                    name,
                    schema: session.schema_spec.clone(),
                    version: scratch.version(),
                    probs: scratch.workload().probs().to_vec(),
                }),
                idempotency: req
                    .idempotency_key
                    .as_ref()
                    .filter(|k| !k.is_empty())
                    .map(|key| IdemSnapshot {
                        key: key.clone(),
                        response: resp.clone(),
                    }),
            })?;
        }
        session.versioned = scratch;
        Ok(resp)
    }

    fn explain(&self, req: &Request, deadline: &Deadline) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        let model = CostModel::of_schema(&schema);
        deadline.check()?;
        let path = match &req.strategy {
            Some(s) => {
                let dims = s.dims.clone().ok_or_else(|| {
                    ServiceError::BadRequest("`explain` strategies must carry `dims`".into())
                })?;
                LatticePath::from_dims(model.shape().clone(), dims)?
            }
            None => snakes_core::dp::optimal_lattice_path(&model, &workload).path,
        };
        let explanation = snakes_core::explain::explain(&model, &path, &workload);
        Ok(Response {
            explanation: Some(explanation),
            ..Response::ok(req.id)
        })
    }

    fn stats(&self, req: &Request) -> Result<Response, ServiceError> {
        Ok(Response {
            stats: Some(self.stats_body()),
            ..Response::ok(req.id)
        })
    }

    /// The current `stats` payload (also used by the serve ticker).
    pub fn stats_body(&self) -> StatsBody {
        let signature_cache = {
            let cache = self.signatures.lock();
            CacheStatsBody {
                hits: cache.hits(),
                misses: cache.misses(),
                entries: cache.len() as u64,
            }
        };
        StatsBody {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            queue_depth: self
                .registry
                .queue_depth
                .load(std::sync::atomic::Ordering::Relaxed),
            sessions: self.sessions.len() as u64,
            signature_cache,
            cost_memo: CacheStatsBody {
                hits: self.memo.hits(),
                misses: self.memo.misses(),
                entries: self.memo.len() as u64,
            },
            endpoints: self.registry.to_bodies(),
            idempotency: CacheStatsBody {
                hits: self
                    .registry
                    .deduplicated
                    .load(std::sync::atomic::Ordering::Relaxed),
                misses: self
                    .registry
                    .idempotency_stored
                    .load(std::sync::atomic::Ordering::Relaxed),
                entries: self.idempotency.lock().len() as u64,
            },
            panics_caught: self
                .registry
                .panics_caught
                .load(std::sync::atomic::Ordering::Relaxed),
            batching: self.registry.batching_body(),
            storage: self.storage_stats_body(),
            aggregation: aggregation_stats_body(),
        }
    }

    fn storage_stats_body(&self) -> StorageStatsBody {
        let pool = *self.measure_pool.lock();
        let mut body = StorageStatsBody {
            enabled: self.durability.is_some(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_hit_rate: pool.hit_rate(),
            pool_evictions: pool.evictions,
            physical_reads: pool.physical_reads,
            physical_writes: pool.physical_writes,
            ..StorageStatsBody::default()
        };
        if let Some(d) = &self.durability {
            let wal = d.wal.lock();
            body.wal_bytes = wal.bytes();
            body.wal_entries = wal.entries();
            body.checkpoints = d.checkpoints.load(Ordering::Relaxed);
            body.recoveries = d.recoveries;
            body.recovered_sessions = d.recovered_sessions;
        }
        body
    }

    /// Checkpoints opportunistically once enough WAL entries accumulated.
    fn maybe_checkpoint(&self) {
        if let Some(d) = &self.durability {
            if d.should_checkpoint() {
                // Best-effort: a failed or contended round leaves the old
                // checkpoint and the full log authoritative, and the next
                // request retries.
                let _ = self.checkpoint();
            }
        }
    }

    /// Folds the whole engine state into a fresh checkpoint and truncates
    /// the WAL. Returns `Ok(false)` without durability, or when a
    /// concurrent request held a session or idempotency slot (the round
    /// aborts rather than risk snapshotting a half-committed mutation —
    /// drift commits hold their session lock across the WAL append, so
    /// all-locks-acquired implies every logged entry is also committed).
    ///
    /// # Errors
    ///
    /// Propagates media/WAL errors; on failure nothing was truncated.
    pub fn checkpoint(&self) -> io::Result<bool> {
        let Some(d) = &self.durability else {
            return Ok(false);
        };
        // WAL lock first: stalls new appends for the duration; the
        // session try-locks below never block, so no deadlock with
        // drift's session-then-WAL order.
        let mut wal = d.wal.lock();
        let handles: Vec<(String, Arc<Mutex<DriftSession>>)> = self.sessions.handles();
        let mut snaps = Vec::with_capacity(handles.len());
        for (name, session) in &handles {
            let Some(session) = session.try_lock() else {
                return Ok(false);
            };
            snaps.push(SessionSnapshot {
                name: name.clone(),
                schema: session.schema_spec.clone(),
                version: session.versioned.version(),
                probs: session.versioned.workload().probs().to_vec(),
            });
        }
        let slots: Vec<(String, IdempotencySlot)> = {
            let map = self.idempotency.lock();
            map.iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut idem = Vec::with_capacity(slots.len());
        for (key, slot) in &slots {
            let Some(slot) = slot.try_lock() else {
                return Ok(false);
            };
            if let Some(resp) = slot.as_ref() {
                idem.push(IdemSnapshot {
                    key: key.clone(),
                    response: resp.clone(),
                });
            }
        }
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        idem.sort_by(|a, b| a.key.cmp(&b.key));
        let ckpt = Checkpoint {
            next_lsn: wal.next_lsn(),
            sessions: snaps,
            idempotency: idem,
        };
        d.install_checkpoint(&mut wal, &ckpt)?;
        Ok(true)
    }
}

/// Aggregation-kernel counters for the `stats` payload. The underlying
/// metrics registry is process-global (shared with every engine in the
/// process), matching how phase timings are collected elsewhere.
fn aggregation_stats_body() -> AggregationStatsBody {
    let m = snakes_core::parallel::metrics::snapshot();
    AggregationStatsBody {
        walks_blocked: m.agg_walks_blocked,
        walks_scalar: m.agg_walks_scalar,
        walks_parallel: m.agg_walks_parallel,
        edges: m.agg_edges,
        decode_nanos: m.agg_decode_nanos,
        count_nanos: m.agg_count_nanos,
        prefix_nanos: m.agg_prefix_nanos,
    }
}

/// Whether a response settles its request for good. Authoritative
/// outcomes are cached under the idempotency key; transient ones
/// (shedding, deadlines, panics, drains) must stay uncached so a retry
/// re-executes.
fn is_authoritative(resp: &Response) -> bool {
    resp.ok || resp.error.as_ref().is_some_and(|e| e.code == "bad_request")
}

/// An owned linearization over a schema's grid: the two families the wire
/// protocol can name.
enum WireCurve {
    Path(snakes_curves::nested::NestedLoops),
    Hilbert(CompactHilbert),
}

impl Linearization for WireCurve {
    fn extents(&self) -> &[u64] {
        match self {
            WireCurve::Path(c) => c.extents(),
            WireCurve::Hilbert(c) => c.extents(),
        }
    }
    fn rank(&self, coords: &[u64]) -> u64 {
        match self {
            WireCurve::Path(c) => c.rank(coords),
            WireCurve::Hilbert(c) => c.rank(coords),
        }
    }
    fn coords(&self, rank: u64, out: &mut [u64]) {
        match self {
            WireCurve::Path(c) => c.coords(rank, out),
            WireCurve::Hilbert(c) => c.coords(rank, out),
        }
    }
    fn coords_block(&self, start: u64, len: usize, out: &mut snakes_curves::CoordsBlock) {
        // Forwarded so the blocked aggregation kernel sees the concrete
        // curve's incremental decoder, not the generic per-rank default.
        match self {
            WireCurve::Path(c) => c.coords_block(start, len, out),
            WireCurve::Hilbert(c) => c.coords_block(start, len, out),
        }
    }
    fn rank_runs(&self, ranges: &[std::ops::Range<u64>], sink: &mut dyn FnMut(u64, u64)) {
        match self {
            WireCurve::Path(c) => c.rank_runs(ranges, sink),
            WireCurve::Hilbert(c) => c.rank_runs(ranges, sink),
        }
    }
    fn has_structural_runs(&self) -> bool {
        match self {
            WireCurve::Path(c) => c.has_structural_runs(),
            WireCurve::Hilbert(c) => c.has_structural_runs(),
        }
    }
}

/// A validated strategy whose grid walk has not been materialized yet.
/// Curve construction enumerates the whole grid — deferring it lets the
/// pricing fast path (signature-cache hits and same-tick batch followers)
/// skip it entirely.
enum LazyCurve {
    Path { path: LatticePath, snaked: bool },
    Hilbert,
}

impl LazyCurve {
    /// Materializes the linearization (the expensive step).
    fn build(&self, schema: &StarSchema) -> WireCurve {
        match self {
            LazyCurve::Path { path, snaked } => WireCurve::Path(if *snaked {
                snaked_path_curve(schema, path)
            } else {
                path_curve(schema, path)
            }),
            LazyCurve::Hilbert => WireCurve::Hilbert(CompactHilbert::new(schema.grid_shape())),
        }
    }
}

fn resolve_strategy(
    schema: &StarSchema,
    spec: &StrategySpec,
) -> Result<(LazyCurve, StrategyId, String), ServiceError> {
    match (&spec.dims, spec.kind.as_deref()) {
        (Some(dims), None) => {
            let shape = LatticeShape::of_schema(schema);
            let path = LatticePath::from_dims(shape, dims.clone())?;
            let label = if spec.snaked {
                format!("{path} (snaked)")
            } else {
                path.to_string()
            };
            Ok((
                LazyCurve::Path {
                    path,
                    snaked: spec.snaked,
                },
                StrategyId::Path {
                    dims: dims.clone(),
                    snaked: spec.snaked,
                },
                label,
            ))
        }
        (None, Some("hilbert")) => Ok((
            LazyCurve::Hilbert,
            StrategyId::Named("hilbert".into()),
            "hilbert".into(),
        )),
        (None, Some(other)) => Err(ServiceError::BadRequest(format!(
            "unknown strategy kind `{other}`"
        ))),
        (Some(_), Some(_)) => Err(ServiceError::BadRequest(
            "give either `dims` or `kind`, not both".into(),
        )),
        (None, None) => Err(ServiceError::BadRequest(
            "`strategy` needs `dims` or `kind`".into(),
        )),
    }
}

fn recommendation_body(rec: &Recommendation) -> RecommendationBody {
    RecommendationBody {
        path_dims: rec.optimal_path.dims().to_vec(),
        path: rec.optimal_path.to_string(),
        expected_cost_plain: rec.plain_cost,
        expected_cost_snaked: rec.snaked_cost,
        guarantee_factor: rec.guarantee_factor,
        max_snaking_benefit: rec.max_snaking_benefit,
        row_majors: rec
            .row_majors
            .iter()
            .map(|(order, plain, snaked)| RowMajorBody {
                order_innermost_first: order.clone(),
                cost_plain: *plain,
                cost_snaked: *snaked,
            })
            .collect(),
        savings_vs_worst_row_major: rec.savings_vs_worst_row_major(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DeltaSpec, SchemaSpec, WorkloadSpec};
    use snakes_core::workload::WeightUpdate;

    fn toy_schema() -> SchemaSpec {
        SchemaSpec::of(&StarSchema::paper_toy())
    }

    fn uniform_workload() -> WorkloadSpec {
        let shape = LatticeShape::of_schema(&StarSchema::paper_toy());
        WorkloadSpec::of(&Workload::uniform(shape))
    }

    #[test]
    fn recommend_matches_direct_library_call() {
        let engine = Engine::new();
        let req = Request::recommend(toy_schema(), uniform_workload());
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let body = resp.recommendation.unwrap();
        let schema = StarSchema::paper_toy();
        let w = Workload::uniform(LatticeShape::of_schema(&schema));
        let direct = snakes_core::advisor::recommend(&schema, &w);
        assert_eq!(body.path_dims, direct.optimal_path.dims().to_vec());
        assert_eq!(
            body.expected_cost_snaked.to_bits(),
            direct.snaked_cost.to_bits()
        );
        assert_eq!(
            body.expected_cost_plain.to_bits(),
            direct.plain_cost.to_bits()
        );
        assert_eq!(body.row_majors.len(), direct.row_majors.len());
    }

    #[test]
    fn price_is_bit_identical_and_caches() {
        let engine = Engine::new();
        let schema = StarSchema::paper_toy();
        let shape = LatticeShape::of_schema(&schema);
        let w = Workload::uniform(shape.clone());
        let dims = snakes_core::dp::optimal_lattice_path(&CostModel::of_schema(&schema), &w)
            .path
            .dims()
            .to_vec();
        let req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(dims.clone()),
        );
        let first = engine.handle(&req, &Deadline::none());
        assert!(first.ok, "{:?}", first.error);
        let body = first.price.unwrap();
        assert!(!body.cache_hit);
        // Direct: aggregate the same curve, price the same workload.
        let path = LatticePath::from_dims(shape, dims).unwrap();
        let curve = snaked_path_curve(&schema, &path);
        let direct = snakes_curves::aggregate_class_costs(&schema, &curve).expected_cost(&w);
        assert_eq!(body.expected_cost.to_bits(), direct.to_bits());
        // Second identical request hits the shared cache.
        let second = engine.handle(&req, &Deadline::none()).price.unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.expected_cost.to_bits(), direct.to_bits());
    }

    #[test]
    fn price_measures_physically_through_the_memo() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: 3,
            page_size: 512,
            record_size: 125,
            ..Default::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let m = resp.price.unwrap().measured.unwrap();
        assert!(m.avg_normalized_blocks >= 1.0);
        assert!(m.avg_seeks >= 1.0);
        let stats = engine.stats_body();
        assert!(stats.cost_memo.misses > 0);
        // Identical measurement: all memo hits, identical numbers.
        let again = engine.handle(&req, &Deadline::none());
        let m2 = again.price.unwrap().measured.unwrap();
        assert_eq!(m2.avg_seeks.to_bits(), m.avg_seeks.to_bits());
        let stats2 = engine.stats_body();
        assert_eq!(stats2.cost_memo.misses, stats.cost_memo.misses);
        assert!(stats2.cost_memo.hits > stats.cost_memo.hits);
    }

    #[test]
    fn drift_session_coalesces_and_warm_restarts() {
        let engine = Engine::new();
        // Irregular weights so no two paths tie and the stability gap is
        // positive (mirrors the core dp warm-restart test).
        let schema = StarSchema::paper_toy();
        let shape = LatticeShape::of_schema(&schema);
        let n = shape.num_classes();
        let w = Workload::from_weights(
            shape.clone(),
            (0..n).map(|r| 1.0 + r as f64 * 0.13).collect(),
        )
        .unwrap();
        // Initialize the session.
        let mut init = Request::drift("s1", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(crate::protocol::WorkloadSpec::of(&w));
        let r0 = engine.handle(&init, &Deadline::none());
        assert!(r0.ok, "{:?}", r0.error);
        let d0 = r0.drift.unwrap();
        assert_eq!(d0.version, 0);
        assert!(!d0.reused, "first call runs the full DP");
        assert!(
            d0.gap.is_finite() && d0.gap > 0.0,
            "test needs a unique optimum, gap {}",
            d0.gap
        );
        // Two tiny deltas in one request: versions advance by 2, one
        // re-optimization, warm restart — each perturbation far inside
        // the stability radius certified by the gap.
        let model = CostModel::of_schema(&schema);
        let dmax_top = model.len_between(&shape.bottom(), &shape.top());
        let eps = d0.gap / (1000.0 * dmax_top);
        let deltas = vec![
            DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 0,
                    weight: w.prob_by_rank(0) + eps,
                }],
            },
            DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 1,
                    weight: w.prob_by_rank(1) + eps / 2.0,
                }],
            },
        ];
        let r1 = engine.handle(&Request::drift("s1", deltas), &Deadline::none());
        let d1 = r1.drift.unwrap();
        assert_eq!(d1.version, 2);
        assert_eq!(d1.coalesced, 2);
        assert!(d1.drift_tv > 0.0);
        assert!(d1.reused, "tiny drift must warm-restart");
        assert_eq!(engine.stats_body().sessions, 1);
        // Unknown session without schema/workload is a bad request.
        let r2 = engine.handle(&Request::drift("nope", vec![]), &Deadline::none());
        assert!(!r2.ok);
        assert_eq!(r2.error.unwrap().code, "bad_request");
    }

    #[test]
    fn explain_names_the_top_contributors() {
        let engine = Engine::new();
        let mut req = Request::new("explain");
        req.schema = Some(toy_schema());
        req.workload = Some(uniform_workload());
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let e = resp.explanation.unwrap();
        assert!(!e.classes.is_empty());
        assert!(e.snaked_total > 0.0);
    }

    #[test]
    fn expired_deadline_short_circuits() {
        let engine = Engine::new();
        let req = Request::recommend(toy_schema(), uniform_workload());
        let past = Deadline::from_ms(Instant::now() - std::time::Duration::from_secs(1), Some(0));
        let resp = engine.handle(&req, &past);
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "deadline_exceeded");
    }

    #[test]
    fn bad_requests_are_reported_in_band() {
        let engine = Engine::new();
        let resp = engine.handle(&Request::new("frobnicate"), &Deadline::none());
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let resp = engine.handle(&Request::new("price"), &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let mut req = Request::price(toy_schema(), uniform_workload(), StrategySpec::default());
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        req.strategy = Some(StrategySpec {
            kind: Some("peano".into()),
            ..StrategySpec::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.error.unwrap().message.contains("peano"));
    }

    #[test]
    fn idempotent_drift_applies_exactly_once() {
        let engine = Engine::new();
        let mut init = Request::drift("s", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(uniform_workload());
        assert!(engine.handle(&init, &Deadline::none()).ok);
        let req = Request::drift(
            "s",
            vec![DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 0,
                    weight: 0.5,
                }],
            }],
        )
        .with_idempotency_key("drift-1");
        let first = engine.handle(&req, &Deadline::none());
        assert!(first.ok, "{:?}", first.error);
        assert!(!first.deduplicated);
        let (version, probs) = engine.session_state("s").unwrap();
        assert_eq!(version, 1);
        // The retry replays the stored response; the session does not move.
        let mut retry = req.clone();
        retry.id = 999;
        let second = engine.handle(&retry, &Deadline::none());
        assert!(second.deduplicated);
        assert_eq!(second.id, 999, "replay echoes the retry's own id");
        assert_eq!(
            second.drift.as_ref().unwrap().version,
            first.drift.as_ref().unwrap().version
        );
        let (version2, probs2) = engine.session_state("s").unwrap();
        assert_eq!(version2, 1, "retried delta applied exactly once");
        for (a, b) in probs.iter().zip(&probs2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The stored answer is recoverable out-of-band too.
        let replay = engine.idempotent_replay("drift-1").unwrap();
        assert_eq!(
            replay.drift.unwrap().cost.to_bits(),
            first.drift.unwrap().cost.to_bits()
        );
        assert!(engine.idempotent_replay("unseen").is_none());
        let stats = engine.stats_body();
        assert_eq!(stats.idempotency.hits, 1);
        assert_eq!(stats.idempotency.misses, 1);
        assert_eq!(stats.idempotency.entries, 1);
    }

    #[test]
    fn transient_failures_are_not_cached_but_bad_requests_are() {
        let engine = Engine::new();
        // deadline_exceeded is transient: the retry executes for real.
        let req = Request::recommend(toy_schema(), uniform_workload()).with_idempotency_key("k1");
        let past = Deadline::from_ms(Instant::now() - std::time::Duration::from_secs(1), Some(0));
        let miss = engine.handle(&req, &past);
        assert_eq!(miss.error.unwrap().code, "deadline_exceeded");
        let retry = engine.handle(&req, &Deadline::none());
        assert!(retry.ok, "{:?}", retry.error);
        assert!(!retry.deduplicated, "transient outcome was not cached");
        // bad_request is authoritative: the retry is deduplicated.
        let bad = Request::new("frobnicate").with_idempotency_key("k2");
        let first = engine.handle(&bad, &Deadline::none());
        assert_eq!(first.error.unwrap().code, "bad_request");
        let second = engine.handle(&bad, &Deadline::none());
        assert!(second.deduplicated);
    }

    #[test]
    fn invalid_delta_in_batch_leaves_session_untouched() {
        let engine = Engine::new();
        let mut init = Request::drift("s", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(uniform_workload());
        assert!(engine.handle(&init, &Deadline::none()).ok);
        let (_, before) = engine.session_state("s").unwrap();
        // First delta valid, second out of bounds: nothing may apply.
        let req = Request::drift(
            "s",
            vec![
                DeltaSpec {
                    updates: vec![WeightUpdate {
                        rank: 0,
                        weight: 0.9,
                    }],
                },
                DeltaSpec {
                    updates: vec![WeightUpdate {
                        rank: 1_000_000,
                        weight: 0.1,
                    }],
                },
            ],
        );
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let (version, after) = engine.session_state("s").unwrap();
        assert_eq!(version, 0, "failed batch must not advance the version");
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn armed_fault_plan_perturbs_execution() {
        use crate::fault::{silence_injected_panics, FaultConfig};
        silence_injected_panics();
        let engine = Engine::new().with_fault(FaultPlan::new(FaultConfig {
            panic_pct: 100,
            ..FaultConfig::quiet(1)
        }));
        let req = Request::new("ping");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.handle(&req, &Deadline::none())
        }));
        assert!(outcome.is_err(), "100% panic plan must panic");
    }

    use snakes_storage::CrashStore;

    fn durable_engine(store: &Arc<CrashStore>) -> Engine {
        Engine::new()
            .with_durability(Media::Store(Arc::clone(store)))
            .unwrap()
    }

    fn drift_once(engine: &Engine, session: &str, rank: usize, weight: f64, key: &str) -> Response {
        let req = Request::drift(
            session,
            vec![DeltaSpec {
                updates: vec![WeightUpdate { rank, weight }],
            }],
        )
        .with_idempotency_key(key);
        engine.handle(&req, &Deadline::none())
    }

    #[test]
    fn durable_engine_recovers_state_bit_identically_across_restart() {
        let store = Arc::new(CrashStore::new());
        let (state, acked_cost) = {
            let engine = durable_engine(&store);
            let mut init = Request::drift("etl", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            assert!(drift_once(&engine, "etl", 0, 0.4, "k-1").ok);
            let acked = drift_once(&engine, "etl", 1, 0.2, "k-2");
            assert!(acked.ok);
            (
                engine.session_state("etl").unwrap(),
                acked.drift.unwrap().cost,
            )
        };
        // "Reboot": only bytes that reached the store survive.
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let stats = engine.stats_body().storage;
        assert!(stats.enabled);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.recovered_sessions, 1);
        let (version, probs) = engine.session_state("etl").unwrap();
        assert_eq!(version, state.0);
        assert_eq!(probs.len(), state.1.len());
        for (a, b) in probs.iter().zip(&state.1) {
            assert_eq!(a.to_bits(), b.to_bits(), "recovered probs must be exact");
        }
        // Acknowledged idempotent responses replay across the restart.
        let replay = engine.idempotent_replay("k-2").unwrap();
        assert_eq!(replay.drift.unwrap().cost.to_bits(), acked_cost.to_bits());
        // And a retried request deduplicates instead of re-applying.
        let retry = drift_once(&engine, "etl", 1, 0.2, "k-2");
        assert!(retry.deduplicated);
        assert_eq!(engine.session_state("etl").unwrap().0, version);
        // The recovered session keeps drifting from where it left off.
        assert!(drift_once(&engine, "etl", 2, 0.1, "k-3").ok);
        assert_eq!(engine.session_state("etl").unwrap().0, version + 1);
    }

    #[test]
    fn checkpoint_folds_the_log_and_survives_restart() {
        let store = Arc::new(CrashStore::new());
        {
            let engine = durable_engine(&store);
            let mut init = Request::drift("s", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            assert!(drift_once(&engine, "s", 0, 0.7, "ck-1").ok);
            assert!(engine.checkpoint().unwrap(), "uncontended checkpoint runs");
            let storage = engine.stats_body().storage;
            assert_eq!(storage.checkpoints, 1);
            assert_eq!(storage.wal_entries, 0, "checkpoint truncates the log");
            // Post-checkpoint tail: replay must apply it on top.
            assert!(drift_once(&engine, "s", 1, 0.1, "ck-2").ok);
        }
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let (version, _) = engine.session_state("s").unwrap();
        assert_eq!(version, 2, "checkpoint state plus log tail");
        assert!(engine.idempotent_replay("ck-1").is_some());
        assert!(engine.idempotent_replay("ck-2").is_some());
    }

    #[test]
    fn recovered_response_bytes_match_the_original_wire_encoding() {
        let store = Arc::new(CrashStore::new());
        let first = {
            let engine = durable_engine(&store);
            let mut init = Request::drift("w", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            drift_once(&engine, "w", 3, 0.25, "wire-1")
        };
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let replay = engine.idempotent_replay("wire-1").unwrap();
        assert_eq!(
            replay.to_line(),
            first.to_line(),
            "stored response must survive the WAL round-trip byte-for-byte"
        );
    }

    #[test]
    fn physical_measurement_is_bit_identical_to_the_analytic_memo() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: 3,
            page_size: 512,
            record_size: 125,
            physical: false,
        });
        let analytic = engine.handle(&req, &Deadline::none());
        assert!(analytic.ok, "{:?}", analytic.error);
        let analytic = analytic.price.unwrap().measured.unwrap();
        req.measure.as_mut().unwrap().physical = true;
        let physical = engine.handle(&req, &Deadline::none());
        assert!(physical.ok, "{:?}", physical.error);
        let physical = physical.price.unwrap().measured.unwrap();
        assert_eq!(physical.avg_seeks.to_bits(), analytic.avg_seeks.to_bits());
        assert_eq!(
            physical.avg_normalized_blocks.to_bits(),
            analytic.avg_normalized_blocks.to_bits()
        );
        // The paged engine really ran: its pool counters surface in stats.
        let storage = engine.stats_body().storage;
        assert!(storage.pool_misses > 0, "bulk load must touch the pool");
        assert!(storage.physical_writes > 0, "bulk load must write pages");
        assert!(storage.pool_hit_rate > 0.0, "scans re-read loaded pages");
    }

    #[test]
    fn oversized_physical_measurement_is_rejected_in_band() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: u64::MAX / 128,
            physical: true,
            ..Default::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
    }
}
