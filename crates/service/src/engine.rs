//! The advisor engine: endpoint handlers executing against state shared
//! by every connection — the crossing-signature cache, the physical cost
//! memo, and the drift-session registry.
//!
//! The engine is transport-agnostic: [`Engine::handle`] maps one
//! [`Request`] to one [`Response`], so tests (and the in-process client)
//! can drive it without a socket. Everything it computes is bit-identical
//! to the corresponding direct library call — caches only ever memoize
//! pure functions of their keys, and f64s survive the JSON wire because
//! Rust formats them shortest-roundtrip.

use crate::durability::{
    Checkpoint, Durability, IdemSnapshot, LogEntry, Media, ReclusterSnapshot, SessionSnapshot,
};
use crate::error::ServiceError;
use crate::fault::{request_token, FaultPlan};
use crate::metrics::Registry;
use crate::protocol::{
    AggregationStatsBody, CacheStatsBody, DriftBody, MeasureSpec, MeasuredBody, PriceBody,
    ReclusterBody, ReclusterStatsBody, RecommendationBody, Request, Response, RowMajorBody,
    SchemaSpec, StatsBody, StorageStatsBody, StrategySpec,
};
use crate::recluster::{build_job, ReclusterJob, RunningJob};
use parking_lot::Mutex;
use snakes_core::advisor::{
    recommend_with_model, reorg_decision, ReclusterTrigger, Recommendation,
};
use snakes_core::cost::CostModel;
use snakes_core::dp::IncrementalDp;
use snakes_core::lattice::LatticeShape;
use snakes_core::path::LatticePath;
use snakes_core::schema::StarSchema;
use snakes_core::session::session_shard;
use snakes_core::workload::{VersionedWorkload, Workload, WorkloadDelta};
use snakes_curves::{
    path_curve, snaked_path_curve, CompactHilbert, Linearization, SignatureCache, StrategyId,
};
use snakes_storage::{CellData, PackedLayout, PoolStats, SharedCostMemo, StorageConfig, TableFile};
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Largest grid a `measure` request may pack (cells). Keeps one hostile
/// request from allocating the machine away; analytic pricing has no such
/// bound (signature tables are O(|L|)).
pub const MAX_MEASURE_CELLS: u64 = 1 << 22;

/// Largest table a *physical* measurement (`measure.physical`) may
/// bulk-load, in record bytes (64 MiB). The analytic memo path has no
/// such bound because it materializes nothing.
pub const MAX_PHYSICAL_BYTES: u64 = 64 << 20;

/// A per-request deadline, measured from admission. Handlers check it
/// cooperatively at stage boundaries (between parse, optimize, pack and
/// measure), so an expired request stops consuming its worker early.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    at: Option<Instant>,
}

impl Deadline {
    /// No deadline.
    pub fn none() -> Self {
        Deadline { at: None }
    }

    /// A deadline `ms` milliseconds after `start` (`None` = unbounded).
    pub fn from_ms(start: Instant, ms: Option<u64>) -> Self {
        Deadline {
            at: ms.map(|m| start + std::time::Duration::from_millis(m)),
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        self.at.is_some_and(|at| Instant::now() >= at)
    }

    /// Errors with [`ServiceError::DeadlineExceeded`] once expired.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::DeadlineExceeded`] when expired.
    pub fn check(&self) -> Result<(), ServiceError> {
        if self.expired() {
            Err(ServiceError::DeadlineExceeded)
        } else {
            Ok(())
        }
    }
}

/// One drift session: a versioned workload and its incremental DP, pinned
/// to the schema it was created with.
struct DriftSession {
    schema_fingerprint: u64,
    /// The wire spec of the session's schema — logged with every durable
    /// drift record so recovery can rebuild the session standalone.
    schema_spec: SchemaSpec,
    versioned: VersionedWorkload,
    dp: IncrementalDp,
    /// The linearization the session's table is assumed to be clustered
    /// by: pinned to the first commit's optimum, advanced when an
    /// auto-triggered migration lands. Drives the reorg cost/benefit
    /// comparison. `None` until the first commit, or with the
    /// auto-recluster trigger disabled.
    layout_path: Option<LatticePath>,
    /// Hysteresis state of the auto-recluster trigger. Advisory —
    /// not persisted; a restart restarts the worth-it streak.
    trigger: Option<ReclusterTrigger>,
}

/// Bound on the idempotency cache. Far beyond any retry window; when hit,
/// the cache recycles wholesale (a key older than 2¹⁶ distinct successors
/// has no live retries).
const IDEMPOTENCY_CAPACITY: usize = 1 << 16;

/// One idempotency slot: `None` while the first arrival executes (the
/// slot's mutex serializes duplicates behind it), `Some` once an
/// authoritative response is stored.
type IdempotencySlot = Arc<Mutex<Option<Response>>>;

/// The drift-session registry, striped by [`session_shard`] so the
/// sharded core's exclusive-ownership discipline maps one stripe to one
/// shard. Each stripe keeps its own mutex: under the ownership discipline
/// it is uncontended (only the owning shard locks it on the request path;
/// `stats`, checkpoints and state probes touch other stripes rarely), and
/// with the legacy blocking core every worker may lock every stripe, which
/// is exactly the old global-lock behavior split `n` ways.
struct SessionMap {
    stripes: Vec<Mutex<HashMap<String, Arc<Mutex<DriftSession>>>>>,
}

impl SessionMap {
    fn new(stripes: usize) -> Self {
        SessionMap {
            stripes: (0..stripes.max(1)).map(|_| Mutex::default()).collect(),
        }
    }

    fn stripe(&self, name: &str) -> &Mutex<HashMap<String, Arc<Mutex<DriftSession>>>> {
        &self.stripes[session_shard(name, self.stripes.len())]
    }

    fn get(&self, name: &str) -> Option<Arc<Mutex<DriftSession>>> {
        self.stripe(name).lock().get(name).map(Arc::clone)
    }

    fn insert(&self, name: String, session: Arc<Mutex<DriftSession>>) {
        self.stripe(&name).lock().insert(name, session);
    }

    fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().len()).sum()
    }

    /// Handles to every session, across all stripes.
    fn handles(&self) -> Vec<(String, Arc<Mutex<DriftSession>>)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let stripe = stripe.lock();
            out.extend(stripe.iter().map(|(k, v)| (k.clone(), Arc::clone(v))));
        }
        out
    }
}

/// Exact identity of one `price` computation: schema fingerprint, strategy
/// and the workload's probability vector bit-for-bit. Two requests with
/// equal keys are guaranteed the same `expected_cost` bits.
#[derive(PartialEq, Eq, Hash)]
struct PriceKey {
    schema: u64,
    strategy: StrategyId,
    probs: Vec<u64>,
}

/// Exact identity of one `recommend` computation.
#[derive(PartialEq, Eq, Hash)]
struct RecommendKey {
    schema: u64,
    probs: Vec<u64>,
}

/// A per-tick coalescing scope for same-fingerprint read-only work.
///
/// The sharded core creates one scope per event-loop tick and threads it
/// through every request executed in that tick via
/// [`Engine::handle_batched`]. The first request for a given
/// (schema, strategy, workload) key performs the real SignatureCache
/// dot-product pass; followers in the same tick reuse its result. The
/// fan-out is bit-identical to serial evaluation: a serial follower would
/// hit the signature cache and recompute the identical dot product over
/// the identical probability vector, reporting `cache_hit: true` — which
/// is precisely what the scope replays. Entries keyed on full probability
/// bits, never on a lossy hash, so a collision cannot cross-contaminate.
#[derive(Default)]
pub struct BatchScope {
    prices: HashMap<PriceKey, Memoized<f64>>,
    recommendations: HashMap<RecommendKey, Memoized<RecommendationBody>>,
}

/// A memoized leader result plus whether this key already counted toward
/// the `stats.batching.batches` gauge (first follower counts the batch).
struct Memoized<T> {
    value: T,
    counted: bool,
}

impl BatchScope {
    /// A fresh, empty scope (one per tick — or per call, which disables
    /// coalescing and reproduces strictly serial behavior).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Configuration of the drift handler's automatic reclustering trigger.
///
/// With this armed (see [`Engine::with_auto_recluster`]), every committed
/// drift runs the advisor's reorg cost/benefit analysis
/// ([`snakes_core::advisor::reorg_decision`]) against the session's
/// assumed layout; after `min_signals` consecutive worth-it verdicts a
/// migration job named `auto:<session>` starts, and `cooldown` commits
/// are then ignored before the trigger can re-arm.
#[derive(Debug, Clone)]
pub struct AutoRecluster {
    /// Query horizon the one-time reorganization cost must amortize
    /// within for a verdict to count as worth it.
    pub horizon_queries: f64,
    /// Consecutive worth-it drift commits required to fire.
    pub min_signals: u32,
    /// Drift commits ignored after a migration starts (hysteresis).
    pub cooldown: u32,
    /// Pages copied per migration step.
    pub chunk_pages: u64,
    /// Geometry of the synthetic table each session is assumed to serve.
    pub measure: MeasureSpec,
}

impl Default for AutoRecluster {
    fn default() -> Self {
        AutoRecluster {
            horizon_queries: 10_000.0,
            min_signals: 2,
            cooldown: 8,
            chunk_pages: 4,
            measure: MeasureSpec::default(),
        }
    }
}

/// Monotone online-reclustering counters (per engine, summed over jobs).
#[derive(Default)]
struct ReclusterCounters {
    jobs_started: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_aborted: AtomicU64,
    jobs_recovered: AtomicU64,
    chunks_applied: AtomicU64,
    records_moved: AtomicU64,
    probes: AtomicU64,
    auto_triggers: AtomicU64,
}

/// The shared advisor state. One engine serves every connection of a
/// server; `Arc<Engine>` is the unit of sharing.
pub struct Engine {
    signatures: Mutex<SignatureCache>,
    memo: SharedCostMemo,
    sessions: SessionMap,
    idempotency: Mutex<HashMap<String, IdempotencySlot>>,
    /// Durable substrate (WAL + checkpoints); `None` runs in-memory only.
    durability: Option<Durability>,
    /// Accumulated buffer-pool counters of every physical measurement.
    measure_pool: Mutex<PoolStats>,
    fault: Option<FaultPlan>,
    /// Request-outcome counters, shared with the server's admission path.
    pub registry: Registry,
    started: Instant,
    workers: u64,
    queue_capacity: u64,
    /// Online-reclustering jobs by name. Jobs are never removed — a
    /// terminal job keeps answering `recluster_status` until restarted.
    reclusters: Mutex<HashMap<String, Arc<Mutex<ReclusterJob>>>>,
    recluster_counters: ReclusterCounters,
    /// Drift-handler auto-trigger; `None` disables it.
    auto_recluster: Option<AutoRecluster>,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Engine {
    /// A fresh engine with empty caches.
    pub fn new() -> Self {
        Engine {
            signatures: Mutex::new(SignatureCache::new()),
            memo: SharedCostMemo::new(),
            sessions: SessionMap::new(1),
            idempotency: Mutex::new(HashMap::new()),
            durability: None,
            measure_pool: Mutex::new(PoolStats::default()),
            fault: None,
            registry: Registry::new(),
            started: Instant::now(),
            workers: 0,
            queue_capacity: 0,
            reclusters: Mutex::new(HashMap::new()),
            recluster_counters: ReclusterCounters::default(),
            auto_recluster: None,
        }
    }

    /// As [`Engine::new`], recording the server's worker count and queue
    /// capacity for the `stats` endpoint. The session registry is striped
    /// `workers` ways ([`session_shard`] picks the stripe), so a sharded
    /// server built with `workers == shards` gets a one-to-one mapping
    /// from session stripes to owning shards.
    pub fn with_limits(workers: usize, queue_capacity: usize) -> Self {
        Engine {
            workers: workers as u64,
            queue_capacity: queue_capacity as u64,
            sessions: SessionMap::new(workers.max(1)),
            ..Engine::new()
        }
    }

    /// The number of session stripes (equal to the shard count the engine
    /// was built for; `1` for a default engine).
    pub fn session_stripes(&self) -> usize {
        self.sessions.stripes.len()
    }

    /// Arms deterministic fault injection: every executed request rolls
    /// for a handler panic or delay against `plan`. Replays from the
    /// idempotency cache do not roll (they execute nothing).
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Arms the drift handler's automatic reclustering trigger: committed
    /// drifts feed a reorg cost/benefit analysis, and sustained worth-it
    /// verdicts start a bounded-chunk migration without an explicit
    /// `recluster` request.
    #[must_use]
    pub fn with_auto_recluster(mut self, config: AutoRecluster) -> Self {
        self.auto_recluster = Some(config);
        self
    }

    /// Attaches durable storage and recovers any prior state from it:
    /// every drift session (at its exact acknowledged version and
    /// probability vector) and every stored idempotent response. From
    /// here on, `drift` commits are logged to the WAL *before* they are
    /// acknowledged, so a crash at any write boundary loses nothing that
    /// was acknowledged.
    ///
    /// # Errors
    ///
    /// Propagates media I/O errors; `InvalidData` when recovered state is
    /// corrupt (fail-stop — the engine refuses to start on bad state
    /// rather than silently dropping it).
    pub fn with_durability(mut self, media: Media) -> io::Result<Self> {
        let corrupt = |e: String| io::Error::new(io::ErrorKind::InvalidData, e);
        let (durability, recovered) = Durability::open(media)?;
        let sessions = SessionMap::new(self.sessions.stripes.len());
        for snap in recovered.sessions {
            let schema = snap
                .schema
                .clone()
                .build()
                .map_err(|e| corrupt(format!("session `{}`: {e}", snap.name)))?;
            let shape = LatticeShape::of_schema(&schema);
            // `Workload::new` stores the probabilities verbatim, so the
            // recovered distribution is bit-identical to the logged one.
            let workload = Workload::new(shape, snap.probs)
                .map_err(|e| corrupt(format!("session `{}`: {e}", snap.name)))?;
            let session = DriftSession {
                schema_fingerprint: schema.fingerprint(),
                schema_spec: snap.schema,
                versioned: VersionedWorkload::restore(workload, snap.version),
                dp: IncrementalDp::new(CostModel::of_schema(&schema)),
                layout_path: None,
                trigger: None,
            };
            sessions.insert(snap.name, Arc::new(Mutex::new(session)));
        }
        let mut idempotency = HashMap::new();
        for snap in recovered.idempotency {
            idempotency.insert(snap.key, Arc::new(Mutex::new(Some(snap.response))));
        }
        // Recluster jobs rebuild from spec + fence alone: the synthetic
        // table is a deterministic function of the spec, so the redo in
        // `build_job` reproduces the crashed migration's bytes exactly.
        let mut reclusters = HashMap::new();
        let mut recovered_jobs = 0u64;
        for snap in recovered.reclusters {
            let name = snap.job.clone();
            let mut job =
                build_job(snap).map_err(|e| corrupt(format!("recluster job `{name}`: {e}")))?;
            // Auto-triggered jobs carry their session in the name; restore
            // the completion notification across the restart.
            job.notify_session = name.strip_prefix("auto:").map(str::to_string);
            if job.snap.state == "running" {
                recovered_jobs += 1;
            }
            reclusters.insert(name, Arc::new(Mutex::new(job)));
        }
        self.recluster_counters.jobs_recovered = AtomicU64::new(recovered_jobs);
        self.reclusters = Mutex::new(reclusters);
        self.sessions = sessions;
        self.idempotency = Mutex::new(idempotency);
        self.durability = Some(durability);
        Ok(self)
    }

    /// Switches the WAL to group commit: appends buffer in the log and
    /// [`Engine::flush_wal`] performs one fsync for the whole batch. The
    /// sharded core enables this and flushes once per event-loop tick,
    /// *before* releasing any of the tick's responses to sockets — so the
    /// "durable before acknowledged" contract is preserved while the
    /// fsync cost is amortized across every commit in the tick. Without
    /// this call each append syncs individually (the legacy core's
    /// behavior, and what direct [`Engine::handle`] callers get).
    pub fn set_group_commit(&self, enabled: bool) {
        if let Some(d) = &self.durability {
            d.set_deferred_sync(enabled);
        }
    }

    /// Forces buffered WAL appends to disk (one fsync, no-op when clean
    /// or when durability is off).
    ///
    /// # Errors
    ///
    /// Propagates the sync failure; the WAL is then poisoned and every
    /// subsequent mutation fails, so callers must treat an error here as
    /// fail-stop and withhold the tick's acknowledgements.
    pub fn flush_wal(&self) -> io::Result<()> {
        match &self.durability {
            Some(d) => d.flush(),
            None => Ok(()),
        }
    }

    /// Executes one request. Transport errors aside, every failure is
    /// reported in-band as an error body; the response always echoes the
    /// request id.
    ///
    /// With an idempotency key, the dedup lookup happens before anything
    /// else — before even the deadline check — so a retry of an already
    /// acknowledged mutation replays the stored response instead of
    /// re-executing. Only authoritative outcomes (`ok` and `bad_request`)
    /// are stored; transient failures (`overloaded`, `deadline_exceeded`,
    /// `internal`, `shutting_down`) leave the slot empty for the retry.
    ///
    /// # Panics
    ///
    /// Only under an armed fault plan (injected handler panics); the
    /// server's workers catch those and answer in-band.
    pub fn handle(&self, req: &Request, deadline: &Deadline) -> Response {
        // A fresh scope per call coalesces nothing: strictly serial
        // behavior, and the oracle the batched path is tested against.
        self.handle_batched(req, deadline, &mut BatchScope::new())
    }

    /// As [`Engine::handle`], coalescing same-fingerprint `price` and
    /// `recommend` computations through `scope`. The sharded core passes
    /// one scope per event-loop tick; results are bit-identical to calling
    /// [`Engine::handle`] once per request (see [`BatchScope`]).
    pub fn handle_batched(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Response {
        let resp = match req.idempotency_key.as_deref().filter(|k| !k.is_empty()) {
            None => self.execute(req, deadline, scope),
            Some(key) => {
                let slot = self.claim_slot(key);
                let mut slot = slot.lock();
                match slot.as_ref() {
                    Some(stored) => {
                        self.registry.record_deduplicated();
                        let mut resp = stored.clone();
                        resp.id = req.id;
                        resp.deduplicated = true;
                        resp
                    }
                    None => {
                        let resp = self.execute(req, deadline, scope);
                        if is_authoritative(&resp) {
                            self.registry.record_idempotency_stored();
                            *slot = Some(resp.clone());
                            // A committed drift already logged its response
                            // atomically with the session mutation. Every
                            // other authoritative response is logged
                            // best-effort: losing one costs a re-execution
                            // of a side-effect-free request, never state.
                            if req.endpoint != "drift" || !resp.ok {
                                if let Some(d) = &self.durability {
                                    let _ = d.append(&LogEntry {
                                        drift: None,
                                        idempotency: Some(IdemSnapshot {
                                            key: key.to_string(),
                                            response: resp.clone(),
                                        }),
                                        recluster: None,
                                    });
                                }
                            }
                        }
                        resp
                    }
                }
            }
        };
        self.maybe_checkpoint();
        resp
    }

    /// The slot for `key`, created empty on first sight. Duplicates of an
    /// in-flight request serialize behind the slot's own mutex, so the map
    /// lock is never held across execution.
    fn claim_slot(&self, key: &str) -> IdempotencySlot {
        let mut map = self.idempotency.lock();
        if map.len() >= IDEMPOTENCY_CAPACITY && !map.contains_key(key) {
            map.clear();
        }
        Arc::clone(map.entry(key.to_string()).or_default())
    }

    /// The stored response for `key`, if an authoritative outcome was
    /// recorded. Lets a client (or the simulation harness) recover the
    /// answer of a request whose response was lost in transit.
    pub fn idempotent_replay(&self, key: &str) -> Option<Response> {
        let slot = {
            let map = self.idempotency.lock();
            Arc::clone(map.get(key)?)
        };
        let slot = slot.lock();
        slot.clone()
    }

    /// `(workload version, class probabilities)` of a drift session, for
    /// state-equivalence checks. `None` for unknown sessions.
    pub fn session_state(&self, name: &str) -> Option<(u64, Vec<f64>)> {
        let session = self.sessions.get(name)?;
        let session = session.lock();
        Some((
            session.versioned.version(),
            session.versioned.workload().probs().to_vec(),
        ))
    }

    fn execute(&self, req: &Request, deadline: &Deadline, scope: &mut BatchScope) -> Response {
        if let Some(plan) = &self.fault {
            plan.perturb(request_token(
                &req.endpoint,
                req.id,
                req.idempotency_key.as_deref(),
            ));
        }
        let result = match req.endpoint.as_str() {
            "recommend" => self.recommend(req, deadline, scope),
            "price" => self.price(req, deadline, scope),
            "drift" => self.drift(req, deadline),
            "explain" => self.explain(req, deadline),
            "recluster" => self.recluster_start(req, deadline),
            "recluster_status" => self.recluster_status(req),
            "recluster_abort" => self.recluster_abort(req),
            "stats" => self.stats(req),
            "ping" => Ok(Response::ok(req.id)),
            other => Err(ServiceError::BadRequest(format!(
                "unknown endpoint `{other}`"
            ))),
        };
        match result {
            Ok(resp) => resp,
            Err(e) => Response::err(req.id, e.to_body()),
        }
    }

    fn parse_inputs(&self, req: &Request) -> Result<(StarSchema, Workload), ServiceError> {
        let schema = req
            .schema_spec()
            .cloned()
            .ok_or_else(|| ServiceError::BadRequest("`schema` is required".into()))?
            .build()?;
        let shape = LatticeShape::of_schema(&schema);
        let workload = req
            .workload_spec()
            .cloned()
            .ok_or_else(|| ServiceError::BadRequest("`workload` is required".into()))?
            .build(&shape)?;
        Ok((schema, workload))
    }

    fn recommend(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        deadline.check()?;
        let key = RecommendKey {
            schema: schema.fingerprint(),
            probs: workload.probs().iter().map(|p| p.to_bits()).collect(),
        };
        let body = match scope.recommendations.get_mut(&key) {
            Some(memo) => {
                // Same tick, same inputs: the recommendation is a pure
                // function of (schema, workload), so the fan-out clones
                // the leader's body — byte-identical to recomputing it.
                self.registry.record_batch_follower(&mut memo.counted);
                memo.value.clone()
            }
            None => {
                let model = CostModel::of_schema(&schema);
                let rec = recommend_with_model(&model, &workload);
                let body = recommendation_body(&rec);
                scope.recommendations.insert(
                    key,
                    Memoized {
                        value: body.clone(),
                        counted: false,
                    },
                );
                body
            }
        };
        Ok(Response {
            recommendation: Some(body),
            ..Response::ok(req.id)
        })
    }

    fn price(
        &self,
        req: &Request,
        deadline: &Deadline,
        scope: &mut BatchScope,
    ) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        let strategy = req
            .strategy_spec()
            .cloned()
            .ok_or_else(|| ServiceError::BadRequest("`strategy` is required".into()))?;
        let (lazy, id, label) = resolve_strategy(&schema, &strategy)?;
        deadline.check()?;
        let key = PriceKey {
            schema: schema.fingerprint(),
            strategy: id.clone(),
            probs: workload.probs().iter().map(|p| p.to_bits()).collect(),
        };
        let (expected_cost, cache_hit) = match scope.prices.get_mut(&key) {
            Some(memo) => {
                // A same-tick leader already ran this exact dot product.
                // Serially, this request would hit the signature cache and
                // recompute the identical product over identical bits, so
                // replaying (leader cost, cache_hit: true) is bit-exact.
                self.registry.record_batch_follower(&mut memo.counted);
                (memo.value, true)
            }
            None => {
                let (cost, hit) = {
                    let mut cache = self.signatures.lock();
                    let hits_before = cache.hits();
                    // The curve is built only on a signature-cache miss:
                    // the steady-state pricing path never walks the grid.
                    let table = cache.get_or_compute_with(&schema, &id, || lazy.build(&schema));
                    (table.expected_cost(&workload), cache.hits() > hits_before)
                };
                scope.prices.insert(
                    key,
                    Memoized {
                        value: cost,
                        counted: false,
                    },
                );
                (cost, hit)
            }
        };
        deadline.check()?;
        let measured = match req.measure_spec() {
            None => None,
            Some(m) => {
                let curve = lazy.build(&schema);
                let cells = schema.num_cells();
                if cells > MAX_MEASURE_CELLS {
                    return Err(ServiceError::BadRequest(format!(
                        "grid has {cells} cells; physical measurement is capped at \
                         {MAX_MEASURE_CELLS}"
                    )));
                }
                if m.records_per_cell == 0 || m.page_size == 0 || m.record_size == 0 {
                    return Err(ServiceError::BadRequest(
                        "`measure` fields must be positive".into(),
                    ));
                }
                let data = CellData::from_counts(
                    schema.grid_shape(),
                    vec![m.records_per_cell; cells as usize],
                );
                let config = StorageConfig {
                    page_size: m.page_size,
                    record_size: m.record_size,
                };
                deadline.check()?;
                let stats = if m.physical {
                    // Measure through the real paged engine: bulk-load an
                    // in-memory table and scan every query through its
                    // buffer pool. Bit-identical to the analytic memo
                    // (tests/storage_differential.rs proves it), but the
                    // pool's physical counters feed `stats.storage`.
                    let bytes = cells
                        .checked_mul(m.records_per_cell)
                        .and_then(|r| r.checked_mul(m.record_size))
                        .ok_or_else(|| {
                            ServiceError::BadRequest("`measure` sizes overflow".into())
                        })?;
                    if bytes > MAX_PHYSICAL_BYTES {
                        return Err(ServiceError::BadRequest(format!(
                            "physical measurement would pack {bytes} record bytes; \
                             capped at {MAX_PHYSICAL_BYTES}"
                        )));
                    }
                    let record = vec![0u8; m.record_size as usize];
                    let mut table =
                        TableFile::create_in_memory(&curve, &data, config, |_, _| record.clone())?;
                    let stats = table.workload_stats(&schema, &curve, &workload)?;
                    self.measure_pool.lock().absorb(table.pool_stats());
                    stats
                } else {
                    let layout = PackedLayout::pack(&curve, &data, config);
                    let eval = req.eval_opts().copied().unwrap_or_default();
                    self.memo
                        .workload_stats(&schema, &curve, &layout, &workload, eval.engine)
                };
                Some(MeasuredBody {
                    avg_seeks: stats.avg_seeks,
                    avg_normalized_blocks: stats.avg_normalized_blocks,
                })
            }
        };
        Ok(Response {
            price: Some(PriceBody {
                strategy: label,
                expected_cost,
                cache_hit,
                measured,
            }),
            ..Response::ok(req.id)
        })
    }

    fn drift(&self, req: &Request, deadline: &Deadline) -> Result<Response, ServiceError> {
        let name = req
            .session
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`session` is required".into()))?;
        let session = {
            let mut stripe = self.sessions.stripe(&name).lock();
            match stripe.get(&name) {
                Some(s) => Arc::clone(s),
                None => {
                    let (schema, workload) = self.parse_inputs(req).map_err(|e| {
                        ServiceError::BadRequest(format!(
                            "session `{name}` does not exist and cannot be created: {e}"
                        ))
                    })?;
                    let model = CostModel::of_schema(&schema);
                    let s = Arc::new(Mutex::new(DriftSession {
                        schema_fingerprint: schema.fingerprint(),
                        schema_spec: SchemaSpec::of(&schema),
                        versioned: VersionedWorkload::new(workload),
                        dp: IncrementalDp::new(model),
                        layout_path: None,
                        trigger: None,
                    }));
                    stripe.insert(name.clone(), Arc::clone(&s));
                    s
                }
            }
        };
        let mut session = session.lock();
        if let Some(spec) = req.schema_spec() {
            // A schema on a follow-up call must agree with the session's.
            let schema = spec.clone().build()?;
            if schema.fingerprint() != session.schema_fingerprint {
                return Err(ServiceError::BadRequest(format!(
                    "session `{name}` was created for a different schema"
                )));
            }
        }
        deadline.check()?;
        // Coalesce: apply every delta (each bumps the version), then
        // re-optimize once, on the final distribution. The deltas are
        // applied to a scratch copy and committed only if every one is
        // valid — and no fallible check (deadline included) runs after the
        // commit — so a request mutates the session exactly-wholly or
        // not at all. That atomicity is what makes an idempotent retry of
        // an acknowledged `drift` apply its deltas exactly once.
        let deltas = req.deltas.as_deref().unwrap_or(&[]);
        let mut scratch = session.versioned.clone();
        let mut drift_tv = 0.0;
        for spec in deltas {
            let delta = WorkloadDelta::new(spec.updates.clone())?;
            drift_tv += scratch.apply(&delta)?;
        }
        let workload = scratch.workload().clone();
        let outcome = session.dp.reoptimize(&workload);
        let resp = Response {
            drift: Some(DriftBody {
                session: name.clone(),
                version: scratch.version(),
                coalesced: deltas.len(),
                drift_tv,
                path_dims: outcome.path.dims().to_vec(),
                path: outcome.path.to_string(),
                cost: outcome.cost,
                reused: outcome.reused,
                shift_bound: outcome.shift_bound,
                gap: outcome.gap,
            }),
            ..Response::ok(req.id)
        };
        // Log before commit: the after-state snapshot — and, when the
        // request carries an idempotency key, the response acknowledging
        // it, in the same atomic entry — must be durable before the
        // session mutates. A WAL failure aborts the request with the
        // session untouched, so durable state never trails acknowledged
        // state.
        if let Some(d) = &self.durability {
            d.append(&LogEntry {
                drift: Some(SessionSnapshot {
                    name: name.clone(),
                    schema: session.schema_spec.clone(),
                    version: scratch.version(),
                    probs: scratch.workload().probs().to_vec(),
                }),
                idempotency: req
                    .idempotency_key
                    .as_ref()
                    .filter(|k| !k.is_empty())
                    .map(|key| IdemSnapshot {
                        key: key.clone(),
                        response: resp.clone(),
                    }),
                recluster: None,
            })?;
        }
        session.versioned = scratch;
        // Committed: feed the auto-recluster trigger (advisory — it can
        // start a migration job, never fail the drift).
        self.maybe_auto_recluster(&name, &mut session, &workload, &outcome.path);
        Ok(resp)
    }

    /// Runs the reorg cost/benefit analysis for a committed drift and
    /// starts an `auto:<session>` migration job once the trigger fires.
    fn maybe_auto_recluster(
        &self,
        name: &str,
        session: &mut DriftSession,
        workload: &Workload,
        optimal: &LatticePath,
    ) {
        let Some(cfg) = self.auto_recluster.as_ref() else {
            return;
        };
        // The first commit pins the baseline: the session's table is
        // assumed clustered by what the advisor recommended then.
        let Some(current) = session.layout_path.clone() else {
            session.layout_path = Some(optimal.clone());
            return;
        };
        let decision = {
            let model = session.dp.model();
            // One-time reorganization cost in the model's seek units:
            // read + write every page of the configured geometry.
            let m = &cfg.measure;
            let records = session
                .schema_spec
                .clone()
                .build()
                .map(|s| s.num_cells())
                .unwrap_or(0)
                .saturating_mul(m.records_per_cell);
            let pages = records
                .saturating_mul(m.record_size)
                .div_ceil(m.page_size.max(1));
            reorg_decision(model, &current, workload, 2.0 * pages as f64)
        };
        let trigger = session.trigger.get_or_insert_with(|| {
            ReclusterTrigger::new(cfg.min_signals, cfg.horizon_queries, cfg.cooldown)
        });
        if !trigger.observe(&decision) {
            return;
        }
        let snap = ReclusterSnapshot {
            job: format!("auto:{name}"),
            schema: session.schema_spec.clone(),
            from: StrategySpec::snaked_path(current.dims().to_vec()),
            to: StrategySpec::snaked_path(decision.new_path.dims().to_vec()),
            measure: cfg.measure.clone(),
            chunk_pages: cfg.chunk_pages,
            fence: 0,
            state: "running".into(),
            chunks_applied: 0,
            records_moved: 0,
            probes: 0,
        };
        if self.start_job(snap, Some(name.to_string())).is_ok() {
            session
                .trigger
                .as_mut()
                .expect("armed above")
                .note_started();
            self.recluster_counters
                .auto_triggers
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn explain(&self, req: &Request, deadline: &Deadline) -> Result<Response, ServiceError> {
        let (schema, workload) = self.parse_inputs(req)?;
        let model = CostModel::of_schema(&schema);
        deadline.check()?;
        let path = match req.strategy_spec() {
            Some(s) => {
                let dims = s.dims.clone().ok_or_else(|| {
                    ServiceError::BadRequest("`explain` strategies must carry `dims`".into())
                })?;
                LatticePath::from_dims(model.shape().clone(), dims)?
            }
            None => snakes_core::dp::optimal_lattice_path(&model, &workload).path,
        };
        let explanation = snakes_core::explain::explain(&model, &path, &workload);
        Ok(Response {
            explanation: Some(explanation),
            ..Response::ok(req.id)
        })
    }

    // -- Online reclustering ------------------------------------------------

    /// The job handle for `name`.
    fn recluster_job(&self, name: &str) -> Option<Arc<Mutex<ReclusterJob>>> {
        self.reclusters.lock().get(name).map(Arc::clone)
    }

    /// Appends a job's durable after-state to the WAL (no-op in-memory).
    fn log_recluster(&self, snap: ReclusterSnapshot) -> io::Result<()> {
        match &self.durability {
            Some(d) => d
                .append(&LogEntry {
                    recluster: Some(snap),
                    ..LogEntry::default()
                })
                .map(|_lsn| ()),
            None => Ok(()),
        }
    }

    /// Builds and registers a job, durable before it is acknowledged.
    fn start_job(
        &self,
        snap: ReclusterSnapshot,
        notify: Option<String>,
    ) -> Result<ReclusterBody, ServiceError> {
        let mut job = build_job(snap)?;
        job.notify_session = notify;
        let body = job.body();
        self.log_recluster(job.snap.clone())?;
        self.reclusters
            .lock()
            .insert(job.snap.job.clone(), Arc::new(Mutex::new(job)));
        self.recluster_counters
            .jobs_started
            .fetch_add(1, Ordering::Relaxed);
        Ok(body)
    }

    /// `recluster`: starts a migration job (or reports an already-running
    /// one — starts are idempotent by job name).
    fn recluster_start(
        &self,
        req: &Request,
        deadline: &Deadline,
    ) -> Result<Response, ServiceError> {
        let name = req
            .session
            .clone()
            .ok_or_else(|| ServiceError::BadRequest("`session` names the recluster job".into()))?;
        deadline.check()?;
        let prev: Option<ReclusterSnapshot> = match self.recluster_job(&name) {
            Some(job) => {
                let job = job.lock();
                if job.snap.state == "running" {
                    return Ok(Response {
                        recluster: Some(job.body()),
                        ..Response::ok(req.id)
                    });
                }
                Some(job.snap.clone())
            }
            None => None,
        };
        let spec = req.recluster.clone().unwrap_or_default();
        let schema_spec = req
            .schema_spec()
            .cloned()
            .or_else(|| prev.as_ref().map(|p| p.schema.clone()))
            .ok_or_else(|| ServiceError::BadRequest("`schema` is required".into()))?;
        // A restarted job continues from the layout its predecessor left
        // behind; a brand-new job must say what is on disk.
        let from = spec
            .from
            .or_else(|| prev.as_ref().map(|p| p.to.clone()))
            .ok_or_else(|| {
                ServiceError::BadRequest("`recluster.from` is required for a new job".into())
            })?;
        let to = match spec.to.or_else(|| req.strategy_spec().cloned()) {
            Some(t) => t,
            None => {
                // Default target: the advisor's recommendation for the
                // posted workload.
                let schema = schema_spec.clone().build()?;
                let shape = LatticeShape::of_schema(&schema);
                let workload = req
                    .workload_spec()
                    .cloned()
                    .ok_or_else(|| {
                        ServiceError::BadRequest(
                            "`recluster.to`, `strategy`, or a `workload` to recommend from \
                             is required"
                                .into(),
                        )
                    })?
                    .build(&shape)?;
                deadline.check()?;
                let model = CostModel::of_schema(&schema);
                let rec = recommend_with_model(&model, &workload);
                StrategySpec::snaked_path(rec.optimal_path.dims().to_vec())
            }
        };
        let measure = req.measure_spec().cloned().unwrap_or_default();
        deadline.check()?;
        let snap = ReclusterSnapshot {
            job: name,
            schema: schema_spec,
            from,
            to,
            measure,
            chunk_pages: spec.chunk_pages,
            fence: 0,
            state: "running".into(),
            chunks_applied: 0,
            records_moved: 0,
            probes: 0,
        };
        let body = self.start_job(snap, None)?;
        Ok(Response {
            recluster: Some(body),
            ..Response::ok(req.id)
        })
    }

    /// `recluster_status`: progress of a known job.
    fn recluster_status(&self, req: &Request) -> Result<Response, ServiceError> {
        let name = req
            .session
            .as_deref()
            .ok_or_else(|| ServiceError::BadRequest("`session` names the recluster job".into()))?;
        let job = self
            .recluster_job(name)
            .ok_or_else(|| ServiceError::BadRequest(format!("unknown recluster job `{name}`")))?;
        let body = job.lock().body();
        Ok(Response {
            recluster: Some(body),
            ..Response::ok(req.id)
        })
    }

    /// `recluster_abort`: stops a running job. The old layout stays
    /// authoritative — the fence-split executor never served a cell from
    /// the new file that the old file does not also hold.
    fn recluster_abort(&self, req: &Request) -> Result<Response, ServiceError> {
        let name = req
            .session
            .as_deref()
            .ok_or_else(|| ServiceError::BadRequest("`session` names the recluster job".into()))?;
        let job = self
            .recluster_job(name)
            .ok_or_else(|| ServiceError::BadRequest(format!("unknown recluster job `{name}`")))?;
        let mut job = job.lock();
        if job.snap.state == "running" {
            job.running = None;
            job.snap.state = "aborted".into();
            self.log_recluster(job.snap.clone())?;
            self.recluster_counters
                .jobs_aborted
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(Response {
            recluster: Some(job.body()),
            ..Response::ok(req.id)
        })
    }

    /// Advances every running job owned by `stripe` (of `stripes`) one
    /// bounded chunk: copy `chunk_pages` pages, differentially probe the
    /// mixed-layout executor, and log the new fence. Returns how many
    /// jobs stepped. Shards call this once per event-loop tick with their
    /// own index (one chunk per tick bounds the serving-latency impact);
    /// the blocking core calls it with `(0, 1)` after each request.
    pub fn tick_reclusters(&self, stripe: usize, stripes: usize) -> usize {
        let owned: Vec<Arc<Mutex<ReclusterJob>>> = {
            let map = self.reclusters.lock();
            map.iter()
                .filter(|(name, _)| stripes <= 1 || session_shard(name, stripes) == stripe)
                .map(|(_, job)| Arc::clone(job))
                .collect()
        };
        let mut stepped = 0;
        for job in owned {
            let mut job = job.lock();
            if job.snap.state != "running" {
                continue;
            }
            match self.advance(&mut job) {
                Ok(()) => stepped += 1,
                Err(_) => {
                    // The in-memory paged engine failing is effectively
                    // unreachable; fail the job loudly rather than wedge
                    // the tick.
                    job.running = None;
                    job.snap.state = "aborted".into();
                    self.recluster_counters
                        .jobs_aborted
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = self.log_recluster(job.snap.clone());
                }
            }
        }
        if stepped > 0 {
            self.maybe_checkpoint();
        }
        stepped
    }

    /// One chunk of one running job: step, probe, persist, finish.
    fn advance(&self, job: &mut ReclusterJob) -> io::Result<()> {
        let running = job.running.as_mut().expect("running job");
        let report = running
            .migration
            .step(&running.old_curve, &running.new_curve)?;
        running.probe()?;
        job.snap.fence = report.fence;
        job.snap.chunks_applied += 1;
        job.snap.records_moved += report.records_moved;
        job.snap.probes += 1;
        let c = &self.recluster_counters;
        c.chunks_applied.fetch_add(1, Ordering::Relaxed);
        c.records_moved
            .fetch_add(report.records_moved, Ordering::Relaxed);
        c.probes.fetch_add(1, Ordering::Relaxed);
        if report.done {
            job.snap.state = "done".into();
            let RunningJob {
                migration,
                new_curve,
                cells,
                ..
            } = job.running.take().expect("running job");
            // Land the new layout (validates the packed file opens clean).
            let _ = migration.finish(&new_curve, &cells)?;
            c.jobs_completed.fetch_add(1, Ordering::Relaxed);
            self.notify_layout_change(job);
        }
        // Durable fence advance; under group commit the shard's tick
        // flush amortizes the fsync.
        self.log_recluster(job.snap.clone())
    }

    /// Advances the owning drift session's assumed layout once an
    /// auto-triggered migration lands.
    fn notify_layout_change(&self, job: &ReclusterJob) {
        let Some(name) = &job.notify_session else {
            return;
        };
        let Some(dims) = &job.snap.to.dims else {
            return;
        };
        let Some(session) = self.sessions.get(name) else {
            return;
        };
        let mut session = session.lock();
        let shape = session.dp.model().shape().clone();
        if let Ok(path) = LatticePath::from_dims(shape, dims.clone()) {
            session.layout_path = Some(path);
        }
    }

    fn recluster_stats_body(&self) -> ReclusterStatsBody {
        let jobs: Vec<Arc<Mutex<ReclusterJob>>> =
            self.reclusters.lock().values().map(Arc::clone).collect();
        let active = jobs
            .iter()
            .filter(|j| j.lock().snap.state == "running")
            .count() as u64;
        let c = &self.recluster_counters;
        ReclusterStatsBody {
            jobs_started: c.jobs_started.load(Ordering::Relaxed),
            jobs_completed: c.jobs_completed.load(Ordering::Relaxed),
            jobs_aborted: c.jobs_aborted.load(Ordering::Relaxed),
            jobs_recovered: c.jobs_recovered.load(Ordering::Relaxed),
            active,
            chunks_applied: c.chunks_applied.load(Ordering::Relaxed),
            records_moved: c.records_moved.load(Ordering::Relaxed),
            probes: c.probes.load(Ordering::Relaxed),
            auto_triggers: c.auto_triggers.load(Ordering::Relaxed),
        }
    }

    fn stats(&self, req: &Request) -> Result<Response, ServiceError> {
        Ok(Response {
            stats: Some(self.stats_body()),
            ..Response::ok(req.id)
        })
    }

    /// The current `stats` payload (also used by the serve ticker).
    pub fn stats_body(&self) -> StatsBody {
        let signature_cache = {
            let cache = self.signatures.lock();
            CacheStatsBody {
                hits: cache.hits(),
                misses: cache.misses(),
                entries: cache.len() as u64,
            }
        };
        StatsBody {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            workers: self.workers,
            queue_capacity: self.queue_capacity,
            queue_depth: self
                .registry
                .queue_depth
                .load(std::sync::atomic::Ordering::Relaxed),
            sessions: self.sessions.len() as u64,
            signature_cache,
            cost_memo: CacheStatsBody {
                hits: self.memo.hits(),
                misses: self.memo.misses(),
                entries: self.memo.len() as u64,
            },
            endpoints: self.registry.to_bodies(),
            idempotency: CacheStatsBody {
                hits: self
                    .registry
                    .deduplicated
                    .load(std::sync::atomic::Ordering::Relaxed),
                misses: self
                    .registry
                    .idempotency_stored
                    .load(std::sync::atomic::Ordering::Relaxed),
                entries: self.idempotency.lock().len() as u64,
            },
            panics_caught: self
                .registry
                .panics_caught
                .load(std::sync::atomic::Ordering::Relaxed),
            batching: self.registry.batching_body(),
            storage: self.storage_stats_body(),
            aggregation: aggregation_stats_body(),
            recluster: self.recluster_stats_body(),
        }
    }

    fn storage_stats_body(&self) -> StorageStatsBody {
        let pool = *self.measure_pool.lock();
        let mut body = StorageStatsBody {
            enabled: self.durability.is_some(),
            pool_hits: pool.hits,
            pool_misses: pool.misses,
            pool_hit_rate: pool.hit_rate(),
            pool_evictions: pool.evictions,
            physical_reads: pool.physical_reads,
            physical_writes: pool.physical_writes,
            ..StorageStatsBody::default()
        };
        if let Some(d) = &self.durability {
            let wal = d.wal.lock();
            body.wal_bytes = wal.bytes();
            body.wal_entries = wal.entries();
            body.checkpoints = d.checkpoints.load(Ordering::Relaxed);
            body.recoveries = d.recoveries;
            body.recovered_sessions = d.recovered_sessions;
        }
        body
    }

    /// Checkpoints opportunistically once enough WAL entries accumulated.
    fn maybe_checkpoint(&self) {
        if let Some(d) = &self.durability {
            if d.should_checkpoint() {
                // Best-effort: a failed or contended round leaves the old
                // checkpoint and the full log authoritative, and the next
                // request retries.
                let _ = self.checkpoint();
            }
        }
    }

    /// Folds the whole engine state into a fresh checkpoint and truncates
    /// the WAL. Returns `Ok(false)` without durability, or when a
    /// concurrent request held a session or idempotency slot (the round
    /// aborts rather than risk snapshotting a half-committed mutation —
    /// drift commits hold their session lock across the WAL append, so
    /// all-locks-acquired implies every logged entry is also committed).
    ///
    /// # Errors
    ///
    /// Propagates media/WAL errors; on failure nothing was truncated.
    pub fn checkpoint(&self) -> io::Result<bool> {
        let Some(d) = &self.durability else {
            return Ok(false);
        };
        // WAL lock first: stalls new appends for the duration; the
        // session try-locks below never block, so no deadlock with
        // drift's session-then-WAL order.
        let mut wal = d.wal.lock();
        let handles: Vec<(String, Arc<Mutex<DriftSession>>)> = self.sessions.handles();
        let mut snaps = Vec::with_capacity(handles.len());
        for (name, session) in &handles {
            let Some(session) = session.try_lock() else {
                return Ok(false);
            };
            snaps.push(SessionSnapshot {
                name: name.clone(),
                schema: session.schema_spec.clone(),
                version: session.versioned.version(),
                probs: session.versioned.workload().probs().to_vec(),
            });
        }
        let slots: Vec<(String, IdempotencySlot)> = {
            let map = self.idempotency.lock();
            map.iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut idem = Vec::with_capacity(slots.len());
        for (key, slot) in &slots {
            let Some(slot) = slot.try_lock() else {
                return Ok(false);
            };
            if let Some(resp) = slot.as_ref() {
                idem.push(IdemSnapshot {
                    key: key.clone(),
                    response: resp.clone(),
                });
            }
        }
        let jobs: Vec<(String, Arc<Mutex<ReclusterJob>>)> = {
            let map = self.reclusters.lock();
            map.iter()
                .map(|(k, v)| (k.clone(), Arc::clone(v)))
                .collect()
        };
        let mut reclusters = Vec::with_capacity(jobs.len());
        for (_, job) in &jobs {
            let Some(job) = job.try_lock() else {
                return Ok(false);
            };
            reclusters.push(job.snap.clone());
        }
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        idem.sort_by(|a, b| a.key.cmp(&b.key));
        reclusters.sort_by(|a, b| a.job.cmp(&b.job));
        let ckpt = Checkpoint {
            next_lsn: wal.next_lsn(),
            sessions: snaps,
            idempotency: idem,
            reclusters,
        };
        d.install_checkpoint(&mut wal, &ckpt)?;
        Ok(true)
    }
}

/// Aggregation-kernel counters for the `stats` payload. The underlying
/// metrics registry is process-global (shared with every engine in the
/// process), matching how phase timings are collected elsewhere.
fn aggregation_stats_body() -> AggregationStatsBody {
    let m = snakes_core::parallel::metrics::snapshot();
    AggregationStatsBody {
        walks_blocked: m.agg_walks_blocked,
        walks_scalar: m.agg_walks_scalar,
        walks_parallel: m.agg_walks_parallel,
        edges: m.agg_edges,
        decode_nanos: m.agg_decode_nanos,
        count_nanos: m.agg_count_nanos,
        prefix_nanos: m.agg_prefix_nanos,
    }
}

/// Whether a response settles its request for good. Authoritative
/// outcomes are cached under the idempotency key; transient ones
/// (shedding, deadlines, panics, drains) must stay uncached so a retry
/// re-executes.
fn is_authoritative(resp: &Response) -> bool {
    resp.ok || resp.error.as_ref().is_some_and(|e| e.code == "bad_request")
}

/// An owned linearization over a schema's grid: the two families the wire
/// protocol can name.
pub(crate) enum WireCurve {
    Path(snakes_curves::nested::NestedLoops),
    Hilbert(CompactHilbert),
}

impl Linearization for WireCurve {
    fn extents(&self) -> &[u64] {
        match self {
            WireCurve::Path(c) => c.extents(),
            WireCurve::Hilbert(c) => c.extents(),
        }
    }
    fn rank(&self, coords: &[u64]) -> u64 {
        match self {
            WireCurve::Path(c) => c.rank(coords),
            WireCurve::Hilbert(c) => c.rank(coords),
        }
    }
    fn coords(&self, rank: u64, out: &mut [u64]) {
        match self {
            WireCurve::Path(c) => c.coords(rank, out),
            WireCurve::Hilbert(c) => c.coords(rank, out),
        }
    }
    fn coords_block(&self, start: u64, len: usize, out: &mut snakes_curves::CoordsBlock) {
        // Forwarded so the blocked aggregation kernel sees the concrete
        // curve's incremental decoder, not the generic per-rank default.
        match self {
            WireCurve::Path(c) => c.coords_block(start, len, out),
            WireCurve::Hilbert(c) => c.coords_block(start, len, out),
        }
    }
    fn rank_runs(&self, ranges: &[std::ops::Range<u64>], sink: &mut dyn FnMut(u64, u64)) {
        match self {
            WireCurve::Path(c) => c.rank_runs(ranges, sink),
            WireCurve::Hilbert(c) => c.rank_runs(ranges, sink),
        }
    }
    fn has_structural_runs(&self) -> bool {
        match self {
            WireCurve::Path(c) => c.has_structural_runs(),
            WireCurve::Hilbert(c) => c.has_structural_runs(),
        }
    }
}

/// A validated strategy whose grid walk has not been materialized yet.
/// Curve construction enumerates the whole grid — deferring it lets the
/// pricing fast path (signature-cache hits and same-tick batch followers)
/// skip it entirely.
pub(crate) enum LazyCurve {
    Path { path: LatticePath, snaked: bool },
    Hilbert,
}

impl LazyCurve {
    /// Materializes the linearization (the expensive step).
    pub(crate) fn build(&self, schema: &StarSchema) -> WireCurve {
        match self {
            LazyCurve::Path { path, snaked } => WireCurve::Path(if *snaked {
                snaked_path_curve(schema, path)
            } else {
                path_curve(schema, path)
            }),
            LazyCurve::Hilbert => WireCurve::Hilbert(CompactHilbert::new(schema.grid_shape())),
        }
    }
}

pub(crate) fn resolve_strategy(
    schema: &StarSchema,
    spec: &StrategySpec,
) -> Result<(LazyCurve, StrategyId, String), ServiceError> {
    match (&spec.dims, spec.kind.as_deref()) {
        (Some(dims), None) => {
            let shape = LatticeShape::of_schema(schema);
            let path = LatticePath::from_dims(shape, dims.clone())?;
            let label = if spec.snaked {
                format!("{path} (snaked)")
            } else {
                path.to_string()
            };
            Ok((
                LazyCurve::Path {
                    path,
                    snaked: spec.snaked,
                },
                StrategyId::Path {
                    dims: dims.clone(),
                    snaked: spec.snaked,
                },
                label,
            ))
        }
        (None, Some("hilbert")) => Ok((
            LazyCurve::Hilbert,
            StrategyId::Named("hilbert".into()),
            "hilbert".into(),
        )),
        (None, Some(other)) => Err(ServiceError::BadRequest(format!(
            "unknown strategy kind `{other}`"
        ))),
        (Some(_), Some(_)) => Err(ServiceError::BadRequest(
            "give either `dims` or `kind`, not both".into(),
        )),
        (None, None) => Err(ServiceError::BadRequest(
            "`strategy` needs `dims` or `kind`".into(),
        )),
    }
}

fn recommendation_body(rec: &Recommendation) -> RecommendationBody {
    RecommendationBody {
        path_dims: rec.optimal_path.dims().to_vec(),
        path: rec.optimal_path.to_string(),
        expected_cost_plain: rec.plain_cost,
        expected_cost_snaked: rec.snaked_cost,
        guarantee_factor: rec.guarantee_factor,
        max_snaking_benefit: rec.max_snaking_benefit,
        row_majors: rec
            .row_majors
            .iter()
            .map(|(order, plain, snaked)| RowMajorBody {
                order_innermost_first: order.clone(),
                cost_plain: *plain,
                cost_snaked: *snaked,
            })
            .collect(),
        savings_vs_worst_row_major: rec.savings_vs_worst_row_major(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{DeltaSpec, SchemaSpec, WorkloadSpec};
    use snakes_core::workload::WeightUpdate;

    fn toy_schema() -> SchemaSpec {
        SchemaSpec::of(&StarSchema::paper_toy())
    }

    fn uniform_workload() -> WorkloadSpec {
        let shape = LatticeShape::of_schema(&StarSchema::paper_toy());
        WorkloadSpec::of(&Workload::uniform(shape))
    }

    #[test]
    fn recommend_matches_direct_library_call() {
        let engine = Engine::new();
        let req = Request::recommend(toy_schema(), uniform_workload());
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let body = resp.recommendation.unwrap();
        let schema = StarSchema::paper_toy();
        let w = Workload::uniform(LatticeShape::of_schema(&schema));
        let direct = snakes_core::advisor::recommend(&schema, &w);
        assert_eq!(body.path_dims, direct.optimal_path.dims().to_vec());
        assert_eq!(
            body.expected_cost_snaked.to_bits(),
            direct.snaked_cost.to_bits()
        );
        assert_eq!(
            body.expected_cost_plain.to_bits(),
            direct.plain_cost.to_bits()
        );
        assert_eq!(body.row_majors.len(), direct.row_majors.len());
    }

    #[test]
    fn price_is_bit_identical_and_caches() {
        let engine = Engine::new();
        let schema = StarSchema::paper_toy();
        let shape = LatticeShape::of_schema(&schema);
        let w = Workload::uniform(shape.clone());
        let dims = snakes_core::dp::optimal_lattice_path(&CostModel::of_schema(&schema), &w)
            .path
            .dims()
            .to_vec();
        let req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(dims.clone()),
        );
        let first = engine.handle(&req, &Deadline::none());
        assert!(first.ok, "{:?}", first.error);
        let body = first.price.unwrap();
        assert!(!body.cache_hit);
        // Direct: aggregate the same curve, price the same workload.
        let path = LatticePath::from_dims(shape, dims).unwrap();
        let curve = snaked_path_curve(&schema, &path);
        let direct = snakes_curves::aggregate_class_costs(&schema, &curve).expected_cost(&w);
        assert_eq!(body.expected_cost.to_bits(), direct.to_bits());
        // Second identical request hits the shared cache.
        let second = engine.handle(&req, &Deadline::none()).price.unwrap();
        assert!(second.cache_hit);
        assert_eq!(second.expected_cost.to_bits(), direct.to_bits());
    }

    #[test]
    fn price_measures_physically_through_the_memo() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: 3,
            page_size: 512,
            record_size: 125,
            ..Default::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let m = resp.price.unwrap().measured.unwrap();
        assert!(m.avg_normalized_blocks >= 1.0);
        assert!(m.avg_seeks >= 1.0);
        let stats = engine.stats_body();
        assert!(stats.cost_memo.misses > 0);
        // Identical measurement: all memo hits, identical numbers.
        let again = engine.handle(&req, &Deadline::none());
        let m2 = again.price.unwrap().measured.unwrap();
        assert_eq!(m2.avg_seeks.to_bits(), m.avg_seeks.to_bits());
        let stats2 = engine.stats_body();
        assert_eq!(stats2.cost_memo.misses, stats.cost_memo.misses);
        assert!(stats2.cost_memo.hits > stats.cost_memo.hits);
    }

    #[test]
    fn drift_session_coalesces_and_warm_restarts() {
        let engine = Engine::new();
        // Irregular weights so no two paths tie and the stability gap is
        // positive (mirrors the core dp warm-restart test).
        let schema = StarSchema::paper_toy();
        let shape = LatticeShape::of_schema(&schema);
        let n = shape.num_classes();
        let w = Workload::from_weights(
            shape.clone(),
            (0..n).map(|r| 1.0 + r as f64 * 0.13).collect(),
        )
        .unwrap();
        // Initialize the session.
        let mut init = Request::drift("s1", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(crate::protocol::WorkloadSpec::of(&w));
        let r0 = engine.handle(&init, &Deadline::none());
        assert!(r0.ok, "{:?}", r0.error);
        let d0 = r0.drift.unwrap();
        assert_eq!(d0.version, 0);
        assert!(!d0.reused, "first call runs the full DP");
        assert!(
            d0.gap.is_finite() && d0.gap > 0.0,
            "test needs a unique optimum, gap {}",
            d0.gap
        );
        // Two tiny deltas in one request: versions advance by 2, one
        // re-optimization, warm restart — each perturbation far inside
        // the stability radius certified by the gap.
        let model = CostModel::of_schema(&schema);
        let dmax_top = model.len_between(&shape.bottom(), &shape.top());
        let eps = d0.gap / (1000.0 * dmax_top);
        let deltas = vec![
            DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 0,
                    weight: w.prob_by_rank(0) + eps,
                }],
            },
            DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 1,
                    weight: w.prob_by_rank(1) + eps / 2.0,
                }],
            },
        ];
        let r1 = engine.handle(&Request::drift("s1", deltas), &Deadline::none());
        let d1 = r1.drift.unwrap();
        assert_eq!(d1.version, 2);
        assert_eq!(d1.coalesced, 2);
        assert!(d1.drift_tv > 0.0);
        assert!(d1.reused, "tiny drift must warm-restart");
        assert_eq!(engine.stats_body().sessions, 1);
        // Unknown session without schema/workload is a bad request.
        let r2 = engine.handle(&Request::drift("nope", vec![]), &Deadline::none());
        assert!(!r2.ok);
        assert_eq!(r2.error.unwrap().code, "bad_request");
    }

    #[test]
    fn explain_names_the_top_contributors() {
        let engine = Engine::new();
        let mut req = Request::new("explain");
        req.schema = Some(toy_schema());
        req.workload = Some(uniform_workload());
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        let e = resp.explanation.unwrap();
        assert!(!e.classes.is_empty());
        assert!(e.snaked_total > 0.0);
    }

    #[test]
    fn expired_deadline_short_circuits() {
        let engine = Engine::new();
        let req = Request::recommend(toy_schema(), uniform_workload());
        let past = Deadline::from_ms(Instant::now() - std::time::Duration::from_secs(1), Some(0));
        let resp = engine.handle(&req, &past);
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "deadline_exceeded");
    }

    #[test]
    fn bad_requests_are_reported_in_band() {
        let engine = Engine::new();
        let resp = engine.handle(&Request::new("frobnicate"), &Deadline::none());
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let resp = engine.handle(&Request::new("price"), &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let mut req = Request::price(toy_schema(), uniform_workload(), StrategySpec::default());
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        req.env.as_mut().expect("v2 constructor").strategy = Some(StrategySpec {
            kind: Some("peano".into()),
            ..StrategySpec::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.error.unwrap().message.contains("peano"));
    }

    #[test]
    fn idempotent_drift_applies_exactly_once() {
        let engine = Engine::new();
        let mut init = Request::drift("s", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(uniform_workload());
        assert!(engine.handle(&init, &Deadline::none()).ok);
        let req = Request::drift(
            "s",
            vec![DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: 0,
                    weight: 0.5,
                }],
            }],
        )
        .with_idempotency_key("drift-1");
        let first = engine.handle(&req, &Deadline::none());
        assert!(first.ok, "{:?}", first.error);
        assert!(!first.deduplicated);
        let (version, probs) = engine.session_state("s").unwrap();
        assert_eq!(version, 1);
        // The retry replays the stored response; the session does not move.
        let mut retry = req.clone();
        retry.id = 999;
        let second = engine.handle(&retry, &Deadline::none());
        assert!(second.deduplicated);
        assert_eq!(second.id, 999, "replay echoes the retry's own id");
        assert_eq!(
            second.drift.as_ref().unwrap().version,
            first.drift.as_ref().unwrap().version
        );
        let (version2, probs2) = engine.session_state("s").unwrap();
        assert_eq!(version2, 1, "retried delta applied exactly once");
        for (a, b) in probs.iter().zip(&probs2) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The stored answer is recoverable out-of-band too.
        let replay = engine.idempotent_replay("drift-1").unwrap();
        assert_eq!(
            replay.drift.unwrap().cost.to_bits(),
            first.drift.unwrap().cost.to_bits()
        );
        assert!(engine.idempotent_replay("unseen").is_none());
        let stats = engine.stats_body();
        assert_eq!(stats.idempotency.hits, 1);
        assert_eq!(stats.idempotency.misses, 1);
        assert_eq!(stats.idempotency.entries, 1);
    }

    #[test]
    fn transient_failures_are_not_cached_but_bad_requests_are() {
        let engine = Engine::new();
        // deadline_exceeded is transient: the retry executes for real.
        let req = Request::recommend(toy_schema(), uniform_workload()).with_idempotency_key("k1");
        let past = Deadline::from_ms(Instant::now() - std::time::Duration::from_secs(1), Some(0));
        let miss = engine.handle(&req, &past);
        assert_eq!(miss.error.unwrap().code, "deadline_exceeded");
        let retry = engine.handle(&req, &Deadline::none());
        assert!(retry.ok, "{:?}", retry.error);
        assert!(!retry.deduplicated, "transient outcome was not cached");
        // bad_request is authoritative: the retry is deduplicated.
        let bad = Request::new("frobnicate").with_idempotency_key("k2");
        let first = engine.handle(&bad, &Deadline::none());
        assert_eq!(first.error.unwrap().code, "bad_request");
        let second = engine.handle(&bad, &Deadline::none());
        assert!(second.deduplicated);
    }

    #[test]
    fn invalid_delta_in_batch_leaves_session_untouched() {
        let engine = Engine::new();
        let mut init = Request::drift("s", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(uniform_workload());
        assert!(engine.handle(&init, &Deadline::none()).ok);
        let (_, before) = engine.session_state("s").unwrap();
        // First delta valid, second out of bounds: nothing may apply.
        let req = Request::drift(
            "s",
            vec![
                DeltaSpec {
                    updates: vec![WeightUpdate {
                        rank: 0,
                        weight: 0.9,
                    }],
                },
                DeltaSpec {
                    updates: vec![WeightUpdate {
                        rank: 1_000_000,
                        weight: 0.1,
                    }],
                },
            ],
        );
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
        let (version, after) = engine.session_state("s").unwrap();
        assert_eq!(version, 0, "failed batch must not advance the version");
        for (a, b) in before.iter().zip(&after) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn armed_fault_plan_perturbs_execution() {
        use crate::fault::{silence_injected_panics, FaultConfig};
        silence_injected_panics();
        let engine = Engine::new().with_fault(FaultPlan::new(FaultConfig {
            panic_pct: 100,
            ..FaultConfig::quiet(1)
        }));
        let req = Request::new("ping");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            engine.handle(&req, &Deadline::none())
        }));
        assert!(outcome.is_err(), "100% panic plan must panic");
    }

    use snakes_storage::CrashStore;

    fn durable_engine(store: &Arc<CrashStore>) -> Engine {
        Engine::new()
            .with_durability(Media::Store(Arc::clone(store)))
            .unwrap()
    }

    fn drift_once(engine: &Engine, session: &str, rank: usize, weight: f64, key: &str) -> Response {
        let req = Request::drift(
            session,
            vec![DeltaSpec {
                updates: vec![WeightUpdate { rank, weight }],
            }],
        )
        .with_idempotency_key(key);
        engine.handle(&req, &Deadline::none())
    }

    #[test]
    fn durable_engine_recovers_state_bit_identically_across_restart() {
        let store = Arc::new(CrashStore::new());
        let (state, acked_cost) = {
            let engine = durable_engine(&store);
            let mut init = Request::drift("etl", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            assert!(drift_once(&engine, "etl", 0, 0.4, "k-1").ok);
            let acked = drift_once(&engine, "etl", 1, 0.2, "k-2");
            assert!(acked.ok);
            (
                engine.session_state("etl").unwrap(),
                acked.drift.unwrap().cost,
            )
        };
        // "Reboot": only bytes that reached the store survive.
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let stats = engine.stats_body().storage;
        assert!(stats.enabled);
        assert_eq!(stats.recoveries, 1);
        assert_eq!(stats.recovered_sessions, 1);
        let (version, probs) = engine.session_state("etl").unwrap();
        assert_eq!(version, state.0);
        assert_eq!(probs.len(), state.1.len());
        for (a, b) in probs.iter().zip(&state.1) {
            assert_eq!(a.to_bits(), b.to_bits(), "recovered probs must be exact");
        }
        // Acknowledged idempotent responses replay across the restart.
        let replay = engine.idempotent_replay("k-2").unwrap();
        assert_eq!(replay.drift.unwrap().cost.to_bits(), acked_cost.to_bits());
        // And a retried request deduplicates instead of re-applying.
        let retry = drift_once(&engine, "etl", 1, 0.2, "k-2");
        assert!(retry.deduplicated);
        assert_eq!(engine.session_state("etl").unwrap().0, version);
        // The recovered session keeps drifting from where it left off.
        assert!(drift_once(&engine, "etl", 2, 0.1, "k-3").ok);
        assert_eq!(engine.session_state("etl").unwrap().0, version + 1);
    }

    #[test]
    fn checkpoint_folds_the_log_and_survives_restart() {
        let store = Arc::new(CrashStore::new());
        {
            let engine = durable_engine(&store);
            let mut init = Request::drift("s", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            assert!(drift_once(&engine, "s", 0, 0.7, "ck-1").ok);
            assert!(engine.checkpoint().unwrap(), "uncontended checkpoint runs");
            let storage = engine.stats_body().storage;
            assert_eq!(storage.checkpoints, 1);
            assert_eq!(storage.wal_entries, 0, "checkpoint truncates the log");
            // Post-checkpoint tail: replay must apply it on top.
            assert!(drift_once(&engine, "s", 1, 0.1, "ck-2").ok);
        }
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let (version, _) = engine.session_state("s").unwrap();
        assert_eq!(version, 2, "checkpoint state plus log tail");
        assert!(engine.idempotent_replay("ck-1").is_some());
        assert!(engine.idempotent_replay("ck-2").is_some());
    }

    #[test]
    fn recovered_response_bytes_match_the_original_wire_encoding() {
        let store = Arc::new(CrashStore::new());
        let first = {
            let engine = durable_engine(&store);
            let mut init = Request::drift("w", vec![]);
            init.schema = Some(toy_schema());
            init.workload = Some(uniform_workload());
            assert!(engine.handle(&init, &Deadline::none()).ok);
            drift_once(&engine, "w", 3, 0.25, "wire-1")
        };
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let replay = engine.idempotent_replay("wire-1").unwrap();
        assert_eq!(
            replay.to_line(),
            first.to_line(),
            "stored response must survive the WAL round-trip byte-for-byte"
        );
    }

    #[test]
    fn physical_measurement_is_bit_identical_to_the_analytic_memo() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: 3,
            page_size: 512,
            record_size: 125,
            physical: false,
        });
        let analytic = engine.handle(&req, &Deadline::none());
        assert!(analytic.ok, "{:?}", analytic.error);
        let analytic = analytic.price.unwrap().measured.unwrap();
        req.measure.as_mut().unwrap().physical = true;
        let physical = engine.handle(&req, &Deadline::none());
        assert!(physical.ok, "{:?}", physical.error);
        let physical = physical.price.unwrap().measured.unwrap();
        assert_eq!(physical.avg_seeks.to_bits(), analytic.avg_seeks.to_bits());
        assert_eq!(
            physical.avg_normalized_blocks.to_bits(),
            analytic.avg_normalized_blocks.to_bits()
        );
        // The paged engine really ran: its pool counters surface in stats.
        let storage = engine.stats_body().storage;
        assert!(storage.pool_misses > 0, "bulk load must touch the pool");
        assert!(storage.physical_writes > 0, "bulk load must write pages");
        assert!(storage.pool_hit_rate > 0.0, "scans re-read loaded pages");
    }

    #[test]
    fn oversized_physical_measurement_is_rejected_in_band() {
        let engine = Engine::new();
        let mut req = Request::price(
            toy_schema(),
            uniform_workload(),
            StrategySpec::snaked_path(vec![0, 1, 0, 1]),
        );
        req.measure = Some(crate::protocol::MeasureSpec {
            records_per_cell: u64::MAX / 128,
            physical: true,
            ..Default::default()
        });
        let resp = engine.handle(&req, &Deadline::none());
        assert_eq!(resp.error.unwrap().code, "bad_request");
    }

    fn small_measure() -> crate::protocol::MeasureSpec {
        crate::protocol::MeasureSpec {
            records_per_cell: 3,
            page_size: 256,
            record_size: 64,
            physical: false,
        }
    }

    fn recluster_req(job: &str, from: Vec<usize>, to: Vec<usize>) -> Request {
        Request::recluster(
            job,
            toy_schema(),
            uniform_workload(),
            crate::protocol::ReclusterSpec {
                from: Some(StrategySpec::snaked_path(from)),
                to: Some(StrategySpec::snaked_path(to)),
                chunk_pages: 1,
            },
        )
        .with_measure(small_measure())
    }

    #[test]
    fn recluster_endpoints_drive_a_migration_to_completion() {
        let engine = Engine::new();
        let resp = engine.handle(
            &recluster_req("mig", vec![0, 1, 0, 1], vec![1, 0, 1, 0]),
            &Deadline::none(),
        );
        assert!(resp.ok, "{:?}", resp.error);
        let body = resp.recluster.unwrap();
        assert_eq!(body.state, "running");
        assert_eq!(body.fence, 0);
        assert_eq!(body.total_cells, 16);
        // Starting an already-running job is idempotent: it reports
        // progress instead of restarting.
        let again = engine.handle(
            &recluster_req("mig", vec![0, 1, 0, 1], vec![1, 0, 1, 0]),
            &Deadline::none(),
        );
        assert!(again.ok);
        assert_eq!(again.recluster.unwrap().state, "running");
        // Drive the migration: every tick advances one bounded chunk and
        // runs a differential probe over the fence.
        let mut ticks = 0;
        while engine.tick_reclusters(0, 1) > 0 {
            ticks += 1;
            assert!(ticks < 100, "migration must terminate");
        }
        assert!(ticks > 1, "chunk_pages=1 must take several chunks");
        let status = engine.handle(&Request::recluster_status("mig"), &Deadline::none());
        let body = status.recluster.unwrap();
        assert_eq!(body.state, "done");
        assert_eq!(body.fence, 16);
        assert_eq!(body.records_moved, 16 * 3);
        assert_eq!(body.probes, body.chunks_applied);
        // Aborting a finished job is a no-op answer, not an error.
        let aborted = engine.handle(&Request::recluster_abort("mig"), &Deadline::none());
        assert_eq!(aborted.recluster.unwrap().state, "done");
        let stats = engine.stats_body().recluster;
        assert_eq!(stats.jobs_started, 1);
        assert_eq!(stats.jobs_completed, 1);
        assert_eq!(stats.active, 0);
        assert_eq!(stats.records_moved, 48);
        let unknown = engine.handle(&Request::recluster_status("nope"), &Deadline::none());
        assert_eq!(unknown.error.unwrap().code, "bad_request");
    }

    #[test]
    fn recluster_abort_stops_and_restart_continues_from_previous_target() {
        let engine = Engine::new();
        assert!(
            engine
                .handle(
                    &recluster_req("job", vec![0, 1, 0, 1], vec![1, 0, 1, 0]),
                    &Deadline::none(),
                )
                .ok
        );
        assert_eq!(engine.tick_reclusters(0, 1), 1);
        let resp = engine.handle(&Request::recluster_abort("job"), &Deadline::none());
        assert_eq!(resp.recluster.unwrap().state, "aborted");
        assert_eq!(engine.tick_reclusters(0, 1), 0, "aborted jobs do not tick");
        // Restarting the name defaults `from` to the previous target and
        // reuses the previous schema: only a new `to` is needed.
        let mut restart = Request::new("recluster");
        restart.session = Some("job".into());
        restart.recluster = Some(crate::protocol::ReclusterSpec {
            from: None,
            to: Some(StrategySpec::snaked_path(vec![0, 0, 1, 1])),
            chunk_pages: 4,
        });
        let restart = engine.handle(&restart.with_measure(small_measure()), &Deadline::none());
        assert!(restart.ok, "{:?}", restart.error);
        let body = restart.recluster.unwrap();
        assert_eq!(body.state, "running");
        let job = engine.recluster_job("job").unwrap();
        assert_eq!(
            job.lock().snap.from.dims,
            Some(vec![1, 0, 1, 0]),
            "restart picks up from the aborted job's target layout"
        );
        while engine.tick_reclusters(0, 1) > 0 {}
        let stats = engine.stats_body().recluster;
        assert_eq!(stats.jobs_aborted, 1);
        assert_eq!(stats.jobs_completed, 1);
    }

    #[test]
    fn recluster_target_defaults_to_the_recommendation() {
        let engine = Engine::new();
        let direct = engine.handle(
            &Request::recommend(toy_schema(), uniform_workload()),
            &Deadline::none(),
        );
        let optimal = direct.recommendation.unwrap().path_dims;
        let req = Request::recluster(
            "rec",
            toy_schema(),
            uniform_workload(),
            crate::protocol::ReclusterSpec {
                from: Some(StrategySpec::snaked_path(vec![0, 0, 1, 1])),
                to: None,
                chunk_pages: 4,
            },
        )
        .with_measure(small_measure());
        let resp = engine.handle(&req, &Deadline::none());
        assert!(resp.ok, "{:?}", resp.error);
        assert_eq!(resp.recluster.unwrap().state, "running");
        let job = engine.recluster_job("rec").unwrap();
        assert_eq!(
            job.lock().snap.to.dims,
            Some(optimal),
            "omitted target defaults to the advisor's recommendation"
        );
    }

    #[test]
    fn recluster_jobs_resume_from_the_logged_fence_across_restart() {
        let store = Arc::new(CrashStore::new());
        let fence_before = {
            let engine = durable_engine(&store);
            assert!(
                engine
                    .handle(
                        &recluster_req("dur", vec![0, 1, 0, 1], vec![1, 0, 1, 0]),
                        &Deadline::none(),
                    )
                    .ok
            );
            // A few chunks, then "SIGKILL" (drop without finishing).
            assert_eq!(engine.tick_reclusters(0, 1), 1);
            assert_eq!(engine.tick_reclusters(0, 1), 1);
            engine.flush_wal().unwrap();
            let status = engine.handle(&Request::recluster_status("dur"), &Deadline::none());
            let body = status.recluster.unwrap();
            assert!(body.fence > 0 && !body.state.eq("done"));
            body.fence
        };
        let store = Arc::new(CrashStore::reopen(&store));
        let engine = durable_engine(&store);
        let stats = engine.stats_body().recluster;
        assert_eq!(stats.jobs_recovered, 1);
        assert_eq!(stats.active, 1);
        let status = engine.handle(&Request::recluster_status("dur"), &Deadline::none());
        let body = status.recluster.unwrap();
        assert_eq!(body.state, "running");
        assert_eq!(
            body.fence, fence_before,
            "resume exactly at the logged fence"
        );
        // The recovered migration runs to completion (probes keep passing:
        // the rebuilt table is bit-identical by construction).
        while engine.tick_reclusters(0, 1) > 0 {}
        let status = engine.handle(&Request::recluster_status("dur"), &Deadline::none());
        assert_eq!(status.recluster.unwrap().state, "done");
    }

    #[test]
    fn drift_auto_triggers_a_migration_and_advances_the_layout() {
        let engine = Engine::new().with_auto_recluster(AutoRecluster {
            horizon_queries: 1e9,
            min_signals: 2,
            cooldown: 4,
            chunk_pages: 4,
            measure: small_measure(),
        });
        let mut init = Request::drift("sales", vec![]);
        init.schema = Some(toy_schema());
        init.workload = Some(uniform_workload());
        assert!(engine.handle(&init, &Deadline::none()).ok);
        // The first commit pins the baseline layout to the then-optimal
        // path. Repoint it at a deliberately suboptimal one so the
        // advisor sees a persistent gap worth migrating away from.
        let optimal = {
            let handle = engine.sessions.get("sales").unwrap();
            let mut session = handle.lock();
            let shape = session.dp.model().shape().clone();
            let optimal = session.layout_path.clone().expect("pinned on first commit");
            // A blocked path (one dimension fully first) is strictly worse
            // than the alternating optimum for a uniform workload — and
            // not merely its mirror image, which would cost the same by
            // the toy schema's symmetry.
            let dims = if optimal.dims() == [0, 0, 1, 1] {
                vec![0, 1, 0, 1]
            } else {
                vec![0, 0, 1, 1]
            };
            session.layout_path = Some(LatticePath::from_dims(shape, dims).unwrap());
            optimal
        };
        assert!(drift_once(&engine, "sales", 0, 0.50001, "at-1").ok);
        assert_eq!(
            engine.stats_body().recluster.auto_triggers,
            0,
            "one signal is not a streak"
        );
        assert!(drift_once(&engine, "sales", 0, 0.5, "at-2").ok);
        let stats = engine.stats_body().recluster;
        assert_eq!(stats.auto_triggers, 1, "second consecutive signal fires");
        assert_eq!(stats.active, 1);
        let status = engine.handle(&Request::recluster_status("auto:sales"), &Deadline::none());
        assert_eq!(status.recluster.unwrap().state, "running");
        // Cooldown: further drifts must not start a second job.
        assert!(drift_once(&engine, "sales", 1, 0.3, "at-3").ok);
        assert_eq!(engine.stats_body().recluster.auto_triggers, 1);
        while engine.tick_reclusters(0, 1) > 0 {}
        assert_eq!(engine.stats_body().recluster.jobs_completed, 1);
        // Completion advanced the session's assumed layout to the target:
        // the estimator is satisfied and the trigger stays quiet.
        let handle = engine.sessions.get("sales").unwrap();
        let assumed = handle.lock().layout_path.clone().unwrap();
        assert_eq!(assumed.dims(), optimal.dims());
    }
}
