//! Readiness polling for the sharded nonblocking core.
//!
//! Two [`Reactor`] implementations drive the *same* shard event loop:
//!
//! * [`EpollReactor`] — the production poller over Linux `epoll`, declared
//!   through a thin hand-rolled FFI shim (mirroring the `signal(2)` shim in
//!   `server.rs`; the crate stays free of an async runtime and of `libc`).
//!   Level-triggered, with an `eventfd` wake channel so peer shards and the
//!   acceptor can interrupt a blocked `epoll_wait`.
//! * [`SimReactor`] — a condvar-backed ready set used by the deterministic
//!   fault simulator. In-memory pipes fire a ready hook on every write and
//!   close, which marks the connection's token ready and wakes the shard.
//!
//! Connections are abstracted as [`ShardStream`]: a nonblocking byte stream
//! that either exposes a raw fd (TCP, registered with epoll) or accepts a
//! ready hook (simulator pipes). Because shards always read until
//! `WouldBlock`, the hook's edge-style signalling composes safely with
//! level-triggered epoll semantics: a racing write simply re-marks the
//! token ready.

use std::collections::BTreeSet;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Token reserved for the reactor's internal wake channel; connection
/// tokens must stay below it.
pub const WAKE_TOKEN: usize = usize::MAX;

/// A nonblocking duplex byte stream owned by one shard.
///
/// `read_nb`/`write_nb` follow `std::io` conventions: `Ok(0)` from a read
/// is end-of-stream, and `ErrorKind::WouldBlock` means "try again after the
/// next readiness event".
pub trait ShardStream: Send {
    /// Nonblocking read into `buf`.
    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize>;
    /// Nonblocking write from `buf`.
    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize>;
    /// The raw file descriptor, for fd-based reactors. `None` for
    /// in-memory streams.
    fn raw_fd(&self) -> Option<i32> {
        None
    }
    /// Installs a hook fired whenever the stream may have become readable.
    /// Hook-based reactors use this; fd-based reactors ignore it.
    fn set_ready_hook(&mut self, _hook: Arc<dyn Fn() + Send + Sync>) {}
}

/// A cloneable handle that interrupts a reactor blocked in
/// [`Reactor::wait`], usable from any thread.
#[derive(Clone)]
pub struct Waker(Arc<dyn Fn() + Send + Sync>);

impl Waker {
    /// Wakes the owning reactor; idempotent and race-free.
    pub fn wake(&self) {
        (self.0)();
    }
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Waker")
    }
}

/// A readiness poller owned by one shard thread.
pub trait Reactor: Send {
    /// Starts watching `stream` under `token` for read readiness.
    fn register(&mut self, token: usize, stream: &mut dyn ShardStream) -> io::Result<()>;
    /// Adds or removes write-readiness interest for a registered stream
    /// (set while the connection has unflushed output).
    fn set_write_interest(
        &mut self,
        token: usize,
        stream: &dyn ShardStream,
        want: bool,
    ) -> io::Result<()>;
    /// Stops watching a registered stream.
    fn deregister(&mut self, token: usize, stream: &dyn ShardStream) -> io::Result<()>;
    /// Blocks until at least one token is ready, the waker fires, or
    /// `timeout` elapses; appends ready tokens (deduplicated) to `ready`.
    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()>;
    /// Returns a handle that interrupts [`Reactor::wait`] from any thread.
    fn waker(&self) -> Waker;
}

/// A nonblocking TCP connection served by a shard.
pub struct TcpShardStream {
    stream: TcpStream,
}

impl TcpShardStream {
    /// Wraps an accepted stream, switching it to nonblocking mode and
    /// disabling Nagle (the protocol is request/response lines).
    pub fn new(stream: TcpStream) -> io::Result<Self> {
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        Ok(Self { stream })
    }
}

impl ShardStream for TcpShardStream {
    fn read_nb(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }

    fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn raw_fd(&self) -> Option<i32> {
        Some(self.stream.as_raw_fd())
    }
}

mod ffi {
    //! Minimal epoll/eventfd bindings, hand-rolled to stay dependency-free
    //! (the repo's idiom: see the `signal` shim in `server.rs`).
    #![allow(non_camel_case_types)]

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLL_CLOEXEC: i32 = 0x80000;
    pub const EFD_CLOEXEC: i32 = 0x80000;
    pub const EFD_NONBLOCK: i32 = 0x800;

    // The kernel ABI packs `epoll_event` on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct epoll_event {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut epoll_event) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut epoll_event, maxevents: i32, timeout: i32)
            -> i32;
        pub fn eventfd(initval: u32, flags: i32) -> i32;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn close(fd: i32) -> i32;
    }
}

/// The production poller: level-triggered `epoll` plus an `eventfd` wake
/// channel registered under [`WAKE_TOKEN`].
pub struct EpollReactor {
    epfd: i32,
    wake_fd: i32,
    events: Vec<ffi::epoll_event>,
}

// SAFETY: the reactor is owned and polled by a single shard thread; the
// raw fds it holds are plain integers.
unsafe impl Send for EpollReactor {}

fn last_os_error() -> io::Error {
    io::Error::last_os_error()
}

impl EpollReactor {
    /// Creates the epoll instance and its wake eventfd.
    pub fn new() -> io::Result<Self> {
        // SAFETY: plain syscalls creating new fds; results are checked.
        let epfd = unsafe { ffi::epoll_create1(ffi::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(last_os_error());
        }
        let wake_fd = unsafe { ffi::eventfd(0, ffi::EFD_CLOEXEC | ffi::EFD_NONBLOCK) };
        if wake_fd < 0 {
            let err = last_os_error();
            unsafe { ffi::close(epfd) };
            return Err(err);
        }
        let mut ev = ffi::epoll_event {
            events: ffi::EPOLLIN,
            data: WAKE_TOKEN as u64,
        };
        // SAFETY: epfd and wake_fd are live fds we just created; `ev` is a
        // valid epoll_event for the duration of the call.
        if unsafe { ffi::epoll_ctl(epfd, ffi::EPOLL_CTL_ADD, wake_fd, &mut ev) } < 0 {
            let err = last_os_error();
            unsafe {
                ffi::close(wake_fd);
                ffi::close(epfd);
            }
            return Err(err);
        }
        Ok(Self {
            epfd,
            wake_fd,
            events: vec![ffi::epoll_event { events: 0, data: 0 }; 64],
        })
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, token: usize) -> io::Result<()> {
        let mut ev = ffi::epoll_event {
            events,
            data: token as u64,
        };
        // SAFETY: `self.epfd` is live for the lifetime of the reactor and
        // `ev` outlives the call.
        if unsafe { ffi::epoll_ctl(self.epfd, op, fd, &mut ev) } < 0 {
            Err(last_os_error())
        } else {
            Ok(())
        }
    }

    fn stream_fd(stream: &dyn ShardStream) -> io::Result<i32> {
        stream.raw_fd().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                "EpollReactor requires fd-backed streams",
            )
        })
    }
}

impl Drop for EpollReactor {
    fn drop(&mut self) {
        // SAFETY: closing fds this reactor owns.
        unsafe {
            ffi::close(self.wake_fd);
            ffi::close(self.epfd);
        }
    }
}

impl Reactor for EpollReactor {
    fn register(&mut self, token: usize, stream: &mut dyn ShardStream) -> io::Result<()> {
        let fd = Self::stream_fd(stream)?;
        self.ctl(ffi::EPOLL_CTL_ADD, fd, ffi::EPOLLIN, token)
    }

    fn set_write_interest(
        &mut self,
        token: usize,
        stream: &dyn ShardStream,
        want: bool,
    ) -> io::Result<()> {
        let fd = Self::stream_fd(stream)?;
        let events = if want {
            ffi::EPOLLIN | ffi::EPOLLOUT
        } else {
            ffi::EPOLLIN
        };
        self.ctl(ffi::EPOLL_CTL_MOD, fd, events, token)
    }

    fn deregister(&mut self, _token: usize, stream: &dyn ShardStream) -> io::Result<()> {
        let fd = Self::stream_fd(stream)?;
        self.ctl(ffi::EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()> {
        let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as i32;
        // SAFETY: `self.events` stays allocated for the duration of the
        // call and `maxevents` matches its length.
        let n = unsafe {
            ffi::epoll_wait(
                self.epfd,
                self.events.as_mut_ptr(),
                self.events.len() as i32,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &self.events[..n as usize] {
            let token = { ev.data } as usize;
            if token == WAKE_TOKEN {
                // Drain the eventfd counter so the next wait can block.
                let mut buf = [0u8; 8];
                // SAFETY: reading our own nonblocking eventfd into a
                // stack buffer of the required 8 bytes.
                unsafe { ffi::read(self.wake_fd, buf.as_mut_ptr(), buf.len()) };
            } else if !ready.contains(&token) {
                ready.push(token);
            }
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        let fd = self.wake_fd;
        Waker(Arc::new(move || {
            let one = 1u64.to_ne_bytes();
            // SAFETY: writing 8 bytes to a live eventfd; EAGAIN (counter
            // saturated) still leaves the fd readable, so errors are moot.
            unsafe { ffi::write(fd, one.as_ptr(), one.len()) };
        }))
    }
}

#[derive(Default)]
struct SimReadyState {
    ready: BTreeSet<usize>,
    woken: bool,
}

#[derive(Default)]
struct SimShared {
    state: Mutex<SimReadyState>,
    cv: Condvar,
}

/// The simulator poller: a shared ready set fed by pipe write/close hooks.
#[derive(Default)]
pub struct SimReactor {
    shared: Arc<SimShared>,
}

impl SimReactor {
    /// Creates an empty ready set.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Reactor for SimReactor {
    fn register(&mut self, token: usize, stream: &mut dyn ShardStream) -> io::Result<()> {
        let shared = Arc::clone(&self.shared);
        stream.set_ready_hook(Arc::new(move || {
            let mut state = shared.state.lock().unwrap();
            state.ready.insert(token);
            shared.cv.notify_all();
        }));
        // Data may already be buffered from before registration: start
        // the token out ready so the first tick reads it.
        let mut state = self.shared.state.lock().unwrap();
        state.ready.insert(token);
        Ok(())
    }

    fn set_write_interest(
        &mut self,
        token: usize,
        _stream: &dyn ShardStream,
        want: bool,
    ) -> io::Result<()> {
        // Pipe writes never block, but keep the contract honest: wanting
        // write readiness re-marks the token so the next tick retries.
        if want {
            let mut state = self.shared.state.lock().unwrap();
            state.ready.insert(token);
            self.shared.cv.notify_all();
        }
        Ok(())
    }

    fn deregister(&mut self, token: usize, _stream: &dyn ShardStream) -> io::Result<()> {
        let mut state = self.shared.state.lock().unwrap();
        state.ready.remove(&token);
        Ok(())
    }

    fn wait(&mut self, timeout: Duration, ready: &mut Vec<usize>) -> io::Result<()> {
        let mut state = self.shared.state.lock().unwrap();
        if state.ready.is_empty() && !state.woken {
            let (guard, _) = self.shared.cv.wait_timeout(state, timeout).unwrap();
            state = guard;
        }
        state.woken = false;
        for token in std::mem::take(&mut state.ready) {
            if !ready.contains(&token) {
                ready.push(token);
            }
        }
        Ok(())
    }

    fn waker(&self) -> Waker {
        let shared = Arc::clone(&self.shared);
        Waker(Arc::new(move || {
            let mut state = shared.state.lock().unwrap();
            state.woken = true;
            shared.cv.notify_all();
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn epoll_sees_readable_data_and_waker_interrupts() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut stream = TcpShardStream::new(server).unwrap();

        let mut reactor = EpollReactor::new().unwrap();
        reactor.register(7, &mut stream).unwrap();

        let mut ready = Vec::new();
        reactor.wait(Duration::from_millis(10), &mut ready).unwrap();
        assert!(ready.is_empty(), "no data yet: {ready:?}");

        client.write_all(b"ping\n").unwrap();
        ready.clear();
        reactor
            .wait(Duration::from_millis(500), &mut ready)
            .unwrap();
        assert_eq!(ready, vec![7]);

        let mut buf = [0u8; 16];
        let n = stream.read_nb(&mut buf).unwrap();
        assert_eq!(&buf[..n], b"ping\n");
        assert!(matches!(
            stream.read_nb(&mut buf),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock
        ));

        // A waker fired from another thread interrupts a blocked wait.
        let waker = reactor.waker();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            waker.wake();
        });
        let start = Instant::now();
        ready.clear();
        reactor.wait(Duration::from_secs(5), &mut ready).unwrap();
        assert!(start.elapsed() < Duration::from_secs(4));
        assert!(ready.is_empty());
        handle.join().unwrap();

        // EOF shows up as readable with a zero-byte read.
        drop(client);
        ready.clear();
        reactor
            .wait(Duration::from_millis(500), &mut ready)
            .unwrap();
        assert_eq!(ready, vec![7]);
        assert_eq!(stream.read_nb(&mut buf).unwrap(), 0);
        reactor.deregister(7, &stream).unwrap();
    }

    #[test]
    fn epoll_write_interest_fires_for_writable_sockets() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        let mut stream = TcpShardStream::new(server).unwrap();

        let mut reactor = EpollReactor::new().unwrap();
        reactor.register(3, &mut stream).unwrap();
        reactor.set_write_interest(3, &stream, true).unwrap();
        let mut ready = Vec::new();
        reactor
            .wait(Duration::from_millis(500), &mut ready)
            .unwrap();
        assert_eq!(ready, vec![3], "an idle socket is immediately writable");
        reactor.set_write_interest(3, &stream, false).unwrap();
        ready.clear();
        reactor.wait(Duration::from_millis(10), &mut ready).unwrap();
        assert!(ready.is_empty());
    }

    struct HookStream {
        hook: Option<Arc<dyn Fn() + Send + Sync>>,
    }

    impl ShardStream for HookStream {
        fn read_nb(&mut self, _buf: &mut [u8]) -> io::Result<usize> {
            Err(io::ErrorKind::WouldBlock.into())
        }
        fn write_nb(&mut self, buf: &[u8]) -> io::Result<usize> {
            Ok(buf.len())
        }
        fn set_ready_hook(&mut self, hook: Arc<dyn Fn() + Send + Sync>) {
            self.hook = Some(hook);
        }
    }

    #[test]
    fn sim_reactor_ready_set_and_waker() {
        let mut reactor = SimReactor::new();
        let mut stream = HookStream { hook: None };
        reactor.register(11, &mut stream).unwrap();

        // Registration marks the token ready once (pre-buffered data).
        let mut ready = Vec::new();
        reactor.wait(Duration::from_millis(10), &mut ready).unwrap();
        assert_eq!(ready, vec![11]);
        ready.clear();
        reactor.wait(Duration::from_millis(5), &mut ready).unwrap();
        assert!(ready.is_empty());

        // The hook re-marks it from any thread.
        let hook = stream.hook.clone().unwrap();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(10));
            hook();
        });
        reactor.wait(Duration::from_secs(5), &mut ready).unwrap();
        assert_eq!(ready, vec![11]);
        handle.join().unwrap();

        // Waker interrupts without marking any token.
        let waker = reactor.waker();
        waker.wake();
        ready.clear();
        reactor.wait(Duration::from_secs(5), &mut ready).unwrap();
        assert!(ready.is_empty());
    }
}
