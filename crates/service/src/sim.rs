//! Deterministic simulation of the full advisor service under injected
//! faults.
//!
//! The harness runs the **production** server core against in-memory
//! duplex pipes instead of TCP sockets: by default the nonblocking
//! sharded core ([`crate::shard::ShardedCore`] — real event loops over
//! [`SimReactor`]s, real cross-shard forwarding, real per-tick batching
//! and drain barrier), with the blocking [`crate::server::Core`]
//! available as the conformance oracle ([`SimCoreKind::Blocking`]). A
//! seeded [`FaultConfig`] drives every fault decision:
//!
//! * client-side transport faults (torn frames, slow chunked writes,
//!   connections dropped before/during the response) via
//!   [`crate::fault::TransportFaults`];
//! * server-side handler faults (worker panics, execution delays that
//!   skew against per-request deadlines) via an armed
//!   [`crate::fault::FaultPlan`] on the engine;
//! * an optional shutdown racing the in-flight requests.
//!
//! [`run_schedule`] drives a whole schedule — several concurrent
//! [`RetryingClient`]s issuing mixed traffic — and verifies the three
//! harness invariants:
//!
//! 1. **Exactly-once visibility** — every admitted request produces
//!    exactly one response or in-band error; nothing hangs, nothing is
//!    silently dropped.
//! 2. **Bit-identity** — every successful answer equals the direct
//!    library call (`f64::to_bits` equality).
//! 3. **State equivalence** — after any fault schedule, each drift
//!    session's state equals a fault-free replay of exactly the
//!    acknowledged (committed) deltas, in order.
//!
//! Fault *decisions* are pure functions of the seed, so a failing seed
//! replays the same fault pattern; thread interleavings still vary with
//! the OS scheduler, which is the point — the invariants must hold for
//! every interleaving of a given fault schedule.

use crate::client::{Dialer, RetryPolicy, RetryingClient, Transport};
use crate::engine::Engine;
use crate::error::ServiceError;
use crate::fault::{
    silence_injected_panics, FaultConfig, FaultPlan, ReadFault, SplitMix64, TransportFaults,
    WriteFault,
};
use crate::protocol::{DeltaSpec, Request, Response, SchemaSpec, StrategySpec, WorkloadSpec};
use crate::reactor::{ShardStream, SimReactor};
use crate::server::Core;
use crate::shard::{ShardedConfig, ShardedCore};
use snakes_core::cost::CostModel;
use snakes_core::dp::IncrementalDp;
use snakes_core::lattice::LatticeShape;
use snakes_core::path::LatticePath;
use snakes_core::schema::StarSchema;
use snakes_core::workload::{VersionedWorkload, WeightUpdate, Workload, WorkloadDelta};
use snakes_curves::{aggregate_class_costs, path_curve, snaked_path_curve};
use std::collections::VecDeque;
use std::io::Read;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

// ---------------------------------------------------------------------------
// In-memory pipes.
// ---------------------------------------------------------------------------

struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One unidirectional in-memory byte stream. Blocking reads surface
/// `WouldBlock` after a short empty wait, mimicking the read-timeout poll
/// the blocking core uses to watch the drain flag — so the production
/// `serve_connection` runs unmodified over a pair of these. Nonblocking
/// reads ([`Pipe::try_read`]) plus a readiness hook fired on every write
/// and close let the same pipe drive the sharded core's event loop
/// through a [`SimReactor`].
struct Pipe {
    state: Mutex<PipeState>,
    available: Condvar,
    /// Fired after every write and on close: the sim reactor's edge.
    hook: Mutex<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl Pipe {
    fn new() -> Arc<Pipe> {
        Arc::new(Pipe {
            state: Mutex::new(PipeState {
                buf: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            hook: Mutex::new(None),
        })
    }

    fn fire_hook(&self) {
        let hook = self.hook.lock().expect("hook lock").clone();
        if let Some(hook) = hook {
            hook();
        }
    }

    /// Installs the readiness hook, firing it immediately if data (or an
    /// EOF) is already waiting, so no pre-registration edge is lost.
    fn set_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.hook.lock().expect("hook lock") = Some(hook);
        let pending = {
            let state = self.state.lock().expect("pipe lock");
            !state.buf.is_empty() || state.closed
        };
        if pending {
            self.fire_hook();
        }
    }

    fn write(&self, bytes: &[u8]) -> std::io::Result<()> {
        let mut state = self.state.lock().expect("pipe lock");
        if state.closed {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipe closed",
            ));
        }
        state.buf.extend(bytes);
        drop(state);
        self.available.notify_all();
        self.fire_hook();
        Ok(())
    }

    /// Nonblocking read: bytes if any, `Ok(0)` at EOF, `WouldBlock`
    /// otherwise.
    fn try_read(&self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut state = self.state.lock().expect("pipe lock");
        if !state.buf.is_empty() {
            let n = out.len().min(state.buf.len());
            for slot in out.iter_mut().take(n) {
                *slot = state.buf.pop_front().expect("non-empty");
            }
            return Ok(n);
        }
        if state.closed {
            return Ok(0);
        }
        Err(std::io::Error::new(
            std::io::ErrorKind::WouldBlock,
            "pipe empty",
        ))
    }

    fn read(&self, out: &mut [u8]) -> std::io::Result<usize> {
        let mut state = self.state.lock().expect("pipe lock");
        loop {
            if !state.buf.is_empty() {
                let n = out.len().min(state.buf.len());
                for slot in out.iter_mut().take(n) {
                    *slot = state.buf.pop_front().expect("non-empty");
                }
                return Ok(n);
            }
            if state.closed {
                return Ok(0);
            }
            let (guard, timeout) = self
                .available
                .wait_timeout(state, Duration::from_millis(1))
                .expect("pipe lock");
            state = guard;
            if timeout.timed_out() && state.buf.is_empty() && !state.closed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "pipe poll",
                ));
            }
        }
    }

    fn close(&self) {
        self.state.lock().expect("pipe lock").closed = true;
        self.available.notify_all();
        self.fire_hook();
    }
}

/// The server-side face of one simulated connection for the sharded
/// core: nonblocking reads from the client→server pipe, writes into the
/// server→client pipe, readiness hook on the read side. Dropping it
/// closes both directions, exactly like dropping a TCP stream.
struct SimDuplex {
    read: Arc<Pipe>,
    write: Arc<Pipe>,
}

impl ShardStream for SimDuplex {
    fn read_nb(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.read.try_read(buf)
    }

    fn write_nb(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.write.write(buf)?;
        Ok(buf.len())
    }

    fn set_ready_hook(&mut self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.read.set_hook(hook);
    }
}

impl Drop for SimDuplex {
    fn drop(&mut self) {
        self.read.close();
        self.write.close();
    }
}

/// Read half of a [`Pipe`]; closes it on drop.
struct PipeReader(Arc<Pipe>);

impl Read for PipeReader {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        self.0.read(out)
    }
}

impl Drop for PipeReader {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// Write half of a [`Pipe`]; closes it on drop.
struct PipeWriter(Arc<Pipe>);

impl std::io::Write for PipeWriter {
    fn write(&mut self, bytes: &[u8]) -> std::io::Result<usize> {
        self.0.write(bytes)?;
        Ok(bytes.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

impl Drop for PipeWriter {
    fn drop(&mut self) {
        self.0.close();
    }
}

// ---------------------------------------------------------------------------
// The simulated server.
// ---------------------------------------------------------------------------

/// Which server core a simulation drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimCoreKind {
    /// The nonblocking sharded event-loop core ([`ShardedCore`]) — the
    /// production serving path, and the default.
    Sharded,
    /// The blocking `Core` + `serve_connection` stack: the conformance
    /// oracle whose semantics the sharded core must match.
    Blocking,
}

/// The core actually running behind a [`SimServer`].
enum SimCore {
    Sharded {
        core: Arc<ShardedCore>,
        threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    },
    Blocking {
        core: Core,
        workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
        conns: Mutex<Vec<std::thread::JoinHandle<()>>>,
    },
}

/// The full server core behind in-memory connections: real shards (or the
/// blocking oracle's real workers and admission queue), fault plan armed
/// on the engine.
pub struct SimServer {
    inner: SimCore,
}

impl SimServer {
    /// Starts the **sharded nonblocking core** — `workers` shards driven
    /// by [`SimReactor`]s — against an engine armed with `fault`.
    pub fn start(workers: usize, queue_capacity: usize, fault: FaultConfig) -> Arc<SimServer> {
        SimServer::start_kind(SimCoreKind::Sharded, workers, queue_capacity, fault)
    }

    /// Starts the requested core kind behind the same harness.
    pub fn start_kind(
        kind: SimCoreKind,
        workers: usize,
        queue_capacity: usize,
        fault: FaultConfig,
    ) -> Arc<SimServer> {
        silence_injected_panics();
        let engine = Engine::with_limits(workers, queue_capacity).with_fault(FaultPlan::new(fault));
        let inner = match kind {
            SimCoreKind::Sharded => {
                let config = ShardedConfig {
                    shards: workers,
                    queue_capacity,
                    retry_after_ms: 1,
                };
                let (core, threads) =
                    ShardedCore::start(engine, &config, |_| Ok(Box::new(SimReactor::new())))
                        .expect("sim reactors cannot fail");
                SimCore::Sharded {
                    core,
                    threads: Mutex::new(threads),
                }
            }
            SimCoreKind::Blocking => {
                let (core, handles) = Core::start(engine, workers, queue_capacity, 1);
                SimCore::Blocking {
                    core,
                    workers: Mutex::new(handles),
                    conns: Mutex::new(Vec::new()),
                }
            }
        };
        Arc::new(SimServer { inner })
    }

    /// The shared engine (caches, sessions, metrics, fault counters).
    pub fn engine(&self) -> &Arc<Engine> {
        match &self.inner {
            SimCore::Sharded { core, .. } => core.engine(),
            SimCore::Blocking { core, .. } => core.engine(),
        }
    }

    /// Requests a graceful drain, exactly like SIGTERM on the daemon.
    pub fn shutdown(&self) {
        match &self.inner {
            SimCore::Sharded { core, .. } => core.shutdown(),
            SimCore::Blocking { core, .. } => core.shutdown(),
        }
    }

    /// Drains and joins every server thread. Call after all clients have
    /// finished (their dropped pipes unblock the server side). On the
    /// blocking core, workers join first; any job they stranded is then
    /// purged — disconnecting its reply channel so the blocked connection
    /// thread answers in-band and exits instead of deadlocking the
    /// harness — and the loss shows up in the admitted/finished counters.
    /// The sharded core's drain barrier makes stranding impossible by
    /// construction: shards only exit once nothing is queued, outboxed,
    /// or in flight anywhere.
    pub fn join(&self) {
        self.shutdown();
        match &self.inner {
            SimCore::Sharded { threads, .. } => {
                let threads: Vec<_> = threads.lock().expect("threads lock").drain(..).collect();
                for handle in threads {
                    let _ = handle.join();
                }
            }
            SimCore::Blocking {
                core,
                workers,
                conns,
            } => {
                let workers: Vec<_> = workers.lock().expect("workers lock").drain(..).collect();
                for handle in workers {
                    let _ = handle.join();
                }
                core.purge_queue();
                let conns: Vec<_> = conns.lock().expect("conns lock").drain(..).collect();
                for handle in conns {
                    let _ = handle.join();
                }
            }
        }
    }

    /// Opens one simulated connection — handed to a shard's event loop,
    /// or to a dedicated thread running the oracle's `serve_connection`.
    /// Returns the client-side (write half, read half).
    fn open_connection(&self) -> (PipeWriter, PipeReader) {
        let to_server = Pipe::new();
        let from_server = Pipe::new();
        match &self.inner {
            SimCore::Sharded { core, .. } => {
                core.add_connection(Box::new(SimDuplex {
                    read: Arc::clone(&to_server),
                    write: Arc::clone(&from_server),
                }));
            }
            SimCore::Blocking { core, conns, .. } => {
                let core = core.clone();
                let server_read = PipeReader(Arc::clone(&to_server));
                let server_write = PipeWriter(Arc::clone(&from_server));
                let handle = std::thread::Builder::new()
                    .name("snakes-sim-conn".into())
                    .spawn(move || {
                        let mut reader = std::io::BufReader::new(server_read);
                        let mut writer = server_write;
                        core.serve_connection(&mut reader, &mut writer);
                    })
                    .expect("spawn sim connection");
                conns.lock().expect("conns lock").push(handle);
            }
        }
        (PipeWriter(to_server), PipeReader(from_server))
    }
}

// ---------------------------------------------------------------------------
// The fault-injecting client transport.
// ---------------------------------------------------------------------------

/// [`Dialer`] opening fault-injected connections to a [`SimServer`]. The
/// fault stream persists across re-dials, so a client's fault pattern is
/// a deterministic function of `(config seed, client salt)`.
pub struct SimDialer {
    server: Arc<SimServer>,
    faults: Arc<Mutex<TransportFaults>>,
}

impl SimDialer {
    /// A dialer for one simulated client (`salt` separates clients).
    pub fn new(server: Arc<SimServer>, fault: FaultConfig, salt: u64) -> Self {
        SimDialer {
            server,
            faults: Arc::new(Mutex::new(TransportFaults::new(fault, salt))),
        }
    }

    /// `(torn, chunked, dropped)` transport faults injected so far.
    pub fn fault_counts(&self) -> (u64, u64, u64) {
        self.faults.lock().expect("faults lock").counts()
    }

    /// A handle to the fault counters that survives moving the dialer
    /// into a [`RetryingClient`].
    pub fn counters(&self) -> Arc<Mutex<TransportFaults>> {
        Arc::clone(&self.faults)
    }
}

impl Dialer for SimDialer {
    fn dial(&mut self) -> Result<Box<dyn Transport>, ServiceError> {
        let (writer, reader) = self.server.open_connection();
        Ok(Box::new(FaultedTransport {
            writer,
            reader,
            faults: Arc::clone(&self.faults),
        }))
    }
}

/// A pipe transport that executes the client-side fault plan.
struct FaultedTransport {
    writer: PipeWriter,
    reader: PipeReader,
    faults: Arc<Mutex<TransportFaults>>,
}

impl FaultedTransport {
    /// Hard-drops the connection (both directions), as a crashed client
    /// or cut network would.
    fn kill(&self) {
        self.writer.0.close();
        self.reader.0.close();
    }
}

impl Transport for FaultedTransport {
    fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        let mut frame = Vec::with_capacity(line.len() + 1);
        frame.extend_from_slice(line.as_bytes());
        frame.push(b'\n');
        let fault = self
            .faults
            .lock()
            .expect("faults lock")
            .write_fault(frame.len());
        match fault {
            WriteFault::Clean => {
                self.writer.0.write(&frame)?;
                Ok(())
            }
            WriteFault::Torn { at } => {
                let _ = self.writer.0.write(&frame[..at]);
                self.kill();
                Err(ServiceError::Protocol(
                    "connection torn mid-frame (injected)".into(),
                ))
            }
            WriteFault::Chunked { chunk, pause_ms } => {
                for piece in frame.chunks(chunk.max(1)) {
                    self.writer.0.write(piece)?;
                    if pause_ms > 0 {
                        std::thread::sleep(Duration::from_millis(pause_ms));
                    }
                }
                Ok(())
            }
        }
    }

    fn recv_line(&mut self) -> Result<String, ServiceError> {
        match self.faults.lock().expect("faults lock").read_fault() {
            ReadFault::Clean => {}
            ReadFault::DropBeforeRead => {
                self.kill();
                return Err(ServiceError::Protocol(
                    "connection dropped before response (injected)".into(),
                ));
            }
            ReadFault::DropMidRead => {
                // Pull a few response bytes (maybe none arrived yet), then
                // cut the line.
                let mut scratch = [0u8; 3];
                let _ = self.reader.0.read(&mut scratch);
                self.kill();
                return Err(ServiceError::Protocol(
                    "connection dropped mid-response (injected)".into(),
                ));
            }
        }
        let mut line = Vec::new();
        let mut chunk = [0u8; 256];
        // Bounded wait (~10 s of 1 ms polls): a server that never answers
        // is itself an invariant violation, and the client must surface
        // it as a transport error rather than wedge the harness.
        let mut polls = 0u32;
        loop {
            match self.reader.read(&mut chunk) {
                Ok(0) => {
                    return Err(ServiceError::Protocol(
                        "server closed the connection".into(),
                    ))
                }
                Ok(n) => {
                    line.extend_from_slice(&chunk[..n]);
                    if let Some(pos) = line.iter().position(|&b| b == b'\n') {
                        line.truncate(pos);
                        return String::from_utf8(line).map_err(|_| {
                            ServiceError::Protocol("response is not valid UTF-8".into())
                        });
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    polls += 1;
                    if polls > 10_000 {
                        self.kill();
                        return Err(ServiceError::Protocol(
                            "timed out waiting for a response".into(),
                        ));
                    }
                }
                Err(e) => return Err(ServiceError::Io(e)),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Schedules.
// ---------------------------------------------------------------------------

/// One simulated fault schedule: topology, traffic volume, and fault mix,
/// all derived from a seed.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The schedule seed (also the fault seed).
    pub seed: u64,
    /// Concurrent clients.
    pub clients: usize,
    /// Logical requests per client.
    pub requests_per_client: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Admission-queue capacity.
    pub queue_capacity: usize,
    /// The fault mix.
    pub fault: FaultConfig,
    /// When set, a drain fires this many milliseconds into the schedule,
    /// racing the in-flight requests.
    pub shutdown_after_ms: Option<u64>,
}

impl SimConfig {
    /// The canonical schedule for `seed`: small randomized topology and a
    /// randomized fault mix. Every 8th seed is a fault-free control
    /// schedule (all probabilities zero, no shutdown race), so the suite
    /// continuously re-proves the baseline too.
    pub fn for_seed(seed: u64) -> SimConfig {
        let mut rng = SplitMix64::new(seed.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(1));
        let quiet = seed.is_multiple_of(8);
        let fault = if quiet {
            FaultConfig::quiet(seed)
        } else {
            FaultConfig {
                seed,
                torn_write_pct: rng.below(13) as u8,
                chunked_write_pct: rng.below(16) as u8,
                drop_before_read_pct: rng.below(11) as u8,
                drop_mid_read_pct: rng.below(9) as u8,
                panic_pct: rng.below(11) as u8,
                delay_pct: rng.below(16) as u8,
                max_delay_ms: 1 + rng.below(2),
                shutdown_race_pct: 0,
            }
        };
        let shutdown_after_ms = if !quiet && rng.chance(25) {
            Some(2 + rng.below(20))
        } else {
            None
        };
        SimConfig {
            seed,
            clients: 2 + rng.below(3) as usize,
            requests_per_client: 3 + rng.below(5) as usize,
            workers: 1 + rng.below(3) as usize,
            queue_capacity: 1 + rng.below(4) as usize,
            fault,
            shutdown_after_ms,
        }
    }
}

/// The outcome of one schedule.
#[derive(Debug, Default)]
pub struct SimReport {
    /// The schedule seed.
    pub seed: u64,
    /// Logical requests issued across all clients.
    pub requests: u64,
    /// Requests answered `ok`.
    pub ok: u64,
    /// Responses served from the idempotency cache.
    pub deduplicated: u64,
    /// Requests refused with `shutting_down` (drain races).
    pub rejected: u64,
    /// Requests whose retry budget ran out with no response.
    pub unresolved: u64,
    /// Handler panics injected and caught server-side.
    pub panics_caught: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Client-side transport faults injected: `(torn, chunked, dropped)`.
    pub transport_faults: (u64, u64, u64),
    /// Invariant violations (empty = the schedule passed).
    pub violations: Vec<String>,
}

/// What one client recorded about one logical request.
#[allow(clippy::large_enum_variant)] // harness-internal; almost always Answered
enum Outcome {
    /// A response arrived (possibly `ok: false`).
    Answered(Response),
    /// The retry budget ran out with no response.
    Unresolved,
}

/// The snaked/plain lattice paths of the 2×2-level toy grid.
const TOY_PATH_DIMS: [[usize; 4]; 6] = [
    [0, 1, 0, 1],
    [1, 0, 1, 0],
    [0, 0, 1, 1],
    [1, 1, 0, 0],
    [0, 1, 1, 0],
    [1, 0, 0, 1],
];

/// A deterministic irregular workload, distinct per `salt`.
fn salted_workload(shape: &LatticeShape, salt: u64) -> Workload {
    let n = shape.num_classes();
    Workload::from_weights(
        shape.clone(),
        (0..n)
            .map(|r| 1.0 + ((r as u64 * (salt + 2) + salt) % 11) as f64 * 0.17)
            .collect(),
    )
    .expect("positive weights")
}

/// Runs one schedule end to end against the sharded nonblocking core and
/// verifies the three harness invariants. An empty `violations` list
/// means the schedule passed.
pub fn run_schedule(config: &SimConfig) -> SimReport {
    run_schedule_kind(config, SimCoreKind::Sharded)
}

/// [`run_schedule`] against an explicit core kind — the same schedules
/// drive the blocking oracle, keeping both cores honest against the same
/// invariants.
pub fn run_schedule_kind(config: &SimConfig, kind: SimCoreKind) -> SimReport {
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let server = SimServer::start_kind(
        kind,
        config.workers,
        config.queue_capacity,
        config.fault.clone(),
    );
    let violations: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let note = |msg: String| {
        violations
            .lock()
            .expect("violations lock")
            .push(format!("seed {}: {}", config.seed, msg));
    };
    // Per client: (workload, per-request log). Indexed by client id.
    let mut logs: Vec<(Workload, Vec<(Request, Outcome)>)> = Vec::new();
    let mut fault_totals = (0u64, 0u64, 0u64);
    let mut deduplicated = 0u64;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for i in 0..config.clients {
            let server = Arc::clone(&server);
            let schema = &schema;
            let shape = &shape;
            let note = &note;
            let fault = config.fault.clone();
            handles.push(
                scope.spawn(move || client_script(config, i, server, schema, shape, fault, note)),
            );
        }
        // An explicit shutdown time wins; otherwise the fault plan's
        // `shutdown_race_pct` rolls one deterministically.
        let shutdown_after_ms = config.shutdown_after_ms.or_else(|| {
            let mut rng = SplitMix64::new(config.seed ^ 0x053D_011C_EBAD_C0DE);
            (config.fault.shutdown_race_pct > 0 && rng.chance(config.fault.shutdown_race_pct))
                .then(|| 2 + rng.below(20))
        });
        if let Some(ms) = shutdown_after_ms {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                std::thread::sleep(Duration::from_millis(ms));
                server.shutdown();
            });
        }
        for handle in handles {
            let (workload, log, counts, dedup) = handle.join().expect("client thread");
            fault_totals.0 += counts.0;
            fault_totals.1 += counts.1;
            fault_totals.2 += counts.2;
            deduplicated += dedup;
            logs.push((workload, log));
        }
    });
    // Full drain: every admitted job finishes before verification reads
    // the final state.
    server.join();
    let engine = Arc::clone(server.engine());
    // Invariant 3: per-session state equivalence against a fault-free
    // replay of exactly the committed deltas, in order; and invariant 2
    // for every drift response body, resolved through the idempotency
    // cache for responses lost in transit.
    // Invariant 1, server side: after a full drain, every admitted job
    // was finished by a worker. A gap means the drain dropped work.
    let admitted = engine
        .registry
        .admitted
        .load(std::sync::atomic::Ordering::Relaxed);
    let finished = engine
        .registry
        .jobs_finished
        .load(std::sync::atomic::Ordering::Relaxed);
    if admitted != finished {
        note(format!(
            "{admitted} requests were admitted but only {finished} finished — the drain \
             dropped admitted work"
        ));
    }
    for (i, (workload, log)) in logs.iter().enumerate() {
        verify_drift_replay(config, i, &schema, workload, log, &engine, &note);
    }
    let stats = engine.stats_body();
    let mut report = SimReport {
        seed: config.seed,
        transport_faults: fault_totals,
        deduplicated,
        panics_caught: stats.panics_caught,
        shed: stats.endpoints.iter().map(|e| e.shed).sum(),
        ..SimReport::default()
    };
    for (_, log) in &logs {
        for (_, outcome) in log {
            report.requests += 1;
            match outcome {
                Outcome::Answered(resp) if resp.ok => report.ok += 1,
                Outcome::Answered(resp) => {
                    if resp
                        .error
                        .as_ref()
                        .is_some_and(|e| e.code == "shutting_down")
                    {
                        report.rejected += 1;
                    }
                }
                Outcome::Unresolved => report.unresolved += 1,
            }
        }
    }
    report.violations = violations.into_inner().expect("violations lock");
    report
}

/// One client's record: its workload, request log, transport-fault
/// counts `(torn, chunked, dropped)`, and deduplicated-reply count.
type ClientLog = (Workload, Vec<(Request, Outcome)>, (u64, u64, u64), u64);

/// One simulated client: issues a deterministic mix of requests through a
/// retrying idempotent client, verifying `recommend`/`price` bit-identity
/// inline. Returns its workload, log, transport-fault counts, and
/// deduplicated-reply count.
fn client_script(
    config: &SimConfig,
    i: usize,
    server: Arc<SimServer>,
    schema: &StarSchema,
    shape: &LatticeShape,
    fault: FaultConfig,
    note: &dyn Fn(String),
) -> ClientLog {
    let seed = config.seed;
    let mut rng = SplitMix64::new(seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let workload = salted_workload(shape, seed ^ (i as u64));
    let dialer = SimDialer::new(server, fault, i as u64 + 1);
    let counters = dialer.counters();
    let policy = RetryPolicy {
        // Generous budget: with per-occurrence fault re-rolls, a logical
        // request is effectively always resolved unless a drain stops it,
        // which keeps per-session commit order equal to issue order.
        max_attempts: 25,
        base_backoff_ms: 1,
        max_backoff_ms: 4,
        jitter_seed: seed ^ ((i as u64 + 1) << 17),
    };
    let mut client = RetryingClient::new(dialer, policy, &format!("s{seed}-c{i}"));
    let session = format!("s{seed}-c{i}");
    let mut log: Vec<(Request, Outcome)> = Vec::new();
    let n = shape.num_classes();
    for j in 0..config.requests_per_client {
        let spec_schema = SchemaSpec::of(schema);
        let spec_workload = WorkloadSpec::of(&workload);
        let kind = rng.below(100);
        let mut req = if kind < 25 {
            Request::recommend(spec_schema, spec_workload)
        } else if kind < 55 {
            let dims = TOY_PATH_DIMS[rng.below(TOY_PATH_DIMS.len() as u64) as usize].to_vec();
            let strategy = if rng.chance(70) {
                StrategySpec::snaked_path(dims)
            } else {
                StrategySpec::plain_path(dims)
            };
            Request::price(spec_schema, spec_workload, strategy)
        } else if kind < 90 {
            // Distinct ranks: a delta listing the same class twice is a
            // (correctly rejected) bad request, and the harness only
            // sends valid traffic.
            let mut ranks: Vec<usize> = Vec::new();
            for _ in 0..1 + rng.below(2) {
                let rank = rng.below(n as u64) as usize;
                if !ranks.contains(&rank) {
                    ranks.push(rank);
                }
            }
            let updates = ranks
                .into_iter()
                .map(|rank| WeightUpdate {
                    rank,
                    weight: 0.1 + rng.below(90) as f64 / 100.0,
                })
                .collect();
            let mut req = Request::drift(&session, vec![DeltaSpec { updates }]);
            // Schema + workload on every drift request: any of them can
            // create the session if an earlier one was lost to a fault.
            req.schema = Some(spec_schema);
            req.workload = Some(spec_workload);
            req
        } else if kind < 95 {
            Request::new("ping")
        } else {
            Request::new("stats")
        };
        if matches!(req.endpoint.as_str(), "recommend" | "price" | "drift") {
            req = req.with_idempotency_key(format!("s{seed}-c{i}-r{j}"));
        }
        if rng.chance(15) {
            req.deadline_ms = Some(40 + rng.below(60));
        }
        let outcome = match client.call(req.clone()) {
            Ok(resp) => Outcome::Answered(resp),
            Err(_) => Outcome::Unresolved,
        };
        let stop = match &outcome {
            Outcome::Answered(resp) if resp.ok => {
                verify_read_response(&req, resp, schema, &workload, note);
                false
            }
            Outcome::Answered(resp) => {
                let code = resp
                    .error
                    .as_ref()
                    .map_or("<missing error body>", |e| e.code.as_str());
                match code {
                    "shutting_down" => true,
                    other => {
                        // Retryable codes are consumed by the retry loop;
                        // the harness never sends an invalid request.
                        let detail = resp
                            .error
                            .as_ref()
                            .map_or(String::new(), |e| format!(": {}", e.message));
                        note(format!(
                            "client {i} request {j} ({}) got unexpected terminal error \
                             `{other}`{detail}",
                            req.endpoint
                        ));
                        false
                    }
                }
            }
            Outcome::Unresolved => false,
        };
        log.push((req, outcome));
        if stop {
            break;
        }
    }
    let counts = counters.lock().expect("faults lock").counts();
    let dedup = client.stats().deduplicated;
    (workload, log, counts, dedup)
}

/// Invariant 2 for read-only endpoints: a successful `recommend`/`price`
/// answer must be bit-identical to the direct library call.
fn verify_read_response(
    req: &Request,
    resp: &Response,
    schema: &StarSchema,
    workload: &Workload,
    note: &dyn Fn(String),
) {
    match req.endpoint.as_str() {
        "recommend" => {
            let Some(body) = &resp.recommendation else {
                note("ok recommend response without a body".into());
                return;
            };
            let direct = snakes_core::advisor::recommend(schema, workload);
            if body.path_dims != direct.optimal_path.dims()
                || body.expected_cost_plain.to_bits() != direct.plain_cost.to_bits()
                || body.expected_cost_snaked.to_bits() != direct.snaked_cost.to_bits()
            {
                note(format!(
                    "recommend diverged from direct call (id {})",
                    resp.id
                ));
            }
        }
        "price" => {
            let Some(body) = &resp.price else {
                note("ok price response without a body".into());
                return;
            };
            let strategy = req.strategy_spec().expect("price carries strategy");
            let dims = strategy.dims.clone().expect("harness prices paths");
            let path =
                LatticePath::from_dims(LatticeShape::of_schema(schema), dims).expect("valid path");
            let direct = if strategy.snaked {
                aggregate_class_costs(schema, &snaked_path_curve(schema, &path))
                    .expected_cost(workload)
            } else {
                aggregate_class_costs(schema, &path_curve(schema, &path)).expected_cost(workload)
            };
            if body.expected_cost.to_bits() != direct.to_bits() {
                note(format!(
                    "price diverged from direct call: {} vs {} (id {})",
                    body.expected_cost, direct, resp.id
                ));
            }
        }
        _ => {}
    }
}

/// Invariants 2 + 3 for `drift`: resolve each request's commit status
/// through the idempotency cache, then replay exactly the committed
/// deltas fault-free and demand bit-identical bodies and final state.
fn verify_drift_replay(
    config: &SimConfig,
    i: usize,
    schema: &StarSchema,
    workload: &Workload,
    log: &[(Request, Outcome)],
    engine: &Engine,
    note: &dyn Fn(String),
) {
    let session = format!("s{}-c{i}", config.seed);
    let mut expected = VersionedWorkload::new(workload.clone());
    let mut dp = IncrementalDp::new(CostModel::of_schema(schema));
    let mut any_committed = false;
    for (j, (req, outcome)) in log.iter().enumerate() {
        if req.endpoint != "drift" {
            continue;
        }
        let key = req.idempotency_key.as_deref().expect("drift is keyed");
        // The idempotency cache is the commit log: a drift mutated its
        // session if and only if an authoritative ok response is stored.
        let stored = engine.idempotent_replay(key).filter(|r| r.ok);
        let effective = match outcome {
            Outcome::Answered(resp) if resp.ok => {
                if stored.is_none() {
                    note(format!(
                        "client {i} drift {j}: acknowledged ok response missing from the \
                         idempotency cache"
                    ));
                    Some(resp.clone())
                } else {
                    Some(resp.clone())
                }
            }
            _ => stored,
        };
        let Some(resp) = effective else { continue };
        any_committed = true;
        let Some(body) = &resp.drift else {
            note(format!("client {i} drift {j}: ok response without a body"));
            continue;
        };
        let mut drift_tv = 0.0;
        let mut failed = false;
        for delta in req.deltas.as_deref().unwrap_or(&[]) {
            let delta = WorkloadDelta::new(delta.updates.clone()).expect("harness delta valid");
            match expected.apply(&delta) {
                Ok(tv) => drift_tv += tv,
                Err(e) => {
                    note(format!("client {i} drift {j}: replay rejected delta: {e}"));
                    failed = true;
                }
            }
        }
        if failed {
            continue;
        }
        let direct = dp.reoptimize(&expected.workload().clone());
        if body.version != expected.version() {
            note(format!(
                "client {i} drift {j}: version {} but fault-free replay says {} — a delta \
                 applied more or less than exactly once",
                body.version,
                expected.version()
            ));
        }
        if body.drift_tv.to_bits() != drift_tv.to_bits()
            || body.cost.to_bits() != direct.cost.to_bits()
            || body.path_dims != direct.path.dims()
            || body.reused != direct.reused
            || body.shift_bound.to_bits() != direct.shift_bound.to_bits()
            || body.gap.to_bits() != direct.gap.to_bits()
        {
            note(format!(
                "client {i} drift {j}: response body diverged from fault-free replay"
            ));
        }
    }
    // Final state equivalence.
    match engine.session_state(&session) {
        Some((version, probs)) => {
            if version != expected.version() {
                note(format!(
                    "session {session}: final version {version} != replay {}",
                    expected.version()
                ));
            }
            let replayed = expected.workload().probs();
            if probs.len() != replayed.len()
                || probs
                    .iter()
                    .zip(replayed)
                    .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                note(format!(
                    "session {session}: final distribution differs from fault-free replay"
                ));
            }
        }
        None => {
            if any_committed {
                note(format!(
                    "session {session}: committed deltas but the session does not exist"
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_schedule_is_all_ok() {
        let config = SimConfig {
            seed: 8, // multiple of 8 → control schedule
            clients: 3,
            requests_per_client: 4,
            workers: 2,
            queue_capacity: 4,
            fault: FaultConfig::quiet(8),
            shutdown_after_ms: None,
        };
        let report = run_schedule(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert_eq!(report.ok, report.requests);
        assert_eq!(report.unresolved, 0);
        assert_eq!(report.panics_caught, 0);
        assert_eq!(report.transport_faults, (0, 0, 0));
    }

    #[test]
    fn chaotic_schedule_holds_the_invariants() {
        let mut saw_faults = false;
        for seed in [3u64, 5, 9] {
            let config = SimConfig::for_seed(seed);
            let report = run_schedule(&config);
            assert!(report.violations.is_empty(), "{:?}", report.violations);
            let (torn, chunked, dropped) = report.transport_faults;
            if torn + chunked + dropped + report.panics_caught > 0 {
                saw_faults = true;
            }
        }
        assert!(saw_faults, "three chaotic seeds must inject something");
    }

    #[test]
    fn shutdown_race_never_loses_admitted_work() {
        let mut config = SimConfig::for_seed(11);
        config.shutdown_after_ms = Some(1);
        let report = run_schedule(&config);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
    }

    #[test]
    fn blocking_oracle_still_holds_the_invariants() {
        // The conformance oracle stays under test with the same
        // schedules the sharded core runs.
        for seed in [3u64, 8] {
            let config = SimConfig::for_seed(seed);
            let report = run_schedule_kind(&config, SimCoreKind::Blocking);
            assert!(report.violations.is_empty(), "{:?}", report.violations);
        }
    }
}
