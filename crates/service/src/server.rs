//! The TCP front end and the blocking conformance core.
//!
//! [`Server::spawn`] serves TCP through the nonblocking sharded core
//! ([`crate::shard`]): an acceptor thread round-robins connections across
//! per-core event-loop shards. The blocking [`Core`] in this module — a
//! bounded admission queue, a fixed worker pool, and thread-per-connection
//! serving — predates it and stays as the conformance oracle: the sharded
//! core must match its admission, deadline, shedding, drain, idempotency,
//! and durability semantics exactly.
//!
//! Production posture over raw throughput:
//!
//! * **Load shedding** — admission is `try_push` against a bounded queue;
//!   when full the request is rejected immediately with `overloaded` and a
//!   `retry_after_ms` hint instead of stalling the connection.
//! * **Deadlines** — `deadline_ms` starts ticking at admission; expired
//!   jobs are failed at dequeue without touching the engine, and handlers
//!   re-check cooperatively at stage boundaries.
//! * **Graceful drain** — `shutdown` (the endpoint, or SIGTERM in
//!   [`serve_forever`]) stops admission, then the workers finish every
//!   already-admitted job before exiting, so no in-flight response is
//!   lost.

use crate::engine::{Deadline, Engine};
use crate::error::ServiceError;
use crate::fault::{silence_injected_panics, FaultConfig, FaultPlan, InjectedPanic};
use crate::metrics::Endpoint;
use crate::protocol::{Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};
use std::collections::VecDeque;
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Hard cap on one request line. A frame beyond it is discarded up to its
/// newline and answered with an in-band protocol error, so a hostile or
/// broken client cannot grow server memory without bound.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per core.
    pub workers: usize,
    /// Event-loop shards for the nonblocking core; 0 falls back to
    /// `workers` (and then to one per core). Each shard owns a partition
    /// of connections and drift-session stripes.
    pub shards: usize,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Backoff hint attached to shed responses.
    pub retry_after_ms: u64,
    /// Deterministic fault injection for chaos runs
    /// (`snakes serve --fault-plan`); `None` in production.
    pub fault: Option<FaultConfig>,
    /// Durable data directory (`snakes serve --data-dir`). When set, the
    /// engine recovers drift sessions and idempotent responses from it at
    /// startup and write-ahead-logs every commit; `None` runs in-memory.
    pub data_dir: Option<std::path::PathBuf>,
    /// Autonomous reclustering (`snakes serve --auto-recluster`): when
    /// set, drift commits run the advisor's cost/benefit trigger and a
    /// sustained, amortizable layout gap starts a migration by itself.
    /// `None` leaves reclustering to explicit `recluster` requests.
    pub auto_recluster: Option<crate::engine::AutoRecluster>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            shards: 0,
            queue_capacity: 128,
            retry_after_ms: 50,
            fault: None,
            data_dir: None,
            auto_recluster: None,
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    endpoint: Endpoint,
    admitted: Instant,
    deadline: Deadline,
    reply: mpsc::Sender<Response>,
}

/// Why a job was refused at admission.
enum Refused {
    /// Queue at capacity.
    Full,
    /// The server is draining.
    Closed,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue. parking_lot has no condvar in this
/// workspace's vendored build, so the queue uses `std` primitives.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job` unless the queue is full or closed. Never blocks —
    /// this is the load-shedding point.
    fn try_push(&self, job: Job) -> Result<(), Refused> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(Refused::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Refused::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// The next job, blocking while the queue is open and empty. `None`
    /// once the queue is closed *and* drained — workers therefore finish
    /// every admitted job before exiting.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Stops admission; queued jobs still drain.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }

    /// Drops every job still queued, disconnecting their reply channels
    /// so blocked dispatchers answer in-band instead of hanging. With
    /// correctly draining workers this is a no-op; it is the backstop
    /// that turns a lost-job bug into a visible error.
    fn purge(&self) -> usize {
        let jobs: Vec<Job> = self
            .state
            .lock()
            .expect("queue lock")
            .jobs
            .drain(..)
            .collect();
        jobs.len()
    }
}

/// The transport-independent heart of a server: the engine, the admission
/// queue, and the drain flag. [`Server`] runs a `Core` behind a TCP
/// acceptor; the simulation harness ([`crate::sim`]) runs the same `Core`
/// behind in-memory pipes, so every admission, deadline, drain, and
/// panic-containment path under test is the production path.
#[derive(Clone)]
pub struct Core {
    engine: Arc<Engine>,
    queue: Arc<AdmissionQueue>,
    draining: Arc<AtomicBool>,
    retry_after_ms: u64,
}

impl Core {
    /// Spawns `workers` worker threads against a fresh admission queue and
    /// returns the core plus the worker handles (join them after
    /// [`Core::shutdown`] to complete a drain).
    pub fn start(
        engine: Engine,
        workers: usize,
        queue_capacity: usize,
        retry_after_ms: u64,
    ) -> (Core, Vec<std::thread::JoinHandle<()>>) {
        let engine = Arc::new(engine);
        let queue = Arc::new(AdmissionQueue::new(queue_capacity));
        let mut threads = Vec::with_capacity(workers);
        for i in 0..workers {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("snakes-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &queue))
                    .expect("spawn worker"),
            );
        }
        let core = Core {
            engine,
            queue,
            draining: Arc::new(AtomicBool::new(false)),
            retry_after_ms,
        };
        (core, threads)
    }

    /// The shared engine (caches, sessions, metrics).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: admission stops, queued work finishes.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Drops any jobs still queued **after the workers have exited**.
    /// Normally a no-op (workers drain the queue before exiting); if a
    /// drain bug ever strands a job, this unblocks its dispatcher with an
    /// in-band `request dropped during drain` error instead of a hang,
    /// and the admitted/finished counters record the loss. Returns the
    /// number of stranded jobs.
    pub fn purge_queue(&self) -> usize {
        let stranded = self.queue.purge();
        self.engine
            .registry
            .queue_depth
            .fetch_sub(stranded as u64, Ordering::Relaxed);
        stranded
    }

    /// Serves one connection until end-of-stream, i/o error, or the first
    /// idle poll after a drain begins. Works over any buffered byte
    /// stream whose reads surface `WouldBlock`/`TimedOut` periodically
    /// (a TCP stream with a read timeout, or a sim pipe).
    pub fn serve_connection<R: BufRead, W: Write>(&self, reader: &mut R, writer: &mut W) {
        let mut buf = Vec::new();
        loop {
            buf.clear();
            match read_frame(reader, &mut buf, &self.draining) {
                Ok(LineOutcome::Eof) | Err(_) => return,
                Ok(LineOutcome::TooLong) => {
                    let body =
                        ServiceError::BadRequest(format!("line exceeds {MAX_LINE_BYTES} bytes"))
                            .to_body();
                    if write_response(writer, &Response::err(0, body)).is_err() {
                        return;
                    }
                    continue;
                }
                Ok(LineOutcome::Line) => {}
            }
            let text = match std::str::from_utf8(&buf) {
                Ok(t) => t.trim(),
                Err(_) => {
                    let body =
                        ServiceError::BadRequest("frame is not valid UTF-8".into()).to_body();
                    if write_response(writer, &Response::err(0, body)).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if text.is_empty() {
                continue;
            }
            let request = match Request::parse(text) {
                Ok(r) => r,
                Err(e) => {
                    let body =
                        ServiceError::BadRequest(format!("malformed request: {e}")).to_body();
                    if write_response(writer, &Response::err(0, body)).is_err() {
                        return;
                    }
                    continue;
                }
            };
            let response = self.dispatch(&request);
            if write_response(writer, &response).is_err() {
                return;
            }
        }
    }

    /// Admission and synchronous wait for one parsed request. The
    /// `shutdown` endpoint is handled here — it must work even when the
    /// queue is full. Every answer is projected into the request's
    /// protocol dialect ([`Response::for_version`]).
    pub fn dispatch(&self, request: &Request) -> Response {
        self.dispatch_inner(request).for_version(request.v)
    }

    fn dispatch_inner(&self, request: &Request) -> Response {
        if !(MIN_PROTOCOL_VERSION..=PROTOCOL_VERSION).contains(&request.v) {
            return Response::err(
                request.id,
                ServiceError::BadRequest(format!(
                    "unsupported protocol version {} (this server speaks \
                     {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION})",
                    request.v
                ))
                .to_body(),
            );
        }
        let endpoint = Endpoint::of(&request.endpoint);
        if endpoint == Endpoint::Shutdown {
            self.shutdown();
            self.engine
                .registry
                .record_completion(endpoint, Duration::ZERO, true);
            return Response::ok(request.id);
        }
        let admitted = Instant::now();
        let deadline = Deadline::from_ms(admitted, request.deadline_ms);
        let (reply, inbox) = mpsc::channel();
        let job = Job {
            request: request.clone(),
            endpoint,
            admitted,
            deadline,
            reply,
        };
        // Count the job before pushing: the worker decrements at dequeue,
        // and it can pop the job before this thread resumes — counting
        // after a successful push underflowed the gauge in that window.
        let depth = &self.engine.registry.queue_depth;
        depth.fetch_add(1, Ordering::Relaxed);
        match self.queue.try_push(job) {
            Ok(()) => {
                self.engine
                    .registry
                    .admitted
                    .fetch_add(1, Ordering::Relaxed);
                match inbox.recv() {
                    Ok(response) => response,
                    // The job was dropped without a reply: report in-band,
                    // don't hang. With draining workers this is unreachable
                    // (the queue drains fully and panics are caught), but a
                    // response is owed no matter what.
                    Err(_) => Response::err(
                        request.id,
                        ServiceError::Protocol("request dropped during drain".into()).to_body(),
                    ),
                }
            }
            Err(refused) => {
                depth.fetch_sub(1, Ordering::Relaxed);
                match refused {
                    Refused::Full => {
                        self.engine.registry.record_shed(endpoint);
                        // Scale the hint with the measured drain rate; the
                        // configured value is only the cold-start fallback.
                        let retry_after_ms = self
                            .engine
                            .registry
                            .suggested_retry_after_ms(self.retry_after_ms);
                        Response::err(
                            request.id,
                            ServiceError::Overloaded { retry_after_ms }.to_body(),
                        )
                    }
                    Refused::Closed => {
                        Response::err(request.id, ServiceError::ShuttingDown.to_body())
                    }
                }
            }
        }
    }
}

/// A running server: its bound address, the sharded nonblocking core, and
/// the shard + acceptor threads.
pub struct Server {
    addr: SocketAddr,
    core: Arc<crate::shard::ShardedCore>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the shard event loops and the acceptor, and returns
    /// immediately. Requests are served by the nonblocking sharded core
    /// ([`crate::shard::ShardedCore`]); the blocking [`Core`] remains
    /// available as the conformance oracle.
    ///
    /// # Errors
    ///
    /// Propagates bind and reactor-construction failures.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let shards = if config.shards > 0 {
            config.shards
        } else if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // Stripe the session registry exactly as the shards partition it:
        // stripe `i` is owned (exclusively, for the request path) by
        // shard `i`.
        let mut engine = Engine::with_limits(shards, config.queue_capacity);
        if let Some(fault) = config.fault.clone() {
            silence_injected_panics();
            engine = engine.with_fault(FaultPlan::new(fault));
        }
        if let Some(dir) = config.data_dir.clone() {
            engine = engine.with_durability(crate::durability::Media::Dir(dir))?;
        }
        if let Some(auto) = config.auto_recluster.clone() {
            engine = engine.with_auto_recluster(auto);
        }
        let sharded = crate::shard::ShardedConfig {
            shards,
            queue_capacity: config.queue_capacity,
            retry_after_ms: config.retry_after_ms,
        };
        let (core, mut threads) = crate::shard::ShardedCore::start(engine, &sharded, |_| {
            Ok(Box::new(crate::reactor::EpollReactor::new()?))
        })?;
        {
            let core = Arc::clone(&core);
            threads.push(
                std::thread::Builder::new()
                    .name("snakes-acceptor".into())
                    .spawn(move || sharded_accept_loop(&listener, &core))
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server {
            addr,
            core,
            threads,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (caches, sessions, metrics).
    pub fn engine(&self) -> &Arc<Engine> {
        self.core.engine()
    }

    /// Whether a drain has been requested (via [`Server::shutdown`], the
    /// `shutdown` endpoint, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.core.draining()
    }

    /// Begins a graceful drain: admission stops, admitted work finishes.
    pub fn shutdown(&self) {
        self.core.shutdown();
    }

    /// Drains and waits for every shard and the acceptor to exit.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// The fallback client backoff attached to shed responses (the live
    /// hint scales with the measured drain rate).
    pub fn retry_after_ms(&self) -> u64 {
        self.core.retry_after_ms()
    }
}

/// Accepts connections and hands each to the sharded core (round-robin
/// across shards). Exits once a drain begins.
fn sharded_accept_loop(listener: &TcpListener, core: &Arc<crate::shard::ShardedCore>) {
    loop {
        if core.draining() {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if let Ok(stream) = crate::reactor::TcpShardStream::new(stream) {
                    core.add_connection(Box::new(stream));
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// The human-facing description of a caught worker panic.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if payload.downcast_ref::<InjectedPanic>().is_some() {
        "injected fault".into()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).into()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".into()
    }
}

fn worker_loop(engine: &Engine, queue: &AdmissionQueue) {
    while let Some(job) = queue.pop() {
        engine.registry.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let response = if job.deadline.expired() {
            // Expired while queued: fail without touching the engine.
            Response::err(job.request.id, ServiceError::DeadlineExceeded.to_body())
        } else {
            // Contain handler panics: the worker survives, keeps its queue
            // slot, and the client gets an in-band `internal` error. The
            // engine guards its own state for unwind safety (parking_lot
            // locks release on unwind; mutations are clone-then-commit).
            let started = Instant::now();
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                engine.handle(&job.request, &job.deadline)
            }));
            // Feed the drain-rate estimator that prices retry hints.
            engine.registry.record_service_time(started.elapsed());
            match result {
                Ok(response) => response,
                Err(payload) => {
                    engine.registry.record_panic_caught();
                    Response::err(
                        job.request.id,
                        ServiceError::HandlerPanic(panic_message(payload.as_ref())).to_body(),
                    )
                }
            }
        };
        if response
            .error
            .as_ref()
            .is_some_and(|e| e.code == "deadline_exceeded")
        {
            engine.registry.record_deadline(job.endpoint);
        }
        engine
            .registry
            .record_completion(job.endpoint, job.admitted.elapsed(), response.ok);
        // The connection may already be gone; dropping the reply is fine.
        let _ = job.reply.send(response);
        engine
            .registry
            .jobs_finished
            .fetch_add(1, Ordering::Relaxed);
        // The blocking oracle has no event-loop tick, so migrations ride
        // the request stream: one bounded chunk after each handled job.
        if engine.tick_reclusters(0, 1) > 0 {
            let _ = engine.flush_wal();
        }
    }
}

/// What [`read_frame`] produced.
enum LineOutcome {
    /// A complete line (newline included) is in the buffer.
    Line,
    /// The line exceeded [`MAX_LINE_BYTES`]; it was discarded through its
    /// newline and the buffer is empty.
    TooLong,
    /// End-of-stream, or drain with no partial line pending.
    Eof,
}

/// Reads one newline-terminated frame into `buf`, tolerating the periodic
/// `WouldBlock`/`TimedOut` errors used to poll the drain flag. Partial
/// frames accumulate across polls so a slow writer is never corrupted;
/// frames beyond [`MAX_LINE_BYTES`] are discarded through their newline.
fn read_frame<R: BufRead>(
    reader: &mut R,
    buf: &mut Vec<u8>,
    draining: &AtomicBool,
) -> std::io::Result<LineOutcome> {
    let mut discarding = false;
    loop {
        let chunk = match reader.fill_buf() {
            Ok([]) => return Ok(LineOutcome::Eof),
            Ok(chunk) => chunk,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if draining.load(Ordering::SeqCst) && buf.is_empty() && !discarding {
                    return Ok(LineOutcome::Eof);
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        let (consume, complete) = match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => (i + 1, true),
            None => (chunk.len(), false),
        };
        if !discarding {
            buf.extend_from_slice(&chunk[..consume]);
            if buf.len() > MAX_LINE_BYTES {
                discarding = true;
                buf.clear();
            }
        }
        reader.consume(consume);
        if complete {
            return Ok(if discarding {
                LineOutcome::TooLong
            } else {
                LineOutcome::Line
            });
        }
    }
}

fn write_response<W: Write>(writer: &mut W, response: &Response) -> std::io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to the drain flag.
    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub(super) fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub(super) fn install() {}
    pub(super) fn terminated() -> bool {
        false
    }
}

/// Runs a server until a `shutdown` request or SIGTERM/SIGINT arrives,
/// then drains and returns. With `metrics_every`, prints a one-line
/// metrics digest to stdout on that period. This is the body of
/// `snakes serve`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_forever(config: ServerConfig, metrics_every: Option<Duration>) -> std::io::Result<()> {
    sigterm::install();
    let server = Server::spawn(config)?;
    println!("listening on {}", server.local_addr());
    let mut last_tick = Instant::now();
    loop {
        if sigterm::terminated() || server.draining() {
            break;
        }
        if let Some(every) = metrics_every {
            if last_tick.elapsed() >= every {
                last_tick = Instant::now();
                println!("{}", metrics_digest(server.engine()));
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("draining");
    server.join();
    println!("stopped");
    Ok(())
}

/// A one-line human digest of the live metrics, used by the serve ticker.
pub fn metrics_digest(engine: &Engine) -> String {
    let stats = engine.stats_body();
    let mut parts = vec![format!(
        "up={}s queue={}/{} sessions={} sig-cache={}h/{}m memo={}h/{}m",
        stats.uptime_ms / 1000,
        stats.queue_depth,
        stats.queue_capacity,
        stats.sessions,
        stats.signature_cache.hits,
        stats.signature_cache.misses,
        stats.cost_memo.hits,
        stats.cost_memo.misses,
    )];
    for e in &stats.endpoints {
        if e.requests > 0 || e.shed > 0 {
            parts.push(format!(
                "{}: n={} err={} shed={} p50={}us p99={}us",
                e.endpoint, e.requests, e.errors, e.shed, e.p50_us, e.p99_us
            ));
        }
    }
    parts.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::{SchemaSpec, WorkloadSpec};
    use snakes_core::lattice::LatticeShape;
    use snakes_core::schema::StarSchema;
    use snakes_core::workload::Workload;
    use std::io::BufReader;
    use std::net::TcpStream;

    fn toy_request() -> Request {
        let schema = StarSchema::paper_toy();
        let workload = Workload::uniform(LatticeShape::of_schema(&schema));
        Request::recommend(SchemaSpec::of(&schema), WorkloadSpec::of(&workload))
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.call(toy_request()).unwrap();
        assert!(resp.ok, "{:?}", resp.error);
        assert!(resp.recommendation.is_some());
        let pong = client.call(Request::new("ping")).unwrap();
        assert!(pong.ok);
        server.join();
    }

    #[test]
    fn malformed_lines_get_in_band_errors() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"this is not json\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Response::parse(&line).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "bad_request");
        server.join();
    }

    #[test]
    fn shutdown_endpoint_drains() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let bye = client.call(Request::new("shutdown")).unwrap();
        assert!(bye.ok);
        let refused = client.call(toy_request()).unwrap();
        assert!(!refused.ok);
        assert_eq!(refused.error.unwrap().code, "shutting_down");
        server.join();
    }

    #[test]
    fn queued_deadline_zero_expires() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut req = toy_request();
        req.deadline_ms = Some(0);
        let resp = client.call(req).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "deadline_exceeded");
        server.join();
    }
}
