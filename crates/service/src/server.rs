//! The TCP front end: a bounded admission queue, a fixed worker pool, and
//! a connection-per-thread acceptor speaking the JSON-lines protocol.
//!
//! Production posture over raw throughput:
//!
//! * **Load shedding** — admission is `try_push` against a bounded queue;
//!   when full the request is rejected immediately with `overloaded` and a
//!   `retry_after_ms` hint instead of stalling the connection.
//! * **Deadlines** — `deadline_ms` starts ticking at admission; expired
//!   jobs are failed at dequeue without touching the engine, and handlers
//!   re-check cooperatively at stage boundaries.
//! * **Graceful drain** — `shutdown` (the endpoint, or SIGTERM in
//!   [`serve_forever`]) stops admission, then the workers finish every
//!   already-admitted job before exiting, so no in-flight response is
//!   lost.

use crate::engine::{Deadline, Engine};
use crate::error::ServiceError;
use crate::metrics::Endpoint;
use crate::protocol::{Request, Response};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads; 0 means one per core.
    pub workers: usize,
    /// Admission-queue capacity; requests beyond it are shed.
    pub queue_capacity: usize,
    /// Backoff hint attached to shed responses.
    pub retry_after_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 0,
            queue_capacity: 128,
            retry_after_ms: 50,
        }
    }
}

/// One admitted unit of work.
struct Job {
    request: Request,
    endpoint: Endpoint,
    admitted: Instant,
    deadline: Deadline,
    reply: mpsc::Sender<Response>,
}

/// Why a job was refused at admission.
enum Refused {
    /// Queue at capacity.
    Full,
    /// The server is draining.
    Closed,
}

struct QueueState {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The bounded admission queue. parking_lot has no condvar in this
/// workspace's vendored build, so the queue uses `std` primitives.
struct AdmissionQueue {
    state: Mutex<QueueState>,
    available: Condvar,
    capacity: usize,
}

impl AdmissionQueue {
    fn new(capacity: usize) -> Self {
        AdmissionQueue {
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job` unless the queue is full or closed. Never blocks —
    /// this is the load-shedding point.
    fn try_push(&self, job: Job) -> Result<(), Refused> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(Refused::Closed);
        }
        if state.jobs.len() >= self.capacity {
            return Err(Refused::Full);
        }
        state.jobs.push_back(job);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// The next job, blocking while the queue is open and empty. `None`
    /// once the queue is closed *and* drained — workers therefore finish
    /// every admitted job before exiting.
    fn pop(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.available.wait(state).expect("queue lock");
        }
    }

    /// Stops admission; queued jobs still drain.
    fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.available.notify_all();
    }
}

/// A running server: its bound address, shared engine, and thread pool.
pub struct Server {
    addr: SocketAddr,
    engine: Arc<Engine>,
    queue: Arc<AdmissionQueue>,
    draining: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    retry_after_ms: u64,
}

impl Server {
    /// Binds, spawns the worker pool and the acceptor, and returns
    /// immediately.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn spawn(config: ServerConfig) -> std::io::Result<Server> {
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let engine = Arc::new(Engine::with_limits(workers, config.queue_capacity));
        let queue = Arc::new(AdmissionQueue::new(config.queue_capacity));
        let draining = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("snakes-worker-{i}"))
                    .spawn(move || worker_loop(&engine, &queue))
                    .expect("spawn worker"),
            );
        }
        {
            let engine = Arc::clone(&engine);
            let queue = Arc::clone(&queue);
            let draining = Arc::clone(&draining);
            let retry_after_ms = config.retry_after_ms;
            threads.push(
                std::thread::Builder::new()
                    .name("snakes-acceptor".into())
                    .spawn(move || {
                        accept_loop(&listener, &engine, &queue, &draining, retry_after_ms);
                    })
                    .expect("spawn acceptor"),
            );
        }
        Ok(Server {
            addr,
            engine,
            queue,
            draining,
            threads,
            retry_after_ms: config.retry_after_ms,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared engine (caches, sessions, metrics).
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Whether a drain has been requested (via [`Server::shutdown`], the
    /// `shutdown` endpoint, or SIGTERM).
    pub fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Begins a graceful drain: admission stops, queued work finishes.
    pub fn shutdown(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.queue.close();
    }

    /// Drains and waits for every worker and the acceptor to exit.
    pub fn join(mut self) {
        self.shutdown();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }

    /// The suggested client backoff attached to shed responses.
    pub fn retry_after_ms(&self) -> u64 {
        self.retry_after_ms
    }
}

fn worker_loop(engine: &Engine, queue: &AdmissionQueue) {
    while let Some(job) = queue.pop() {
        engine.registry.queue_depth.fetch_sub(1, Ordering::Relaxed);
        let response = if job.deadline.expired() {
            // Expired while queued: fail without touching the engine.
            Response::err(job.request.id, ServiceError::DeadlineExceeded.to_body())
        } else {
            engine.handle(&job.request, &job.deadline)
        };
        if response
            .error
            .as_ref()
            .is_some_and(|e| e.code == "deadline_exceeded")
        {
            engine.registry.record_deadline(job.endpoint);
        }
        engine
            .registry
            .record_completion(job.endpoint, job.admitted.elapsed(), response.ok);
        // The connection may already be gone; dropping the reply is fine.
        let _ = job.reply.send(response);
    }
}

fn accept_loop(
    listener: &TcpListener,
    engine: &Arc<Engine>,
    queue: &Arc<AdmissionQueue>,
    draining: &Arc<AtomicBool>,
    retry_after_ms: u64,
) {
    loop {
        if draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let engine = Arc::clone(engine);
                let queue = Arc::clone(queue);
                let draining = Arc::clone(draining);
                // Connections are detached: they exit on peer close, i/o
                // error, or at the first idle poll after a drain begins.
                let _ = std::thread::Builder::new()
                    .name("snakes-conn".into())
                    .spawn(move || {
                        connection_loop(stream, &engine, &queue, &draining, retry_after_ms);
                    });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Reads one line, tolerating the read timeout used to poll the drain
/// flag. `line` accumulates across timeouts so a split line is never
/// dropped. `Ok(None)` means end-of-stream or drain.
fn read_line_polled(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    draining: &AtomicBool,
) -> std::io::Result<Option<()>> {
    loop {
        match reader.read_line(line) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(())),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if draining.load(Ordering::SeqCst) && line.is_empty() {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e),
        }
    }
}

fn connection_loop(
    stream: TcpStream,
    engine: &Arc<Engine>,
    queue: &Arc<AdmissionQueue>,
    draining: &Arc<AtomicBool>,
    retry_after_ms: u64,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        match read_line_polled(&mut reader, &mut line, draining) {
            Ok(Some(())) => {}
            Ok(None) | Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let request = match Request::parse(&line) {
            Ok(r) => r,
            Err(e) => {
                let body = ServiceError::BadRequest(format!("malformed request: {e}")).to_body();
                if write_response(&mut writer, &Response::err(0, body)).is_err() {
                    return;
                }
                continue;
            }
        };
        let response = dispatch(&request, engine, queue, draining, retry_after_ms);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
    }
}

/// Admission and synchronous wait for one parsed request. The `shutdown`
/// endpoint is handled here — it must work even when the queue is full.
fn dispatch(
    request: &Request,
    engine: &Arc<Engine>,
    queue: &Arc<AdmissionQueue>,
    draining: &Arc<AtomicBool>,
    retry_after_ms: u64,
) -> Response {
    let endpoint = Endpoint::of(&request.endpoint);
    if endpoint == Endpoint::Shutdown {
        draining.store(true, Ordering::SeqCst);
        queue.close();
        engine
            .registry
            .record_completion(endpoint, Duration::ZERO, true);
        return Response::ok(request.id);
    }
    let admitted = Instant::now();
    let deadline = Deadline::from_ms(admitted, request.deadline_ms);
    let (reply, inbox) = mpsc::channel();
    let job = Job {
        request: request.clone(),
        endpoint,
        admitted,
        deadline,
        reply,
    };
    match queue.try_push(job) {
        Ok(()) => {
            engine.registry.queue_depth.fetch_add(1, Ordering::Relaxed);
            match inbox.recv() {
                Ok(response) => response,
                // Worker died or the job was dropped: report, don't hang.
                Err(_) => Response::err(
                    request.id,
                    ServiceError::Protocol("request dropped during drain".into()).to_body(),
                ),
            }
        }
        Err(Refused::Full) => {
            engine.registry.record_shed(endpoint);
            Response::err(
                request.id,
                ServiceError::Overloaded { retry_after_ms }.to_body(),
            )
        }
        Err(Refused::Closed) => Response::err(request.id, ServiceError::ShuttingDown.to_body()),
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> std::io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())
}

#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub(super) static TERMINATED: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_term(_signum: i32) {
        TERMINATED.store(true, Ordering::SeqCst);
    }

    /// Routes SIGTERM and SIGINT to the drain flag.
    pub(super) fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGTERM, on_term);
            signal(SIGINT, on_term);
        }
    }

    pub(super) fn terminated() -> bool {
        TERMINATED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sigterm {
    pub(super) fn install() {}
    pub(super) fn terminated() -> bool {
        false
    }
}

/// Runs a server until a `shutdown` request or SIGTERM/SIGINT arrives,
/// then drains and returns. With `metrics_every`, prints a one-line
/// metrics digest to stdout on that period. This is the body of
/// `snakes serve`.
///
/// # Errors
///
/// Propagates the bind failure.
pub fn serve_forever(config: ServerConfig, metrics_every: Option<Duration>) -> std::io::Result<()> {
    sigterm::install();
    let server = Server::spawn(config)?;
    println!("listening on {}", server.local_addr());
    let mut last_tick = Instant::now();
    loop {
        if sigterm::terminated() || server.draining() {
            break;
        }
        if let Some(every) = metrics_every {
            if last_tick.elapsed() >= every {
                last_tick = Instant::now();
                println!("{}", metrics_digest(server.engine()));
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("draining");
    server.join();
    println!("stopped");
    Ok(())
}

/// A one-line human digest of the live metrics, used by the serve ticker.
pub fn metrics_digest(engine: &Engine) -> String {
    let stats = engine.stats_body();
    let mut parts = vec![format!(
        "up={}s queue={}/{} sessions={} sig-cache={}h/{}m memo={}h/{}m",
        stats.uptime_ms / 1000,
        stats.queue_depth,
        stats.queue_capacity,
        stats.sessions,
        stats.signature_cache.hits,
        stats.signature_cache.misses,
        stats.cost_memo.hits,
        stats.cost_memo.misses,
    )];
    for e in &stats.endpoints {
        if e.requests > 0 || e.shed > 0 {
            parts.push(format!(
                "{}: n={} err={} shed={} p50={}us p99={}us",
                e.endpoint, e.requests, e.errors, e.shed, e.p50_us, e.p99_us
            ));
        }
    }
    parts.join(" | ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::{SchemaSpec, WorkloadSpec};
    use snakes_core::lattice::LatticeShape;
    use snakes_core::schema::StarSchema;
    use snakes_core::workload::Workload;

    fn toy_request() -> Request {
        let schema = StarSchema::paper_toy();
        let workload = Workload::uniform(LatticeShape::of_schema(&schema));
        Request::recommend(SchemaSpec::of(&schema), WorkloadSpec::of(&workload))
    }

    #[test]
    fn round_trip_over_loopback() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let resp = client.call(toy_request()).unwrap();
        assert!(resp.ok, "{:?}", resp.error);
        assert!(resp.recommendation.is_some());
        let pong = client.call(Request::new("ping")).unwrap();
        assert!(pong.ok);
        server.join();
    }

    #[test]
    fn malformed_lines_get_in_band_errors() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let stream = TcpStream::connect(server.local_addr()).unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        writer.write_all(b"this is not json\n").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let resp = Response::parse(&line).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "bad_request");
        server.join();
    }

    #[test]
    fn shutdown_endpoint_drains() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let bye = client.call(Request::new("shutdown")).unwrap();
        assert!(bye.ok);
        let refused = client.call(toy_request()).unwrap();
        assert!(!refused.ok);
        assert_eq!(refused.error.unwrap().code, "shutting_down");
        server.join();
    }

    #[test]
    fn queued_deadline_zero_expires() {
        let server = Server::spawn(ServerConfig::default()).unwrap();
        let mut client = Client::connect(server.local_addr()).unwrap();
        let mut req = toy_request();
        req.deadline_ms = Some(0);
        let resp = client.call(req).unwrap();
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, "deadline_exceeded");
        server.join();
    }
}
