//! Durable advisor state: a write-ahead log plus a checkpoint blob.
//!
//! With a data directory configured (`snakes serve --data-dir`), the
//! engine logs every committed `drift` — and every idempotent response —
//! to a [`Wal`] *before* acknowledging it, and
//! periodically folds the log into a checkpoint written through the
//! storage crate's slotted-page blob format (so the buffer pool and
//! page layer are load-bearing for the daemon's own durability, not just
//! for measured tables). Recovery is checkpoint + WAL replay:
//!
//! 1. read the checkpoint blob, if any (checksummed; written to a temp
//!    file and atomically renamed, so it is never observed torn);
//! 2. open the WAL, which self-truncates to its last acknowledged,
//!    CRC-valid prefix;
//! 3. re-apply every logged entry with `lsn >= checkpoint.next_lsn`.
//!
//! Entries hold *after-state* snapshots (the full probability vector at
//! its post-delta version), so replay is idempotent and bit-exact: the
//! recovered distribution is `Workload::new` over the exact floats that
//! were acknowledged, never a re-derivation.
//!
//! Media is abstracted over [`Media`]: a real directory for production,
//! or a [`CrashStore`] so the crash
//! torture suite can kill the daemon at every single write boundary and
//! assert recovery.

use crate::protocol::{MeasureSpec, Response, SchemaSpec, StrategySpec};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use snakes_storage::crash::CrashStore;
use snakes_storage::page::{read_blob, write_blob, PageFile};
use snakes_storage::pool::BufferPool;
use snakes_storage::wal::{Backend, Wal};
use std::io::{self, Cursor, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "advisor.wal";
/// Checkpoint file name inside the data directory.
pub const CHECKPOINT_FILE: &str = "advisor.ckpt";
/// Scratch name the checkpoint is written under before the atomic rename.
const CHECKPOINT_TMP: &str = "advisor.ckpt.tmp";
/// Page size of the checkpoint blob.
const CHECKPOINT_PAGE_SIZE: u64 = 4096;
/// Frames in the throwaway pool used to read/write checkpoint blobs.
const CHECKPOINT_POOL_PAGES: usize = 8;
/// WAL appends between checkpoints.
pub(crate) const CHECKPOINT_EVERY: u64 = 64;

/// Where durable state lives.
pub enum Media {
    /// A real directory on disk (`--data-dir`).
    Dir(PathBuf),
    /// A deterministic in-memory store with seeded crash injection — the
    /// torture suite's disk.
    Store(Arc<CrashStore>),
}

impl std::fmt::Debug for Media {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Media::Dir(p) => f.debug_tuple("Dir").field(p).finish(),
            Media::Store(_) => f.debug_tuple("Store").finish_non_exhaustive(),
        }
    }
}

impl Media {
    /// Opens (creating if absent) the WAL backend.
    fn open_wal(&self) -> io::Result<Box<dyn Backend>> {
        match self {
            Media::Dir(dir) => {
                std::fs::create_dir_all(dir)?;
                let file = std::fs::OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(false)
                    .open(dir.join(WAL_FILE))?;
                Ok(Box::new(file))
            }
            Media::Store(store) => Ok(Box::new(store.open(WAL_FILE))),
        }
    }

    /// The raw checkpoint bytes, `None` when no checkpoint exists yet.
    fn read_checkpoint_bytes(&self) -> io::Result<Option<Vec<u8>>> {
        match self {
            Media::Dir(dir) => match std::fs::read(dir.join(CHECKPOINT_FILE)) {
                Ok(bytes) => Ok(Some(bytes)),
                Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
                Err(e) => Err(e),
            },
            Media::Store(store) => Ok(store.read(CHECKPOINT_FILE)),
        }
    }

    /// Durably replaces the checkpoint: write the blob to a scratch file,
    /// sync it, then atomically rename over the live name. A crash at any
    /// point leaves either the old checkpoint or the new one, whole.
    fn write_checkpoint_bytes(&self, blob: &[u8]) -> io::Result<()> {
        match self {
            Media::Dir(dir) => {
                std::fs::create_dir_all(dir)?;
                let tmp = dir.join(CHECKPOINT_TMP);
                let mut file = std::fs::File::create(&tmp)?;
                file.write_all(blob)?;
                file.sync_all()?;
                drop(file);
                std::fs::rename(&tmp, dir.join(CHECKPOINT_FILE))
            }
            Media::Store(store) => {
                // Drop any stale scratch from a crashed prior attempt so
                // the open starts from an empty file.
                store.remove(CHECKPOINT_TMP);
                let mut file = store.open(CHECKPOINT_TMP);
                file.write_all(blob)?;
                file.flush()?;
                store.rename(CHECKPOINT_TMP, CHECKPOINT_FILE)
            }
        }
    }
}

/// The after-state of one drift session: everything needed to rebuild it
/// bit-exactly. Doubles as the WAL's drift record (each committed drift
/// logs the snapshot it produced) and the checkpoint's session entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct SessionSnapshot {
    /// Session name.
    pub name: String,
    /// The schema the session was created with.
    pub schema: SchemaSpec,
    /// Workload version after the logged request.
    pub version: u64,
    /// Exact class probabilities at that version.
    pub probs: Vec<f64>,
}

/// One stored idempotent response, replayable after a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct IdemSnapshot {
    /// The idempotency key.
    pub key: String,
    /// The authoritative response stored under it.
    pub response: Response,
}

/// The durable after-state of one online-reclustering job. The service's
/// migrated tables are deterministic functions of their spec (schema +
/// geometry + fill), so the snapshot needs no page bytes: recovery
/// rebuilds the table and redoes chunk copies up to the logged fence —
/// idempotent, since every redo writes the identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct ReclusterSnapshot {
    /// Job name (the request's `session`).
    pub job: String,
    /// The grid being migrated.
    pub schema: SchemaSpec,
    /// Source linearization (what was on disk when the job started).
    pub from: StrategySpec,
    /// Target linearization.
    pub to: StrategySpec,
    /// Table geometry (records per cell, page/record size).
    pub measure: MeasureSpec,
    /// Pages copied per migration step.
    pub chunk_pages: u64,
    /// Cells migrated so far (the durable fence).
    pub fence: u64,
    /// Job state: `running`, `done`, or `aborted`.
    pub state: String,
    /// Bounded steps applied so far.
    pub chunks_applied: u64,
    /// Records copied so far.
    pub records_moved: u64,
    /// Differential probes run so far.
    pub probes: u64,
}

/// One WAL entry. A committed drift carrying an idempotency key logs both
/// records in a single entry, so the session mutation and its replayable
/// acknowledgement are durable atomically. (A plain struct of options —
/// not an enum — keeps the wire encoding trivial.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct LogEntry {
    /// Session after-state, for `drift` commits.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub drift: Option<SessionSnapshot>,
    /// Idempotent response to store.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub idempotency: Option<IdemSnapshot>,
    /// Recluster-job after-state (logged once per applied chunk).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub recluster: Option<ReclusterSnapshot>,
}

/// The checkpoint document: a full state snapshot plus the WAL horizon it
/// covers. Entries with `lsn < next_lsn` are already folded in.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub(crate) struct Checkpoint {
    /// First LSN *not* covered by this checkpoint.
    pub next_lsn: u64,
    /// Every live session (sorted by name, for deterministic bytes).
    pub sessions: Vec<SessionSnapshot>,
    /// Every stored idempotent response (sorted by key).
    pub idempotency: Vec<IdemSnapshot>,
    /// Every recluster job (sorted by job name). Absent in pre-v2
    /// checkpoints, which decode with no jobs.
    #[serde(default)]
    pub reclusters: Vec<ReclusterSnapshot>,
}

/// State reconstructed from checkpoint + WAL replay.
#[derive(Debug, Default)]
pub(crate) struct Recovered {
    /// Sessions to rebuild.
    pub sessions: Vec<SessionSnapshot>,
    /// Idempotency slots to refill.
    pub idempotency: Vec<IdemSnapshot>,
    /// Recluster jobs to rebuild (running ones resume at their fence).
    pub reclusters: Vec<ReclusterSnapshot>,
    /// Whether any prior state (checkpoint or log entries) was found.
    pub recovered: bool,
}

fn invalid<E: std::fmt::Display>(what: &str) -> impl FnOnce(E) -> io::Error + '_ {
    move |e| io::Error::new(io::ErrorKind::InvalidData, format!("{what}: {e}"))
}

/// Serializes a checkpoint through the slotted-page blob format.
fn encode_checkpoint(ckpt: &Checkpoint) -> io::Result<Vec<u8>> {
    let json = serde_json::to_string(ckpt).map_err(invalid("checkpoint encode"))?;
    let file = PageFile::new(Cursor::new(Vec::new()), CHECKPOINT_PAGE_SIZE)?;
    let mut pool = BufferPool::new(file, CHECKPOINT_POOL_PAGES);
    write_blob(&mut pool, json.as_bytes())?;
    Ok(pool.into_backend()?.into_inner())
}

/// Parses checkpoint bytes written by [`encode_checkpoint`], verifying
/// the blob checksum.
fn decode_checkpoint(bytes: Vec<u8>) -> io::Result<Checkpoint> {
    let file = PageFile::new(Cursor::new(bytes), CHECKPOINT_PAGE_SIZE)?;
    let mut pool = BufferPool::new(file, CHECKPOINT_POOL_PAGES);
    let payload = read_blob(&mut pool)?;
    let json = std::str::from_utf8(&payload).map_err(invalid("checkpoint utf8"))?;
    serde_json::from_str(json).map_err(invalid("checkpoint decode"))
}

/// The engine's durable substrate: the media, the open WAL, and the
/// counters surfaced by `stats`.
pub(crate) struct Durability {
    media: Media,
    /// The open log. Lock order: a drift holds its session lock, then
    /// takes this; the checkpointer takes this first, then *try*-locks
    /// sessions (aborting the round on contention), so the two never
    /// deadlock.
    pub(crate) wal: Mutex<Wal<Box<dyn Backend>>>,
    pub(crate) appends_since_checkpoint: AtomicU64,
    pub(crate) checkpoints: AtomicU64,
    /// 1 when this open found prior state to recover, else 0.
    pub(crate) recoveries: u64,
    /// Sessions rebuilt by that recovery.
    pub(crate) recovered_sessions: u64,
    /// When set (group commit), [`Durability::append`] skips the per-entry
    /// fsync and [`Durability::flush`] syncs the whole batch at once. The
    /// sharded core flushes once per event-loop tick before releasing any
    /// of the tick's responses, so "durable before acknowledged" holds
    /// under either mode.
    deferred_sync: AtomicBool,
    /// Appends since the last sync; tells `flush` whether an fsync is due.
    dirty: AtomicBool,
}

impl Durability {
    /// Opens the media and recovers: checkpoint, then WAL replay of every
    /// entry past the checkpoint horizon.
    ///
    /// # Errors
    ///
    /// Propagates media I/O errors; `InvalidData` on a corrupt checkpoint
    /// or an undecodable (CRC-valid but malformed) log entry — durable
    /// state is fail-stop, never silently partial.
    pub fn open(media: Media) -> io::Result<(Self, Recovered)> {
        let ckpt = match media.read_checkpoint_bytes()? {
            Some(bytes) => Some(decode_checkpoint(bytes)?),
            None => None,
        };
        let (wal, entries) = Wal::open(media.open_wal()?)?;
        let had_checkpoint = ckpt.is_some();
        let ckpt = ckpt.unwrap_or_default();
        let mut out = Recovered {
            sessions: ckpt.sessions,
            idempotency: ckpt.idempotency,
            reclusters: ckpt.reclusters,
            recovered: had_checkpoint || !entries.is_empty(),
        };
        for (lsn, payload) in &entries {
            if *lsn < ckpt.next_lsn {
                continue; // already folded into the checkpoint
            }
            let json = std::str::from_utf8(payload).map_err(invalid("log utf8"))?;
            let entry: LogEntry = serde_json::from_str(json).map_err(invalid("log decode"))?;
            if let Some(snap) = entry.drift {
                match out.sessions.iter_mut().find(|s| s.name == snap.name) {
                    Some(at) => *at = snap,
                    None => out.sessions.push(snap),
                }
            }
            if let Some(idem) = entry.idempotency {
                match out.idempotency.iter_mut().find(|i| i.key == idem.key) {
                    Some(at) => *at = idem,
                    None => out.idempotency.push(idem),
                }
            }
            if let Some(job) = entry.recluster {
                match out.reclusters.iter_mut().find(|j| j.job == job.job) {
                    Some(at) => *at = job,
                    None => out.reclusters.push(job),
                }
            }
        }
        let durability = Durability {
            media,
            wal: Mutex::new(wal),
            appends_since_checkpoint: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            recoveries: u64::from(out.recovered),
            recovered_sessions: out.sessions.len() as u64,
            deferred_sync: AtomicBool::new(false),
            dirty: AtomicBool::new(false),
        };
        Ok((durability, out))
    }

    /// Switches between per-append fsync (default) and group commit.
    pub fn set_deferred_sync(&self, enabled: bool) {
        self.deferred_sync.store(enabled, Ordering::Relaxed);
    }

    /// Appends one entry. In the default mode it is synced immediately —
    /// once this returns `Ok`, the entry survives any crash. Under group
    /// commit ([`Durability::set_deferred_sync`]) the entry is staged in
    /// the log and becomes crash-durable at the next [`Durability::flush`];
    /// the caller must not acknowledge it before then.
    ///
    /// # Errors
    ///
    /// Propagates WAL I/O errors (after which the WAL is poisoned and
    /// every subsequent mutation fails — fail-stop).
    pub fn append(&self, entry: &LogEntry) -> io::Result<u64> {
        let json = serde_json::to_string(entry).map_err(invalid("log encode"))?;
        let mut wal = self.wal.lock();
        let lsn = wal.append(json.as_bytes())?;
        if self.deferred_sync.load(Ordering::Relaxed) {
            // Mark dirty while still holding the WAL lock, so a racing
            // flush cannot observe clean-then-miss this append.
            self.dirty.store(true, Ordering::Relaxed);
        } else {
            wal.sync()?;
        }
        self.appends_since_checkpoint
            .fetch_add(1, Ordering::Relaxed);
        Ok(lsn)
    }

    /// Syncs every staged append in one fsync (no-op when clean).
    ///
    /// # Errors
    ///
    /// Propagates the sync failure — the staged entries are then *not*
    /// durable and their acknowledgements must be withheld (the WAL is
    /// poisoned, so subsequent mutations fail fail-stop).
    pub fn flush(&self) -> io::Result<()> {
        if !self.dirty.load(Ordering::Relaxed) {
            return Ok(());
        }
        let mut wal = self.wal.lock();
        // Re-check under the lock: a concurrent flush may have won.
        if self.dirty.swap(false, Ordering::Relaxed) {
            wal.sync()?;
        }
        Ok(())
    }

    /// Whether enough appends have accumulated to warrant a checkpoint.
    pub fn should_checkpoint(&self) -> bool {
        self.appends_since_checkpoint.load(Ordering::Relaxed) >= CHECKPOINT_EVERY
    }

    /// Installs `ckpt` (already holding the WAL lock) and truncates the
    /// log. Ordering is what makes this crash-safe: the checkpoint blob
    /// is renamed into place *before* the truncate, and replay skips
    /// entries below `ckpt.next_lsn`, so a crash between the two replays
    /// the old log against the new checkpoint harmlessly.
    ///
    /// # Errors
    ///
    /// Propagates media/WAL errors; on failure the old checkpoint and the
    /// full log remain authoritative.
    pub fn install_checkpoint(
        &self,
        wal: &mut Wal<Box<dyn Backend>>,
        ckpt: &Checkpoint,
    ) -> io::Result<()> {
        let blob = encode_checkpoint(ckpt)?;
        self.media.write_checkpoint_bytes(&blob)?;
        wal.truncate()?;
        // Any staged-but-unsynced appends were folded into the (synced)
        // checkpoint blob, and the log is empty: nothing left to flush.
        self.dirty.store(false, Ordering::Relaxed);
        self.appends_since_checkpoint.store(0, Ordering::Relaxed);
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("media", &self.media)
            .field("recoveries", &self.recoveries)
            .finish_non_exhaustive()
    }
}

// Backend impl for CrashFile lives in snakes-storage; here we only need
// Read for checkpoint bytes, which `CrashStore::read` already provides.
const _: fn() = || {
    fn assert_backend<B: Backend>() {}
    fn check() {
        assert_backend::<snakes_storage::crash::CrashFile>();
    }
    let _ = check;
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::DimSpec;

    fn toy_schema() -> SchemaSpec {
        SchemaSpec {
            dims: vec![
                DimSpec {
                    name: "product".into(),
                    fanouts: vec![3, 2],
                },
                DimSpec {
                    name: "time".into(),
                    fanouts: vec![4],
                },
            ],
        }
    }

    fn snap(name: &str, version: u64, seed: f64) -> SessionSnapshot {
        let mut probs = vec![seed, 1.0 - seed];
        probs[0] = seed;
        SessionSnapshot {
            name: name.into(),
            schema: toy_schema(),
            version,
            probs,
        }
    }

    #[test]
    fn checkpoint_roundtrips_through_the_blob_format() {
        let ckpt = Checkpoint {
            next_lsn: 17,
            sessions: vec![snap("etl", 5, 0.25), snap("bi", 2, 0.125)],
            idempotency: vec![IdemSnapshot {
                key: "k-1".into(),
                response: Response::ok(42),
            }],
            reclusters: vec![],
        };
        let blob = encode_checkpoint(&ckpt).unwrap();
        assert_eq!(blob.len() as u64 % CHECKPOINT_PAGE_SIZE, 0);
        let back = decode_checkpoint(blob).unwrap();
        assert_eq!(back, ckpt);
        // Probabilities survive bit-for-bit.
        assert_eq!(
            back.sessions[0].probs[0].to_bits(),
            ckpt.sessions[0].probs[0].to_bits()
        );
    }

    #[test]
    fn corrupt_checkpoints_are_rejected_not_trusted() {
        let mut blob = encode_checkpoint(&Checkpoint::default()).unwrap();
        // The first page's tail holds the blob's length+checksum slot;
        // flipping a byte there must be caught (the page middle is slack).
        let at = blob.len() - 5;
        blob[at] ^= 0xFF;
        // Either the blob checksum or the JSON decode must catch it.
        assert!(decode_checkpoint(blob).is_err());
    }

    #[test]
    fn open_on_empty_media_recovers_nothing() {
        let store = Arc::new(CrashStore::new());
        let (d, rec) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
        assert!(!rec.recovered);
        assert_eq!(d.recoveries, 0);
        assert!(rec.sessions.is_empty());
        assert!(rec.idempotency.is_empty());
    }

    #[test]
    fn log_replay_applies_entries_in_order_with_last_write_winning() {
        let store = Arc::new(CrashStore::new());
        {
            let (d, _) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
            d.append(&LogEntry {
                drift: Some(snap("etl", 1, 0.5)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
            d.append(&LogEntry {
                drift: Some(snap("etl", 2, 0.75)),
                idempotency: Some(IdemSnapshot {
                    key: "k".into(),
                    response: Response::ok(7),
                }),
                recluster: None,
            })
            .unwrap();
            d.append(&LogEntry {
                drift: Some(snap("bi", 1, 0.25)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
        }
        let (d, rec) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
        assert!(rec.recovered);
        assert_eq!(d.recoveries, 1);
        assert_eq!(d.recovered_sessions, 2);
        let etl = rec.sessions.iter().find(|s| s.name == "etl").unwrap();
        assert_eq!(etl.version, 2);
        assert_eq!(etl.probs[0].to_bits(), 0.75f64.to_bits());
        assert_eq!(rec.idempotency.len(), 1);
        assert_eq!(rec.idempotency[0].response.id, 7);
    }

    #[test]
    fn checkpoint_plus_tail_replay_recovers_the_union() {
        let store = Arc::new(CrashStore::new());
        {
            let (d, _) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
            d.append(&LogEntry {
                drift: Some(snap("etl", 1, 0.5)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
            // Fold into a checkpoint, then append past it.
            let mut wal = d.wal.lock();
            let ckpt = Checkpoint {
                next_lsn: wal.next_lsn(),
                sessions: vec![snap("etl", 1, 0.5)],
                idempotency: vec![],
                reclusters: vec![],
            };
            d.install_checkpoint(&mut wal, &ckpt).unwrap();
            drop(wal);
            assert_eq!(d.checkpoints.load(Ordering::Relaxed), 1);
            d.append(&LogEntry {
                drift: Some(snap("etl", 2, 0.0625)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
        }
        let (_, rec) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
        assert_eq!(rec.sessions.len(), 1);
        assert_eq!(rec.sessions[0].version, 2);
        assert_eq!(rec.sessions[0].probs[0].to_bits(), 0.0625f64.to_bits());
    }

    #[test]
    fn stale_log_entries_below_the_checkpoint_horizon_are_skipped() {
        let store = Arc::new(CrashStore::new());
        {
            let (d, _) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
            d.append(&LogEntry {
                drift: Some(snap("etl", 9, 0.5)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
            // A checkpoint claiming a *newer* state than the log: the
            // entry must not clobber it. (This is exactly the state a
            // crash between checkpoint-rename and WAL-truncate leaves.)
            let ckpt = Checkpoint {
                next_lsn: d.wal.lock().next_lsn(),
                sessions: vec![snap("etl", 10, 0.75)],
                idempotency: vec![],
                reclusters: vec![],
            };
            let blob = encode_checkpoint(&ckpt).unwrap();
            d.media.write_checkpoint_bytes(&blob).unwrap();
            // Note: no truncate — the old entry is still in the log.
        }
        let (_, rec) = Durability::open(Media::Store(Arc::clone(&store))).unwrap();
        assert_eq!(rec.sessions.len(), 1);
        assert_eq!(rec.sessions[0].version, 10);
    }

    #[test]
    fn dir_media_roundtrips_on_a_real_filesystem() {
        let dir = std::env::temp_dir().join(format!(
            "snakes-durability-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let (d, rec) = Durability::open(Media::Dir(dir.clone())).unwrap();
            assert!(!rec.recovered);
            d.append(&LogEntry {
                drift: Some(snap("etl", 3, 0.5)),
                idempotency: None,
                recluster: None,
            })
            .unwrap();
            let mut wal = d.wal.lock();
            let ckpt = Checkpoint {
                next_lsn: wal.next_lsn(),
                sessions: vec![snap("etl", 3, 0.5)],
                idempotency: vec![],
                reclusters: vec![],
            };
            d.install_checkpoint(&mut wal, &ckpt).unwrap();
        }
        let (d, rec) = Durability::open(Media::Dir(dir.clone())).unwrap();
        assert!(rec.recovered);
        assert_eq!(d.recoveries, 1);
        assert_eq!(rec.sessions[0].version, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
