//! Service-side failures and their wire mapping.

use crate::protocol::{ErrorBody, SpecError};

/// Everything that can go wrong serving a request (or, client-side,
/// issuing one).
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The request document is invalid (bad spec, missing field, unknown
    /// endpoint or strategy).
    BadRequest(String),
    /// The admission queue is full; retry after the suggested backoff.
    Overloaded {
        /// Suggested client backoff in milliseconds.
        retry_after_ms: u64,
    },
    /// The request's deadline expired before or during execution.
    DeadlineExceeded,
    /// The server is draining and no longer admits new work.
    ShuttingDown,
    /// Transport-level failure.
    Io(std::io::Error),
    /// The peer broke the line protocol (malformed JSON, closed stream).
    Protocol(String),
    /// A handler panicked inside a worker; the panic was caught, the
    /// worker survived, and the failure is surfaced in-band.
    HandlerPanic(String),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::BadRequest(m) => write!(f, "bad request: {m}"),
            ServiceError::Overloaded { retry_after_ms } => {
                write!(f, "overloaded; retry after {retry_after_ms} ms")
            }
            ServiceError::DeadlineExceeded => write!(f, "deadline exceeded"),
            ServiceError::ShuttingDown => write!(f, "shutting down"),
            ServiceError::Io(e) => write!(f, "i/o error: {e}"),
            ServiceError::Protocol(m) => write!(f, "protocol error: {m}"),
            ServiceError::HandlerPanic(m) => write!(f, "handler panicked: {m}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ServiceError {
    fn from(e: SpecError) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

impl From<snakes_core::error::Error> for ServiceError {
    fn from(e: snakes_core::error::Error) -> Self {
        ServiceError::BadRequest(e.to_string())
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Io(e)
    }
}

impl ServiceError {
    /// The stable wire code for this failure.
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::BadRequest(_) => "bad_request",
            ServiceError::Overloaded { .. } => "overloaded",
            ServiceError::DeadlineExceeded => "deadline_exceeded",
            ServiceError::ShuttingDown => "shutting_down",
            ServiceError::Io(_) | ServiceError::Protocol(_) | ServiceError::HandlerPanic(_) => {
                "internal"
            }
        }
    }

    /// The wire error body for this failure.
    pub fn to_body(&self) -> ErrorBody {
        ErrorBody {
            code: self.code().into(),
            message: self.to_string(),
            retry_after_ms: match self {
                ServiceError::Overloaded { retry_after_ms } => Some(*retry_after_ms),
                _ => None,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_and_bodies() {
        let e = ServiceError::Overloaded { retry_after_ms: 40 };
        assert_eq!(e.code(), "overloaded");
        let body = e.to_body();
        assert_eq!(body.retry_after_ms, Some(40));
        assert_eq!(ServiceError::DeadlineExceeded.code(), "deadline_exceeded");
        assert_eq!(ServiceError::ShuttingDown.code(), "shutting_down");
        assert_eq!(ServiceError::BadRequest("x".into()).code(), "bad_request");
        assert!(ServiceError::BadRequest("missing schema".into())
            .to_string()
            .contains("missing schema"));
    }
}
