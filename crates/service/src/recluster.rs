//! Online-reclustering jobs: the service-side wrapper around
//! [`snakes_storage::Migration`].
//!
//! A job migrates a clustered table from one linearization to another in
//! bounded chunks while the daemon keeps serving. The table itself is a
//! *deterministic function of the job's spec* — every record's bytes are
//! [`synthetic_record`] of its cell coordinates and index — which buys two
//! things at once:
//!
//! * **Durability without page bytes.** The WAL logs only the job spec
//!   and the migration fence
//!   ([`crate::durability::ReclusterSnapshot`]); recovery rebuilds the
//!   table from the spec and *redoes* chunk copies up to the logged
//!   fence. Every redo writes the identical bytes, so replay is
//!   idempotent at any crash point.
//! * **Self-verifying serving.** A differential probe can check any
//!   record the mixed-layout executor returns against the generator
//!   alone — no shadow copy of the table needed. [`RunningJob::probe`]
//!   runs after every chunk and asserts the fence-split scan is
//!   bit-identical to what either pure layout would serve.

use crate::durability::ReclusterSnapshot;
use crate::engine::{resolve_strategy, WireCurve, MAX_MEASURE_CELLS, MAX_PHYSICAL_BYTES};
use crate::error::ServiceError;
use crate::protocol::ReclusterBody;
use snakes_curves::Linearization;
use snakes_storage::{CellData, Migration, StorageConfig, TableFile};
use std::collections::HashMap;
use std::io;
use std::io::Cursor;
use std::ops::Range;

/// Backend of the synthetic tables: both sides of the migration live in
/// memory (the byte-exact paged engine on a `Vec<u8>`).
pub(crate) type MemBackend = Cursor<Vec<u8>>;

/// The live half of a running job: the migration plus the materialized
/// curves it steps and scans with.
pub(crate) struct RunningJob {
    pub migration: Migration<MemBackend, MemBackend>,
    pub old_curve: WireCurve,
    pub new_curve: WireCurve,
    pub cells: CellData,
    records_per_cell: u64,
    record_size: u64,
}

/// One online-reclustering job as the engine tracks it: the durable
/// after-state mirror (also the status surface) plus the live migration
/// while running.
pub(crate) struct ReclusterJob {
    /// Durable after-state; every field the WAL persists.
    pub snap: ReclusterSnapshot,
    /// Live migration; `Some` exactly while `snap.state == "running"`.
    pub running: Option<RunningJob>,
    /// Drift session whose layout this job migrates (auto-triggered jobs
    /// only): on completion the session's assumed layout advances to the
    /// target path.
    pub notify_session: Option<String>,
    /// Human-readable identity of the source linearization.
    pub from_label: String,
    /// Human-readable identity of the target linearization.
    pub to_label: String,
    /// Total grid cells to migrate.
    pub total_cells: u64,
}

impl ReclusterJob {
    /// The wire status body for this job.
    pub fn body(&self) -> ReclusterBody {
        ReclusterBody {
            job: self.snap.job.clone(),
            state: self.snap.state.clone(),
            from: self.from_label.clone(),
            to: self.to_label.clone(),
            fence: self.snap.fence,
            total_cells: self.total_cells,
            chunks_applied: self.snap.chunks_applied,
            records_moved: self.snap.records_moved,
            probes: self.snap.probes,
        }
    }
}

/// The deterministic record fill: a pure function of cell coordinates and
/// in-cell index (a splitmix-style hash cycled over the record), so any
/// scanned record can be verified against its provenance alone.
pub(crate) fn synthetic_record(record_size: u64, coords: &[u64], index: u64) -> Vec<u8> {
    let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
    for &c in coords {
        h = (h ^ c).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h = (h ^ index).wrapping_mul(0x94D0_49BB_1331_11EB);
    h ^= h >> 31;
    let mut rec = vec![0u8; record_size as usize];
    for (j, b) in rec.iter_mut().enumerate() {
        if j % 8 == 0 && j > 0 {
            h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
            h ^= h >> 29;
        }
        *b = (h >> ((j % 8) * 8)) as u8;
    }
    rec
}

/// Builds a job from its durable snapshot: validates the spec, and for a
/// running job materializes the synthetic table and *redoes* chunk copies
/// up to the snapshot's fence (bit-identical bytes, so replaying over a
/// partially written new file is safe at any crash point).
///
/// # Errors
///
/// `BadRequest` on invalid specs or capped geometry; I/O errors surface
/// from the in-memory paged engine (practically infallible).
pub(crate) fn build_job(snap: ReclusterSnapshot) -> Result<ReclusterJob, ServiceError> {
    let schema = snap.schema.clone().build()?;
    let (from_lazy, _, from_label) = resolve_strategy(&schema, &snap.from)?;
    let (to_lazy, _, to_label) = resolve_strategy(&schema, &snap.to)?;
    let total_cells = schema.num_cells();
    let m = &snap.measure;
    if total_cells > MAX_MEASURE_CELLS {
        return Err(ServiceError::BadRequest(format!(
            "grid has {total_cells} cells; reclustering is capped at {MAX_MEASURE_CELLS}"
        )));
    }
    if m.records_per_cell == 0 || m.page_size == 0 || m.record_size == 0 {
        return Err(ServiceError::BadRequest(
            "`measure` fields must be positive".into(),
        ));
    }
    if snap.chunk_pages == 0 {
        return Err(ServiceError::BadRequest(
            "`recluster.chunk_pages` must be positive".into(),
        ));
    }
    let bytes = total_cells
        .checked_mul(m.records_per_cell)
        .and_then(|r| r.checked_mul(m.record_size))
        .ok_or_else(|| ServiceError::BadRequest("`measure` sizes overflow".into()))?;
    if bytes > MAX_PHYSICAL_BYTES {
        return Err(ServiceError::BadRequest(format!(
            "reclustering would pack {bytes} record bytes per side; \
             capped at {MAX_PHYSICAL_BYTES}"
        )));
    }
    if snap.fence > total_cells {
        return Err(ServiceError::BadRequest(format!(
            "fence {} exceeds the grid's {total_cells} cells",
            snap.fence
        )));
    }
    let running = if snap.state == "running" {
        let old_curve = from_lazy.build(&schema);
        let new_curve = to_lazy.build(&schema);
        let cells = CellData::from_counts(
            schema.grid_shape(),
            vec![m.records_per_cell; total_cells as usize],
        );
        let config = StorageConfig {
            page_size: m.page_size,
            record_size: m.record_size,
        };
        let record_size = m.record_size;
        let old = TableFile::create_in_memory(&old_curve, &cells, config, |coords, i| {
            synthetic_record(record_size, coords, i)
        })?;
        let mut migration = Migration::begin(
            old,
            Cursor::new(Vec::new()),
            &new_curve,
            &cells,
            snap.chunk_pages,
        )?;
        // Redo phase: replay chunk copies until the fence catches up with
        // the durable one. Chunk boundaries are deterministic, so the
        // fence lands exactly on `snap.fence`.
        while migration.fence() < snap.fence {
            migration.step(&old_curve, &new_curve)?;
        }
        Some(RunningJob {
            migration,
            old_curve,
            new_curve,
            cells,
            records_per_cell: m.records_per_cell,
            record_size,
        })
    } else {
        None
    };
    Ok(ReclusterJob {
        snap,
        running,
        notify_session: None,
        from_label,
        to_label,
        total_cells,
    })
}

impl RunningJob {
    /// One differential probe: scans a small box straddling the current
    /// fence through the mixed-layout executor and asserts every record
    /// is exactly the synthetic fill — i.e. byte-identical to what a scan
    /// of either pure layout would serve.
    ///
    /// # Panics
    ///
    /// Panics when the mixed scan returns a wrong record or count: that
    /// is a serving-correctness violation and must fail stop.
    ///
    /// # Errors
    ///
    /// Propagates paged-engine I/O errors.
    pub fn probe(&mut self) -> io::Result<()> {
        let extents = self.new_curve.extents().to_vec();
        let total: u64 = extents.iter().product();
        if total == 0 {
            return Ok(());
        }
        // Anchor the box on the last migrated cell so it straddles the
        // fence whenever a boundary exists.
        let anchor = self.migration.fence().saturating_sub(1).min(total - 1);
        let mut coords = vec![0u64; extents.len()];
        self.new_curve.coords(anchor, &mut coords);
        let ranges: Vec<Range<u64>> = coords
            .iter()
            .zip(&extents)
            .map(|(&c, &e)| c.saturating_sub(1)..(c + 2).min(e))
            .collect();
        let box_cells: u64 = ranges.iter().map(|r| r.end - r.start).product();
        let mut seen: HashMap<Vec<u64>, u64> = HashMap::new();
        let mut records = 0u64;
        let record_size = self.record_size;
        self.migration.scan_mixed(
            &self.old_curve,
            &self.new_curve,
            &ranges,
            |cell, payload| {
                let index = seen.entry(cell.to_vec()).or_insert(0);
                let expected = synthetic_record(record_size, cell, *index);
                assert_eq!(
                    payload, expected,
                    "mixed scan served wrong bytes for cell {cell:?} record {index}"
                );
                *index += 1;
                records += 1;
            },
        )?;
        assert_eq!(
            records,
            box_cells * self.records_per_cell,
            "mixed scan dropped or duplicated records in {ranges:?}"
        );
        for (cell, count) in &seen {
            assert_eq!(
                *count, self.records_per_cell,
                "cell {cell:?} served {count} records"
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_records_are_deterministic_and_distinct() {
        let a = synthetic_record(32, &[1, 2], 0);
        let b = synthetic_record(32, &[1, 2], 0);
        assert_eq!(a, b, "same provenance, same bytes");
        assert_ne!(a, synthetic_record(32, &[1, 2], 1), "index changes bytes");
        assert_ne!(a, synthetic_record(32, &[2, 1], 0), "cell changes bytes");
        assert_eq!(a.len(), 32);
        // Long records keep varying past the first hash word.
        let long = synthetic_record(24, &[3, 4], 5);
        assert_ne!(long[0..8], long[8..16]);
    }
}
