//! The one workspace-wide error type.
//!
//! Each crate keeps its own precise error enum; this facade type unifies
//! them so applications composing several layers (library + CLI documents
//! + the advisor service) can use one `Result` with `?` throughout.

use snakes_cli::CliError;
use snakes_service::protocol::SpecError;
use snakes_service::ServiceError;

/// Any failure from the `snakes_sandwiches` workspace.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// A core modelling error (invalid schema, workload, or path).
    Core(snakes_core::error::Error),
    /// A malformed schema/workload/request document.
    Spec(SpecError),
    /// A CLI usage or dispatch failure.
    Cli(CliError),
    /// An advisor-service failure (client- or server-side).
    Service(ServiceError),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Core(e) => write!(f, "{e}"),
            Error::Spec(e) => write!(f, "{e}"),
            Error::Cli(e) => write!(f, "{e}"),
            Error::Service(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Core(e) => Some(e),
            Error::Spec(e) => Some(e),
            Error::Cli(e) => Some(e),
            Error::Service(e) => Some(e),
        }
    }
}

impl From<snakes_core::error::Error> for Error {
    fn from(e: snakes_core::error::Error) -> Self {
        Error::Core(e)
    }
}

impl From<SpecError> for Error {
    fn from(e: SpecError) -> Self {
        Error::Spec(e)
    }
}

impl From<CliError> for Error {
    fn from(e: CliError) -> Self {
        Error::Cli(e)
    }
}

impl From<ServiceError> for Error {
    fn from(e: ServiceError) -> Self {
        Error::Service(e)
    }
}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    fn core_err() -> snakes_core::error::Error {
        use snakes_core::lattice::LatticeShape;
        use snakes_core::workload::Workload;
        Workload::from_weights(LatticeShape::new(vec![1, 1]), vec![0.0; 4]).unwrap_err()
    }

    #[test]
    fn conversions_compose_with_question_mark() {
        fn through_core() -> Result<()> {
            Err(core_err())?;
            Ok(())
        }
        fn through_spec() -> Result<()> {
            Err(SpecError::Invalid("x".into()))?;
            Ok(())
        }
        fn through_cli() -> Result<()> {
            Err(CliError::Usage("y".into()))?;
            Ok(())
        }
        fn through_service() -> Result<()> {
            Err(ServiceError::DeadlineExceeded)?;
            Ok(())
        }
        assert!(matches!(through_core(), Err(Error::Core(_))));
        assert!(matches!(through_spec(), Err(Error::Spec(_))));
        assert!(matches!(through_cli(), Err(Error::Cli(_))));
        assert!(matches!(through_service(), Err(Error::Service(_))));
    }

    #[test]
    fn display_and_source_delegate() {
        let e = Error::from(ServiceError::DeadlineExceeded);
        assert_eq!(e.to_string(), "deadline exceeded");
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::from(core_err());
        assert!(!e.to_string().is_empty());
    }
}
