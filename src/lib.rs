//! # Snakes and Sandwiches
//!
//! A full reproduction of *Snakes and Sandwiches: Optimal Clustering
//! Strategies for a Data Warehouse* (H. V. Jagadish, Laks V. S. Lakshmanan,
//! Divesh Srivastava; SIGMOD 1999) as a production-quality Rust workspace.
//!
//! Given a star schema (dimension hierarchies over a fact table) and a
//! workload (a probability distribution over *query classes*), this library
//! computes the clustering of fact-table records on disk that minimizes
//! expected I/O:
//!
//! 1. the **optimal monotone lattice path** over the query-class lattice,
//!    found by a dynamic program linear in the lattice size
//!    (`core::dp`);
//! 2. its **snaked** version, which never costs more on any workload
//!    (`core::snake`) and — for 2-D complete binary hierarchies — is
//!    within a factor of 2 of the *globally* optimal strategy
//!    (`core::sandwich`, the paper's Theorem 2 and §5.3 guarantee).
//!
//! The workspace also contains every substrate needed to reproduce the
//! paper's evaluation: linearization curves including Hilbert, Z-order and
//! Gray-code baselines ([`curves`]), a page-based storage simulator
//! counting seeks and normalized blocks ([`storage`]), and the TPC-D-style
//! synthetic experiment ([`tpcd`]).
//!
//! ## Quick start
//!
//! ```
//! use snakes_sandwiches::prelude::*;
//!
//! // Figure 1's toy warehouse: jeans × location, 4×4 grid of cells.
//! let schema = StarSchema::paper_toy();
//! let shape = LatticeShape::of_schema(&schema);
//!
//! // 40% of queries drill to individual cells, the rest are rollups.
//! let workload = Workload::from_weights(
//!     shape.clone(),
//!     vec![0.4, 0.1, 0.05, 0.1, 0.1, 0.05, 0.05, 0.05, 0.1],
//! )?;
//!
//! let rec = recommend(&schema, &workload);
//! println!(
//!     "cluster along {} (snaked); expected cost {:.3}, within 2x of optimal",
//!     rec.optimal_path, rec.snaked_cost
//! );
//! assert!(rec.snaked_cost <= rec.plain_cost);
//! # Ok::<(), snakes_sandwiches::core::error::Error>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use snakes_cli as cli;
pub use snakes_core as core;
pub use snakes_curves as curves;
pub use snakes_service as service;
pub use snakes_storage as storage;
pub use snakes_tpcd as tpcd;

pub mod error;

pub use error::{Error, Result};

/// One-stop imports: the core prelude plus the most used cross-crate types.
pub mod prelude {
    pub use crate::error::{Error, Result};
    pub use snakes_curves::{
        path_curve, snaked_path_curve, GrayCurve, HilbertCurve, Linearization, NestedLoops,
        SignatureCache, StrategyId, ZOrderCurve,
    };
    pub use snakes_service::{Client, Request, Response, Server, ServerConfig};
    pub use snakes_storage::{workload_stats_opts, PackedLayout, SharedCostMemo, StorageConfig};
    pub use snakes_tpcd::{Evaluator, TpcdConfig};
    // The explicit facade-wide `Error`/`Result` above shadow the core
    // crate's pair inside this glob.
    pub use snakes_core::prelude::*;
}
