//! A gallery of every linearization curve on an 8x8 grid, with its
//! characteristic vector and per-class costs — Figures 1, 2, and 5 of the
//! paper, generalized.
//!
//! ```text
//! cargo run --release --example curve_gallery
//! ```

use snakes_sandwiches::core::cv::Cv;
use snakes_sandwiches::curves::cv_of;
use snakes_sandwiches::prelude::*;

fn render(lin: &impl Linearization) -> String {
    let mut grid = vec![vec![0u64; 8]; 8];
    for r in 0..lin.num_cells() {
        let c = lin.coords_vec(r);
        grid[c[1] as usize][c[0] as usize] = r + 1;
    }
    grid.iter()
        .map(|row| {
            row.iter()
                .map(|v| format!("{v:>2}"))
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn describe(name: &str, schema: &StarSchema, lin: &impl Linearization, workload: &Workload) {
    let cv: Cv = cv_of(schema, lin);
    println!("--- {name} ---");
    println!("{}", render(lin));
    let edges: Vec<String> = cv.entries().map(|(t, c)| format!("{t}:{c}")).collect();
    println!("CV: {}", edges.join(" "));
    println!(
        "diagonal edges: {}, expected cost (uniform workload): {:.3}\n",
        cv.diagonal_edges(),
        cv.expected_cost(workload)
    );
}

fn main() -> Result<()> {
    // 8x8 grid with 3-level binary hierarchies: the §5 representative class.
    let schema = StarSchema::square(2, 3)?;
    let shape = LatticeShape::of_schema(&schema);
    let uniform = Workload::uniform(shape.clone());

    describe(
        "row-major (Figure 1 family)",
        &schema,
        &NestedLoops::row_major(vec![8, 8], &[0, 1]),
        &uniform,
    );
    describe(
        "boustrophedon snake",
        &schema,
        &NestedLoops::boustrophedon(vec![8, 8], &[0, 1]),
        &uniform,
    );
    describe(
        "Z-order (Figure 2a)",
        &schema,
        &ZOrderCurve::square(3),
        &uniform,
    );
    describe("Gray-code curve", &schema, &GrayCurve::square(3), &uniform);
    describe(
        "Hilbert (Figure 2b)",
        &schema,
        &HilbertCurve::square(3),
        &uniform,
    );

    let p = LatticePath::from_dims(shape.clone(), vec![1, 0, 1, 0, 1, 0])?;
    describe(
        "lattice path (alternating levels)",
        &schema,
        &path_curve(&schema, &p),
        &uniform,
    );
    describe(
        "snaked lattice path (Figure 5 family)",
        &schema,
        &snaked_path_curve(&schema, &p),
        &uniform,
    );

    // And the recommendation for this workload, to close the loop.
    let rec = recommend(&schema, &uniform);
    println!(
        "optimal for the uniform workload: {} (snaked, cost {:.3})",
        rec.optimal_path, rec.snaked_cost
    );
    Ok(())
}
