//! The paper's §2 walk-through on the Figure 1 toy warehouse: jeans ×
//! location, queries Q1/Q2 as grid queries, and the cost of the candidate
//! clusterings.
//!
//! ```text
//! cargo run --release --example toy_paper_example
//! ```

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::snake::snaked_expected_cost;
use snakes_sandwiches::prelude::*;

fn main() -> Result<()> {
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);

    println!("Star schema (Figure 1):");
    for d in schema.dims() {
        println!(
            "  {}: {} leaves, fanouts {:?}",
            d.name(),
            d.leaf_count(),
            d.fanouts()
        );
    }

    // Q1: sum of sales for levi's (a type = level-1 jeans node) in NY (a
    // state = level-1 location node): query class (1,1).
    // Q2: sales by city for ONT: selects a whole state = class (0, 1) per
    // returned group; as a single grid fetch it reads class (1, 1)'s cells
    // grouped by city — the paper files it under (jeans=any, location=ONT).
    let q1 = Class(vec![1, 1]);
    let q2 = Class(vec![2, 1]);
    println!("\nGrid queries: Q1 ∈ class {q1}, Q2 ∈ class {q2}");

    let p1 = LatticePath::from_dims(shape.clone(), vec![1, 1, 0, 0])?;
    let p2 = LatticePath::from_dims(shape.clone(), vec![1, 0, 1, 0])?;
    println!("\nStrategies: P1 = {p1}\n            P2 = {p2}");
    println!(
        "\nPer-query cost (fragments): Q1 under P1 = {}, under P2 = {}",
        model.dist(&p1, &q1),
        model.dist(&p2, &q1)
    );

    for (i, w) in [
        Workload::uniform(shape.clone()),
        Workload::uniform_excluding(
            shape.clone(),
            &[Class(vec![0, 1]), Class(vec![0, 2]), Class(vec![1, 1])],
        )?,
        Workload::uniform_over(
            shape.clone(),
            &[
                Class(vec![0, 0]),
                Class(vec![0, 1]),
                Class(vec![0, 2]),
                Class(vec![1, 2]),
            ],
        )?,
    ]
    .iter()
    .enumerate()
    {
        println!("\nWorkload {} (paper §2):", i + 1);
        println!(
            "  cost(P1) = {:.4}   cost(~P1) = {:.4}",
            model.expected_cost(&p1, w),
            snaked_expected_cost(&model, &p1, w)
        );
        println!(
            "  cost(P2) = {:.4}   cost(~P2) = {:.4}",
            model.expected_cost(&p2, w),
            snaked_expected_cost(&model, &p2, w)
        );
        let rec = recommend(&schema, w);
        println!(
            "  optimal lattice path: {} → snaked cost {:.4}",
            rec.optimal_path, rec.snaked_cost
        );
    }

    // The physical orders, drawn like the paper's figures.
    println!("\nP1's clustering of the 4x4 grid (dim 1 fastest):");
    print_grid(&path_curve(&schema, &p1));
    println!("\n~P2's snaked clustering:");
    print_grid(&snaked_path_curve(&schema, &p2));
    Ok(())
}

fn print_grid(lin: &impl Linearization) {
    let n = lin.num_cells();
    let mut grid = vec![vec![0u64; 4]; 4];
    for r in 0..n {
        let c = lin.coords_vec(r);
        grid[c[0] as usize][c[1] as usize] = r + 1;
    }
    for row in grid {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:>2}")).collect();
        println!("  {}", cells.join(" "));
    }
}
