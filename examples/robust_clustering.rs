//! Clustering under uncertainty: k-best alternatives, minimax robustness
//! over candidate workloads, cost explanation, and the re-clustering
//! break-even analysis.
//!
//! ```text
//! cargo run --release --example robust_clustering
//! ```

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::{k_best_lattice_paths, optimal_lattice_path};
use snakes_sandwiches::core::explain::explain;
use snakes_sandwiches::core::snake::snaked_expected_cost;
use snakes_sandwiches::prelude::*;

fn main() -> Result<()> {
    // The TPC-D shape again, analytic only (no data needed).
    let schema = StarSchema::new(vec![
        Hierarchy::new("parts", vec![40, 5])?,
        Hierarchy::new("supplier", vec![10])?,
        Hierarchy::new("time", vec![12, 7])?,
    ])?;
    let model = CostModel::of_schema(&schema);
    let shape = model.shape().clone();

    // Two plausible futures the DBA can't decide between: time-series
    // reporting (full time scans for individual parts) vs part-catalog
    // investigation (full parts scans within one month). They pull the
    // clustering in opposite directions.
    let mut w1 = vec![0.2 / (shape.num_classes() - 1) as f64; shape.num_classes()];
    w1[shape.rank(&Class(vec![0, 0, 2]))] = 0.8;
    let reporting = Workload::from_weights(shape.clone(), w1)?;
    let mut w2 = vec![0.2 / (shape.num_classes() - 1) as f64; shape.num_classes()];
    w2[shape.rank(&Class(vec![2, 0, 0]))] = 0.8;
    let investigation = Workload::from_weights(shape.clone(), w2)?;

    // Committing to either future is risky:
    for (name, w) in [("reporting", &reporting), ("investigation", &investigation)] {
        let dp = optimal_lattice_path(&model, w);
        let own = snaked_expected_cost(&model, &dp.path, w);
        let other = if name == "reporting" {
            &investigation
        } else {
            &reporting
        };
        let cross = snaked_expected_cost(&model, &dp.path, other);
        println!(
            "optimal for {name:<13}: {path} — {own:.2} seeks there, {cross:.2} on the other future",
            path = dp.path
        );
    }

    // The minimax pick hedges:
    let robust = robust_recommend(&model, &[reporting.clone(), investigation.clone()], 5);
    println!(
        "\nminimax choice: {} — worst case {:.2} seeks (per-future: {:?})",
        robust.path,
        robust.worst_case_cost,
        robust
            .per_workload_cost
            .iter()
            .map(|c| (c * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // If the best path is physically inconvenient, the runner-ups are close:
    println!("\ntop-4 alternatives for the reporting future:");
    for (i, (p, c)) in k_best_lattice_paths(&model, &reporting, 4)
        .iter()
        .enumerate()
    {
        println!("  #{:<2} {} — {:.3} seeks", i + 1, p, c);
    }

    // Where does the robust layout's cost go?
    let exp = explain(&model, &robust.path, &reporting);
    println!("\ncost breakdown under the reporting future (top 70%):");
    for c in exp.top_contributors(0.7) {
        println!(
            "  class {:?}: p={:.3}, {:.2} fragments/query, {:.0}% of cost",
            c.class,
            c.probability,
            c.snaked_cost,
            100.0 * c.share
        );
    }

    // Suppose the workload settles on pure reporting: when does
    // re-clustering the ~600k-record, ~9200-page table pay off?
    let decision = snakes_sandwiches::core::advisor::reorg_decision(
        &model,
        &robust.path,
        &reporting,
        2.0 * 9200.0, // read + write every page once
    );
    println!(
        "\ndrift to pure reporting: keep = {:.2}, re-cluster = {:.2} seeks/query",
        decision.keep_cost, decision.reorg_cost
    );
    match decision.break_even_queries {
        Some(b) => println!(
            "re-clustering amortizes after {b:.0} queries → new path {}",
            decision.new_path
        ),
        None => println!("current clustering is already optimal for the new workload"),
    }
    Ok(())
}
