//! End-to-end TPC-D experiment (paper §6): generate the LineItem grid, pick
//! a workload, find the optimal snaked clustering, pack real record bytes
//! along it, and compare measured seeks/blocks against the row-major
//! baselines.
//!
//! ```text
//! cargo run --release --example tpcd_clustering
//! ```

use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::{class_stats, DiskModel};
use snakes_sandwiches::tpcd::{generate_cells, paper_workload_7, LineItem};

fn main() {
    let config = TpcdConfig {
        records: 150_000,
        ..TpcdConfig::small()
    };
    let schema = config.star_schema();
    println!(
        "TPC-D grid: {:?} = {} cells, {} records (~{} MB)",
        schema.grid_shape(),
        schema.num_cells(),
        config.records,
        config.records * config.record_size / (1 << 20)
    );

    // The paper's workload 7: rollup-heavy on parts and time, drill-down
    // heavy on supplier.
    let nw = paper_workload_7(&config);
    println!("workload: #{} ({})", nw.number, nw.label());

    let mut ev = Evaluator::new(config);
    let eval = ev.evaluate(&nw.workload);
    println!("\nmeasured on packed pages (normalized blocks, seeks/query):");
    println!(
        "  optimal path   {:<28}: {:.2}, {:.2}",
        eval.optimal.path.to_string(),
        eval.optimal.avg_normalized_blocks,
        eval.optimal.avg_seeks
    );
    println!(
        "  snaked optimal {:<28}: {:.2}, {:.2}",
        "(same path, snaked)",
        eval.snaked_optimal.avg_normalized_blocks,
        eval.snaked_optimal.avg_seeks
    );
    println!(
        "  best row-major : {:.2}, {:.2}",
        eval.best_row_major().avg_normalized_blocks,
        eval.best_row_major().avg_seeks
    );
    println!(
        "  worst row-major: {:.2}, {:.2}",
        eval.worst_row_major().avg_normalized_blocks,
        eval.worst_row_major().avg_seeks
    );

    // Latency estimates under two device models.
    let per_query = |seeks: f64, blocks_norm: f64, disk: DiskModel| {
        // Rough: blocks_norm * min pages; use seeks directly.
        seeks * disk.seek_ms + blocks_norm * disk.transfer_ms_per_page
    };
    for (name, disk) in [("1999 HDD", DiskModel::HDD_1999), ("NVMe", DiskModel::NVME)] {
        let snaked = per_query(
            eval.snaked_optimal.avg_seeks,
            eval.snaked_optimal.avg_normalized_blocks,
            disk,
        );
        let worst = per_query(
            eval.worst_row_major().avg_seeks,
            eval.worst_row_major().avg_normalized_blocks,
            disk,
        );
        println!(
            "  {name}: snaked optimal ≈ {snaked:.2} ms/query vs worst row-major ≈ {worst:.2} ms/query ({:.1}x)",
            worst / snaked
        );
    }

    // Bulk-load a real byte image of the first pages along the recommended
    // order, to show the storage path end-to-end.
    let cells = generate_cells(ev.config());
    let curve = snaked_path_curve(ev.schema(), &eval.optimal.path);
    let storage = ev.config().storage();
    let mut file: Vec<u8> = Vec::new();
    let mut seq = 0u64;
    let mut written = 0u64;
    'outer: for r in 0..curve.num_cells() {
        let c = curve.coords_vec(r);
        for _ in 0..cells.count(&c) {
            let rec = LineItem::synthetic(c[0] as u32, c[1] as u32, c[2] as u32, seq);
            file.extend_from_slice(&rec.encode());
            seq += 1;
            written += 1;
            if written >= 3 * storage.records_per_page() {
                break 'outer;
            }
        }
    }
    println!(
        "\nmaterialized the first {written} records ({} bytes ≈ 3 pages) in disk order",
        file.len()
    );
    let first = LineItem::decode(&file[..125]);
    println!(
        "first record on disk: part {}, supplier {}, month {}",
        first.part, first.supplier, first.ship_month
    );

    // Per-class detail for the three most selective classes.
    let layout = PackedLayout::pack(&curve, &cells, storage);
    println!("\nper-class detail under the snaked optimal clustering:");
    for class in [
        Class(vec![0, 0, 0]),
        Class(vec![1, 0, 1]),
        Class(vec![2, 1, 2]),
    ] {
        let s = class_stats(ev.schema(), &curve, &layout, &class);
        println!(
            "  class {}: {} queries ({} non-empty), {:.2} seeks, {:.2} normalized blocks",
            s.class, s.queries, s.non_empty_queries, s.avg_seeks, s.avg_normalized_blocks
        );
    }
}
