//! The adaptive-DBA scenario the paper's introduction motivates: watch the
//! query stream, compile class statistics, and re-derive the clustering
//! when the workload drifts.
//!
//! ```text
//! cargo run --release --example workload_advisor
//! ```

use snakes_sandwiches::core::stats::WorkloadEstimator;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::tpcd::paper_queries;

fn main() -> Result<()> {
    let config = TpcdConfig::default();
    let schema = config.star_schema();
    let shape = LatticeShape::of_schema(&schema);

    // Phase 1: the shop runs mostly monthly-promotion queries (TPC-D Q14)
    // and per-supplier monthly rollups (Q15).
    let mut estimator = WorkloadEstimator::new(shape.clone());
    let templates = paper_queries();
    println!("TPC-D LineItem query templates as grid classes:");
    for q in &templates {
        println!(
            "  Q{:<2} {:<22} -> class {}",
            q.tpcd_number, q.name, q.class
        );
    }
    for q in &templates {
        let weight = match q.tpcd_number {
            14 => 500,
            15 => 300,
            _ => 25,
        };
        estimator.observe_many(&q.class, weight)?;
    }
    let w1 = estimator.to_workload_smoothed(1.0)?;
    let rec1 = recommend(&schema, &w1);
    println!(
        "\nphase 1 ({} queries observed): cluster along {}",
        estimator.total(),
        rec1.optimal_path
    );
    println!(
        "  expected seeks {:.3} (vs best row-major {:.3}, worst {:.3})",
        rec1.snaked_cost,
        rec1.best_row_major_cost(),
        rec1.worst_row_major_cost()
    );

    // Phase 2: the analysts arrive — year-level profit rollups dominate
    // (Q5, Q9): the workload drifts toward coarse classes.
    for q in &templates {
        let weight = match q.tpcd_number {
            5 | 9 => 2_000,
            _ => 10,
        };
        estimator.observe_many(&q.class, weight)?;
    }
    let w2 = estimator.to_workload_smoothed(1.0)?;
    let rec2 = recommend(&schema, &w2);
    println!(
        "\nphase 2 ({} queries observed): cluster along {}",
        estimator.total(),
        rec2.optimal_path
    );
    println!(
        "  expected seeks {:.3} (vs best row-major {:.3}, worst {:.3})",
        rec2.snaked_cost,
        rec2.best_row_major_cost(),
        rec2.worst_row_major_cost()
    );

    // What would keeping the stale clustering cost under the new workload?
    let model = snakes_sandwiches::core::cost::CostModel::of_schema(&schema);
    let stale = snaked_expected_cost(&model, &rec1.optimal_path, &w2);
    println!(
        "\nkeeping phase-1 clustering under phase-2 workload: {:.3} expected \
         seeks ({:.1}% worse than re-clustering)",
        stale,
        100.0 * (stale / rec2.snaked_cost - 1.0)
    );
    if rec1.optimal_path != rec2.optimal_path {
        println!("=> the advisor recommends re-clustering.");
    } else {
        println!("=> the old clustering is still optimal; no action needed.");
    }
    Ok(())
}
