//! A simulated analyst session (§1: "a typical OLAP session involving
//! operations such as cube, rollup, and drilldown, repeatedly invokes
//! various grid queries"): navigate the cube, let the estimator learn the
//! session's class mix, and compare clusterings on the session replayed
//! against real pages.
//!
//! ```text
//! cargo run --release --example olap_session
//! ```

use snakes_sandwiches::core::session::{OlapOp, OlapSession};
use snakes_sandwiches::core::stats::WorkloadEstimator;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::TableFile;
use snakes_sandwiches::tpcd::{generate_cells, warehouse, LineItem};

fn main() -> Result<()> {
    let config = TpcdConfig {
        records: 50_000,
        ..TpcdConfig::small()
    };
    let wh = warehouse(&config);
    let schema = wh.schema();

    // The analyst's morning: start from the cube, drill into a year, walk
    // the months, compare manufacturers, repeat for the next year.
    let mut session = OlapSession::new(&wh);
    let script: Vec<OlapOp> = {
        let mut ops = vec![OlapOp::Slice(2, "1993".into())];
        for _ in 0..6 {
            ops.push(OlapOp::DrillDown(2)); // into a month
            ops.push(OlapOp::NextSibling(2));
            ops.push(OlapOp::NextSibling(2));
            ops.push(OlapOp::RollUp(2)); // back to the year
            ops.push(OlapOp::NextSibling(2)); // next year
        }
        ops.push(OlapOp::Reset);
        for _ in 0..4 {
            ops.push(OlapOp::DrillDown(0)); // manufacturer level
            ops.push(OlapOp::NextSibling(0));
            ops.push(OlapOp::RollUp(0));
        }
        ops
    };
    for op in &script {
        session.apply(op)?;
    }
    println!(
        "session issued {} grid queries; last: {}",
        session.history().len(),
        session.current_query().describe(&wh)
    );

    // Learn the workload from the session.
    let mut est = WorkloadEstimator::new(wh.shape());
    for q in session.history() {
        est.observe(&q.class())?;
    }
    let workload = est.to_workload_smoothed(0.5)?;
    let rec = recommend(&schema, &workload);
    println!(
        "learned workload over {} classes; recommended path {}",
        workload.support().len(),
        rec.optimal_path
    );

    // Replay the session against two physical layouts.
    let cells = generate_cells(&config);
    let replay = |path: &LatticePath, label: &str| -> Result<()> {
        let curve = snaked_path_curve(&schema, path);
        let mut table = TableFile::create_in_memory(&curve, &cells, config.storage(), |c, i| {
            LineItem::synthetic(c[0] as u32, c[1] as u32, c[2] as u32, i)
                .encode()
                .to_vec()
        })
        .expect("in-memory load");
        for q in session.history() {
            table
                .scan(&curve, &q.ranges(&wh), |_| {})
                .expect("in-memory scan");
        }
        println!(
            "  {label:<24}: {} seeks, {} pages over the session",
            table.seeks_performed(),
            table.pages_read()
        );
        Ok(())
    };
    println!("\nreplaying the session:");
    replay(&rec.optimal_path, "recommended (snaked)")?;
    let shape = wh.shape();
    replay(
        &LatticePath::row_major(shape.clone(), &[0, 1, 2])?,
        "row-major parts-first",
    )?;
    replay(
        &LatticePath::row_major(shape, &[2, 1, 0])?,
        "row-major time-first",
    )?;

    // The same verdict from the measurement engine, through the one
    // evaluation-options builder shared by every measuring API (0 threads =
    // one per core; results are bit-identical to the serial path).
    let opts = EvalOptions::new().threads(0);
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    let layout = PackedLayout::pack(&curve, &cells, config.storage());
    let stats = workload_stats_opts(&schema, &curve, &layout, &workload, &opts);
    println!(
        "\nmeasured on the learned workload: {:.2} avg seeks, {:.2} avg normalized blocks",
        stats.avg_seeks, stats.avg_normalized_blocks
    );
    Ok(())
}
