//! The full user journey with named dimensions: define a warehouse, ask
//! questions in member vocabulary, watch the estimator learn the workload,
//! re-cluster, bulk-load a real page file, and run the same queries against
//! physical bytes.
//!
//! ```text
//! cargo run --release --example warehouse_queries
//! ```

use snakes_sandwiches::core::stats::WorkloadEstimator;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::TableFile;
use snakes_sandwiches::tpcd::{generate_cells, warehouse, LineItem};

fn main() -> Result<()> {
    let config = TpcdConfig {
        records: 60_000,
        ..TpcdConfig::small()
    };
    let wh = warehouse(&config);
    let schema = wh.schema();
    println!("dimensions:");
    for d in wh.dims() {
        println!(
            "  {}: {} leaves, {} levels",
            d.name(),
            d.hierarchy().leaf_count(),
            d.levels()
        );
    }

    // The analysts' question templates, in their own vocabulary.
    let questions = [
        (
            "monthly sales of one part",
            vec![("parts", "PART#1-1"), ("time", "1992-01")],
        ),
        (
            "a manufacturer's 1994",
            vec![("parts", "MFR#2"), ("time", "1994")],
        ),
        ("one supplier's whole history", vec![("supplier", "SUPP#3")]),
        ("everything in 1995", vec![("time", "1995")]),
    ];
    let mut est = WorkloadEstimator::new(wh.shape());
    let mut parsed = Vec::new();
    for (name, sels) in &questions {
        let mut b = wh.query();
        for (dim, member) in sels {
            b = b.select(dim, member)?;
        }
        let q = b.build();
        println!("  `{name}` -> {} = class {}", q.describe(&wh), q.class());
        parsed.push(q);
    }
    // The mix: mostly per-part monthly lookups, some rollups.
    for (q, weight) in parsed.iter().zip([600u64, 150, 100, 50]) {
        est.observe_many(&q.class(), weight)?;
    }
    let workload = est.to_workload_smoothed(1.0)?;

    let rec = recommend(&schema, &workload);
    println!(
        "\nrecommended clustering: {} (snaked), expected {:.2} seeks/query",
        rec.optimal_path, rec.snaked_cost
    );

    // Bulk-load real bytes in that order and answer the questions from the
    // page file.
    let cells = generate_cells(&config);
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    let mut table = TableFile::create_in_memory(&curve, &cells, config.storage(), |coords, i| {
        LineItem::synthetic(coords[0] as u32, coords[1] as u32, coords[2] as u32, i)
            .encode()
            .to_vec()
    })
    .expect("in-memory load cannot fail on IO");
    println!(
        "loaded {} records into {} pages",
        table.layout().total_records(),
        table.layout().total_pages()
    );

    println!("\nanswering from the page file:");
    for ((name, _), q) in questions.iter().zip(&parsed) {
        let ranges = q.ranges(&wh);
        let mut revenue = 0.0;
        let mut rows = 0u64;
        let cost = table
            .scan(&curve, &ranges, |rec| {
                let li = LineItem::decode(rec);
                revenue += li.extended_price * (1.0 - li.discount);
                rows += 1;
            })
            .expect("in-memory scan cannot fail on IO");
        println!(
            "  {name}: {rows} rows, revenue {revenue:.0}, {} seeks, {} pages",
            cost.seeks, cost.blocks
        );
    }
    println!(
        "\ntotal physical I/O: {} pages, {} seeks",
        table.pages_read(),
        table.seeks_performed()
    );
    Ok(())
}
