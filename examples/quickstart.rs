//! Quickstart: recommend a disk clustering for a star schema and workload.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snakes_sandwiches::prelude::*;

fn main() -> Result<()> {
    // A small sales warehouse: products roll up into categories, stores
    // into regions (3 categories x 8 products, 4 regions x 16 stores).
    let schema = StarSchema::new(vec![
        Hierarchy::new("product", vec![8, 3])?,
        Hierarchy::new("store", vec![16, 4])?,
    ])?;
    let shape = LatticeShape::of_schema(&schema);

    // The DBA knows the query mix by class: 40% of queries ask for one
    // product across a region, 30% for a category in one store, the rest
    // spread evenly.
    let mut weights = vec![1.0; shape.num_classes()];
    weights[shape.rank(&Class(vec![0, 1]))] += 40.0;
    weights[shape.rank(&Class(vec![1, 0]))] += 30.0;
    let workload = Workload::from_weights(shape.clone(), weights)?;

    // One call: the optimal lattice path, snaked — within 2x of the global
    // optimum (paper §5.3).
    let rec = recommend(&schema, &workload);

    println!("schema grid: {:?} cells", schema.grid_shape());
    println!("recommended clustering (snaked lattice path):");
    println!("  loops, innermost first:");
    for step in rec.optimal_path.steps() {
        println!(
            "    loop over {} level-{} siblings (fanout {})",
            schema.dim(step.dim).name(),
            step.level,
            schema.dim(step.dim).fanout(step.level)
        );
    }
    println!("  lattice path: {}", rec.optimal_path);
    println!();
    println!("expected seeks per query:");
    println!("  un-snaked optimal path : {:.3}", rec.plain_cost);
    println!("  snaked (recommended)   : {:.3}", rec.snaked_cost);
    for (order, plain, snaked) in &rec.row_majors {
        let names: Vec<&str> = order.iter().map(|&d| schema.dim(d).name()).collect();
        println!(
            "  row-major {:<22}: {plain:.3} (snaked {snaked:.3})",
            names.join(" then ")
        );
    }
    println!();
    println!(
        "guarantee: within a factor of {} of the globally optimal strategy",
        rec.guarantee_factor
    );
    println!(
        "savings vs worst row-major: {:.1}%",
        100.0 * rec.savings_vs_worst_row_major()
    );

    // Materialize the physical order if you want to bulk-load a file:
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    let first: Vec<_> = (0..5).map(|r| curve.coords_vec(r)).collect();
    println!("first cells on disk: {first:?}");
    Ok(())
}
