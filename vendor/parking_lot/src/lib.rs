//! Offline stand-in for the `parking_lot` crate.
//!
//! The container this workspace builds in has no access to crates.io, so
//! the handful of external dependencies are vendored as minimal local
//! implementations of exactly the API surface the workspace uses. This one
//! provides `Mutex` and `RwLock` with parking_lot's poison-free API,
//! backed by `std::sync` (poisoning is translated into propagating the
//! panic payloadless lock, matching parking_lot's behaviour of simply not
//! poisoning).

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutex with parking_lot's API: `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdMutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a panic in another thread does not poison the
    /// lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard(g),
            Err(p) => MutexGuard(p.into_inner()),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        use std::sync::TryLockError;
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(p.into_inner())),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized>(StdMutexGuard<'a, T>);

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A reader-writer lock with parking_lot's API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: StdRwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = Mutex::new(0u64);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
