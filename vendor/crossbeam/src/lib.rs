//! Offline stand-in for the `crossbeam` crate (see `vendor/parking_lot`
//! for why the workspace vendors its dependencies).
//!
//! Only `crossbeam::thread::scope` is provided — the workspace uses
//! crossbeam exclusively for scoped fork/join parallelism. Since Rust
//! 1.63, `std::thread::scope` offers the same guarantees, so this is a
//! thin adapter that preserves crossbeam's call shape:
//!
//! ```
//! crossbeam::thread::scope(|s| {
//!     let h = s.spawn(|_| 40 + 2);
//!     assert_eq!(h.join().unwrap(), 42);
//! })
//! .unwrap();
//! ```

/// Scoped threads (crossbeam's `crossbeam_utils::thread` module shape).
pub mod thread {
    use std::marker::PhantomData;

    /// The result type of [`scope`]: `Err` carries a captured panic payload.
    pub type ScopeResult<R> = Result<R, Box<dyn std::any::Any + Send + 'static>>;

    /// A scope handle passed to the closure; `spawn` launches threads that
    /// must finish before `scope` returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread, joinable within the scope.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
        _marker: PhantomData<&'scope ()>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> ScopeResult<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. Crossbeam passes the scope back into the
        /// closure (enabling nested spawns); most callers ignore it
        /// (`|_| ...`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            let handle = self.inner.spawn(move || {
                let s = Scope { inner: inner_scope };
                f(&s)
            });
            ScopedJoinHandle {
                inner: handle,
                _marker: PhantomData,
            }
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all spawned threads are joined before `scope` returns.
    ///
    /// Matches crossbeam's signature: the closure's value comes back as
    /// `Ok`; if the closure itself panics the panic propagates (std scope
    /// semantics), so the `Err` arm exists only for API compatibility.
    ///
    /// # Errors
    ///
    /// Never returns `Err` in this std-backed implementation: unjoined
    /// child panics propagate as panics instead (std scope semantics).
    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| {
            let wrapper = Scope { inner: s };
            f(&wrapper)
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_returns() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = crate::thread::scope(|s| {
            let mid = data.len() / 2;
            let (lo, hi) = data.split_at(mid);
            let h1 = s.spawn(|_| lo.iter().sum::<u64>());
            let h2 = s.spawn(|_| hi.iter().sum::<u64>());
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }
}
