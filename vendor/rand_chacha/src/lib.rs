//! Offline stand-in for `rand_chacha` (see `vendor/parking_lot` for why
//! the workspace vendors its dependencies).
//!
//! Implements `ChaCha8Rng`: the real ChaCha stream cipher with 8
//! double-rounds, keyed from a 32-byte seed, emitting the keystream as
//! sequential little-endian `u32` words. Seeded streams are fully
//! deterministic and of cryptographic quality; they are not guaranteed
//! word-for-word identical to the upstream crate's stream layout.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, seeded by 32 bytes.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unconsumed word index in `buf`; 16 means "refill needed".
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: the counter alone addresses the stream.
        let initial = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column + diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut b = ChaCha8Rng::seed_from_u64(0x5EED);
        let mut c = ChaCha8Rng::seed_from_u64(0x5EEE);
        let xs: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_look_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
