//! Offline stand-in for `serde_derive` (see `vendor/parking_lot` for why
//! the workspace vendors its dependencies).
//!
//! Derives the vendored serde's [`Serialize`]/[`Deserialize`] traits
//! (which render through the `Content` tree) for the shapes this
//! workspace uses: structs with named fields, newtype/tuple structs, and
//! enums with unit variants. Honors the field attributes `#[serde(skip)]`,
//! `#[serde(default)]`, `#[serde(default = "path")]`, and
//! `#[serde(skip_serializing_if = "path")]`.
//!
//! Implemented directly over `proc_macro::TokenStream` — no `syn`/`quote`
//! — since the grammar needed here is tiny: the parser never has to
//! understand field *types*, only names and attributes; generated code
//! lets inference do the rest.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field-level `#[serde(...)]` attributes.
#[derive(Default, Clone)]
struct FieldAttrs {
    skip: bool,
    /// `Some(None)` for bare `default`, `Some(Some(path))` for `default = "path"`.
    default: Option<Option<String>>,
    skip_serializing_if: Option<String>,
}

struct NamedField {
    name: String,
    attrs: FieldAttrs,
}

enum Shape {
    /// `struct S { a: T, ... }`
    Named(Vec<NamedField>),
    /// `struct S(T, ...);` — the count of fields.
    Tuple(usize),
    /// `enum E { A, B, ... }` — unit variant names.
    UnitEnum(Vec<String>),
}

struct Input {
    name: String,
    /// Raw generics text including angle brackets (e.g. `<'a>`), or empty.
    generics: String,
    shape: Shape,
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                if f.attrs.skip {
                    continue;
                }
                let push = format!(
                    "__m.push((::std::string::String::from({:?}), \
                     ::serde::Serialize::to_content(&self.{})));",
                    f.name, f.name
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    pushes.push_str(&format!("if !(({pred})(&self.{})) {{ {push} }}\n", f.name));
                } else {
                    pushes.push_str(&push);
                    pushes.push('\n');
                }
            }
            format!(
                "let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Content)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Content::Map(__m)"
            )
        }
        Shape::Tuple(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{}::{v} => {:?}", parsed.name, v))
                .collect();
            format!(
                "::serde::Content::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(", ")
            )
        }
    };
    let code = format!(
        "impl{g} ::serde::Serialize for {name}{g} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}",
        g = parsed.generics,
        name = parsed.name,
    );
    code.parse().expect("derived Serialize impl parses")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    let body = match &parsed.shape {
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let init = if f.attrs.skip {
                    "::std::default::Default::default()".to_string()
                } else {
                    match &f.attrs.default {
                        None => format!("::serde::__private::required(__c, {:?})?", f.name),
                        Some(None) => {
                            format!("::serde::__private::defaulted(__c, {:?})?", f.name)
                        }
                        Some(Some(path)) => format!(
                            "match ::serde::__private::field(__c, {:?}) {{ \
                                 ::std::option::Option::Some(__v) if !__v.is_null() => \
                                     ::serde::Deserialize::from_content(__v)?, \
                                 _ => ({path})() \
                             }}",
                            f.name
                        ),
                    }
                };
                inits.push_str(&format!("{}: {init},\n", f.name));
            }
            format!(
                "::serde::__private::expect_map(__c, {:?})?;\n\
                 ::std::result::Result::Ok(Self {{\n{inits}}})",
                parsed.name
            )
        }
        Shape::Tuple(1) => {
            "::std::result::Result::Ok(Self(::serde::Deserialize::from_content(__c)?))".to_string()
        }
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __c.as_array().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array\"))?;\n\
                 if __items.len() != {n} {{ return ::std::result::Result::Err(\
                     ::serde::Error::custom(\"wrong tuple arity\")); }}\n\
                 ::std::result::Result::Ok(Self({}))",
                items.join(", ")
            )
        }
        Shape::UnitEnum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    format!(
                        "::std::option::Option::Some({:?}) => \
                         ::std::result::Result::Ok({}::{v}),",
                        v, parsed.name
                    )
                })
                .collect();
            format!(
                "match __c.as_str() {{\n{}\n_ => ::std::result::Result::Err(\
                     ::serde::Error::custom(\"unknown variant for {}\")),\n}}",
                arms.join("\n"),
                parsed.name
            )
        }
    };
    let code = format!(
        "impl{g} ::serde::Deserialize for {name}{g} {{\n\
             fn from_content(__c: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}",
        g = parsed.generics,
        name = parsed.name,
    );
    code.parse().expect("derived Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes, visibility, and doc comments down to the
    // `struct` / `enum` keyword.
    let mut is_enum = false;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // `#` + bracket group
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                // `pub(crate)` and friends: skip the paren group.
                if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    i += 1;
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                i += 1;
                break;
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                is_enum = true;
                i += 1;
                break;
            }
            _ => i += 1,
        }
    }

    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;

    // Optional generics: capture `<...>` verbatim (lifetimes only in this
    // workspace, so the same text serves both impl positions).
    let mut generics = String::new();
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let mut depth = 0i32;
        loop {
            let t = tokens.get(i).expect("unterminated generics");
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    _ => {}
                }
            }
            generics.push_str(&t.to_string());
            // A lifetime is two tokens (`'` + ident); a space between them
            // would re-parse as a char literal.
            if !matches!(&t, TokenTree::Punct(p) if p.as_char() == '\'') {
                generics.push(' ');
            }
            i += 1;
            if depth == 0 {
                break;
            }
        }
    }

    let shape = if is_enum {
        let body = expect_group(&tokens[i], Delimiter::Brace);
        Shape::UnitEnum(parse_unit_variants(body))
    } else {
        match &tokens[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("expected struct body, found {other}"),
        }
    };

    Input {
        name,
        generics,
        shape,
    }
}

fn expect_group(t: &TokenTree, delim: Delimiter) -> TokenStream {
    match t {
        TokenTree::Group(g) if g.delimiter() == delim => g.stream(),
        other => panic!("expected {delim:?} group, found {other}"),
    }
}

/// Parses `#[serde(...)]` arguments out of one attribute group's tokens.
fn parse_serde_args(stream: TokenStream, attrs: &mut FieldAttrs) {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < tokens.len() {
        let key = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                i += 1;
                continue;
            }
            other => panic!("unexpected token in #[serde(...)]: {other}"),
        };
        i += 1;
        let value = if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            let lit = tokens
                .get(i)
                .unwrap_or_else(|| panic!("missing value for serde attr `{key}`"))
                .to_string();
            i += 1;
            // Strip the literal's surrounding quotes: `"Option::is_none"`.
            Some(lit.trim_matches('"').to_string())
        } else {
            None
        };
        match key.as_str() {
            "skip" => attrs.skip = true,
            "default" => attrs.default = Some(value),
            "skip_serializing_if" => {
                attrs.skip_serializing_if = Some(value.expect("skip_serializing_if needs a path"));
            }
            other => panic!("unsupported serde attribute `{other}` (vendored serde_derive)"),
        }
    }
}

/// Walks a brace-group body collecting named fields and their serde attrs.
fn parse_named_fields(stream: TokenStream) -> Vec<NamedField> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Attributes before the field.
        let mut attrs = FieldAttrs::default();
        loop {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '#' => {
                    let group = expect_group(&tokens[i + 1], Delimiter::Bracket);
                    let inner: Vec<TokenTree> = group.into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                parse_serde_args(args.stream(), &mut attrs);
                            }
                        }
                    }
                    i += 2;
                }
                TokenTree::Ident(id) if id.to_string() == "pub" => {
                    i += 1;
                    if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                    {
                        i += 1;
                    }
                }
                _ => break,
            }
        }
        // Field name and `:`.
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected field name, found {other}"),
        };
        i += 2; // name + ':'
                // Skip the type: everything up to a comma at angle-bracket depth 0.
                // (Commas inside `(...)`/`[...]` are hidden inside Groups; only
                // generic-argument commas need the depth tracking.)
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(NamedField { name, attrs });
    }
    fields
}

/// Counts fields of a tuple struct (top-level commas; types may nest).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    for t in &tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    count
}

/// Collects unit variant names; any payload is unsupported.
fn parse_unit_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2, // variant docs/attrs
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            TokenTree::Ident(id) => {
                variants.push(id.to_string());
                i += 1;
                if let Some(TokenTree::Group(_)) = tokens.get(i) {
                    panic!("vendored serde_derive supports unit enum variants only");
                }
            }
            other => panic!("unexpected token in enum body: {other}"),
        }
    }
    variants
}
