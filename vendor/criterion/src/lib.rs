//! Offline stand-in for `criterion` (see `vendor/parking_lot` for why the
//! workspace vendors its dependencies).
//!
//! Keeps the harness API (`Criterion`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box`) and actually
//! measures: each benchmark is warmed up, auto-calibrated to a sample
//! duration, timed over several samples, and reported as median
//! time-per-iteration (plus throughput when declared). No statistical
//! regression analysis or HTML reports — stdout only.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 20,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and parameter.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function.into()),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Per-iteration timing driver handed to benchmark closures.
pub struct Bencher {
    /// Measured samples: (iterations, elapsed).
    samples: Vec<(u64, Duration)>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, running it enough times per sample for a stable
    /// wall-clock reading.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up and calibration: find an iteration count giving samples
        // of at least ~2ms (capped so slow benchmarks still finish).
        let mut iters = 1u64;
        let target = Duration::from_millis(2);
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= target || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push((iters, start.elapsed()));
        }
    }

    /// Median nanoseconds per iteration across samples.
    fn median_ns(&self) -> f64 {
        let mut per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|(iters, d)| d.as_nanos() as f64 / *iters as f64)
            .collect();
        if per_iter.is_empty() {
            return f64::NAN;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).unwrap());
        per_iter[per_iter.len() / 2]
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(3);
        self
    }

    /// Declares per-iteration throughput for derived rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(id.into(), f);
        self
    }

    /// Runs a benchmark parameterized by an input.
    pub fn bench_with_input<I>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let ns = bencher.median_ns();
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if ns > 0.0 => {
                format!("  ({:.2} Melem/s)", n as f64 / ns * 1_000.0)
            }
            Some(Throughput::Bytes(n)) if ns > 0.0 => {
                format!("  ({:.2} MiB/s)", n as f64 / ns * 1e9 / (1 << 20) as f64)
            }
            _ => String::new(),
        };
        println!("{}/{}: {}{rate}", self.name, id.id, format_ns(ns));
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

impl Criterion {
    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut g = self.benchmark_group("bench");
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// Declares a benchmark group runner (criterion's macro shape).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_times_a_closure() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
