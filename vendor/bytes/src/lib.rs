//! Offline stand-in for the `bytes` crate (see `vendor/parking_lot` for
//! why the workspace vendors its dependencies).
//!
//! Implements the subset the workspace uses: `Bytes`, `BytesMut`, and the
//! `Buf`/`BufMut` traits with the little-endian fixed-width accessors.

use std::sync::Arc;

/// A cheaply cloneable, immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::new(data.to_vec()),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::new(v) }
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            data: Vec::with_capacity(cap),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: Arc::new(self.data),
        }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Read-side cursor over a byte source, advancing as values are taken.
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write-side sink for fixed-width values and slices.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Writes a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Writes a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le_values() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(7);
        buf.put_u64_le(1 << 40);
        buf.put_f64_le(0.25);
        buf.put_slice(b"xy");
        let frozen = buf.freeze();
        assert_eq!(frozen.len(), 22);
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32_le(), 7);
        assert_eq!(r.get_u64_le(), 1 << 40);
        assert_eq!(r.get_f64_le(), 0.25);
        assert_eq!(r, b"xy");
    }
}
