//! Offline stand-in for `serde_json` (see `vendor/parking_lot` for why
//! the workspace vendors its dependencies).
//!
//! The vendored `serde` already reduces serialization to one JSON-shaped
//! tree ([`serde::Content`]); this crate supplies the text layer: a
//! recursive-descent parser and compact/pretty printers. `Value` is a
//! re-export of that same tree, so parsed documents, serialized structs,
//! and ad-hoc JSON all share one representation.

/// Generic JSON value — the shared content tree.
pub use serde::Content as Value;
/// Parse/convert error.
pub use serde::Error;

/// Deserializes a `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = Parser::new(s).parse_document()?;
    T::from_content(&value)
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` kept for API fidelity.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for tree-shaped data; `Result` kept for API fidelity.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_content(), Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a [`Value`] tree.
///
/// # Errors
///
/// Infallible here; `Result` kept for API fidelity.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_content())
}

/// Rebuilds a typed value from a [`Value`] tree.
///
/// # Errors
///
/// Returns [`Error`] on a shape mismatch.
pub fn from_value<T: serde::Deserialize>(value: Value) -> Result<T, Error> {
    T::from_content(&value)
}

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form and keeps
                // the ".0" on whole numbers, matching serde_json's output.
                out.push_str(&format!("{x:?}"));
            } else {
                // serde_json renders non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Self {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn parse_document(&mut self) -> Result<Value, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(self.err("trailing characters"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(what))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            b'-' | b'0'..=b'9' => self.parse_number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{', "expected '{'")?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "expected ':'")?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{08}'),
                        b'f' => s.push('\u{0c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: look for a following low
                            // surrogate escape and combine.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) == Some(b"\\u") {
                                    let lo_hex = self
                                        .bytes
                                        .get(self.pos + 2..self.pos + 6)
                                        .ok_or_else(|| self.err("bad surrogate"))?;
                                    let lo_hex = std::str::from_utf8(lo_hex)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    let lo = u32::from_str_radix(lo_hex, 16)
                                        .map_err(|_| self.err("bad surrogate"))?;
                                    self.pos += 6;
                                    let combined =
                                        0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(code)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid codepoint"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            // Integer literal: keep exact when it fits.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_prints_document() {
        let doc = r#"{"a": 1, "b": [2.5, -3, "x\ny"], "c": null, "d": true}"#;
        let v: Value = from_str(doc).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0].as_f64(), Some(2.5));
        assert_eq!(v["b"][1].as_i64(), Some(-3));
        assert_eq!(v["b"][2].as_str(), Some("x\ny"));
        assert!(v["c"].is_null());
        assert_eq!(v["d"].as_bool(), Some(true));

        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);

        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_fidelity() {
        let x = 2.0f64;
        assert_eq!(to_string(&x).unwrap(), "2.0");
        let y: f64 = from_str("0.6666666666666666").unwrap();
        assert_eq!(to_string(&y).unwrap(), "0.6666666666666666");
        let z: f64 = from_str("1e3").unwrap();
        assert_eq!(z, 1000.0);
        let n: u64 = from_str("18446744073709551615").unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn typed_roundtrip_via_std_impls() {
        let v = vec![(1usize, 0.5f64), (2, 0.25)];
        let json = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}
