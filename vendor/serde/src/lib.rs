//! Offline stand-in for `serde` (see `vendor/parking_lot` for why the
//! workspace vendors its dependencies).
//!
//! Real serde abstracts over data formats with a visitor architecture;
//! this workspace only ever round-trips through JSON, so the stand-in
//! collapses the design to one concrete data model: [`Content`], a
//! JSON-shaped tree. [`Serialize`] renders a value into a `Content`;
//! [`Deserialize`] rebuilds a value from one. `serde_json` then only has
//! to print and parse `Content`.
//!
//! The `Content` type doubles as `serde_json::Value` (re-exported there),
//! which is why its JSON-flavored accessors (`as_f64`, indexing, …) live
//! here: `serde_json` depends on this crate, so the shared tree type must
//! sit at the bottom of the stack.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The JSON-shaped data model everything serializes through.
///
/// Integer and float numbers are kept distinct (`U64`/`I64` vs `F64`) so
/// integers round-trip exactly and floats print with a decimal point, as
/// real serde_json does.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Content {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer (positive values normalize to [`Content::U64`]).
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Content>),
    /// JSON object; insertion order is preserved.
    Map(Vec<(String, Content)>),
}

/// Deserialization error: a human-readable message, optionally tagged
/// with the field path where the mismatch occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// Prefixes the message with a field or index context.
    #[must_use]
    pub fn in_context(self, ctx: &str) -> Self {
        Self {
            msg: format!("{ctx}: {}", self.msg),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Content`] data model.
pub trait Serialize {
    /// The value as a content tree.
    fn to_content(&self) -> Content;
}

/// Rebuilds `Self` from the [`Content`] data model.
pub trait Deserialize: Sized {
    /// Parses the value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the tree's shape or types don't match.
    fn from_content(content: &Content) -> Result<Self, Error>;
}

/// Deserialization-related re-exports, mirroring serde's module layout.
pub mod de {
    /// Marker for types deserializable without borrowing from the input.
    /// In this owned-only stand-in every [`Deserialize`](super::Deserialize)
    /// qualifies.
    pub trait DeserializeOwned: super::Deserialize {}

    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Serialization-related re-exports, mirroring serde's module layout.
pub mod ser {
    pub use super::{Error, Serialize};
}

fn type_name(c: &Content) -> &'static str {
    match c {
        Content::Null => "null",
        Content::Bool(_) => "bool",
        Content::U64(_) | Content::I64(_) => "integer",
        Content::F64(_) => "number",
        Content::Str(_) => "string",
        Content::Seq(_) => "array",
        Content::Map(_) => "object",
    }
}

fn mismatch(expected: &str, got: &Content) -> Error {
    Error::custom(format!("expected {expected}, found {}", type_name(got)))
}

// ---------------------------------------------------------------------------
// JSON-value accessors (the `serde_json::Value` API surface).
// ---------------------------------------------------------------------------

impl Content {
    /// The value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether this is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Content::Null)
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Content::F64(x) => Some(x),
            Content::U64(x) => Some(x as f64),
            Content::I64(x) => Some(x as f64),
            _ => None,
        }
    }

    /// The value as a `u64` (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Content::U64(x) => Some(x),
            Content::I64(x) if x >= 0 => Some(x as u64),
            _ => None,
        }
    }

    /// The value as an `i64` (exact only).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Content::I64(x) => Some(x),
            Content::U64(x) => i64::try_from(x).ok(),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Content::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Content>> {
        match self {
            Content::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's entry list.
    pub fn as_object(&self) -> Option<&Vec<(String, Content)>> {
        match self {
            Content::Map(entries) => Some(entries),
            _ => None,
        }
    }
}

static NULL: Content = Content::Null;

impl std::ops::Index<&str> for Content {
    type Output = Content;
    /// Object field access; missing keys and non-objects yield `null`
    /// (serde_json's behavior).
    fn index(&self, key: &str) -> &Content {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Content {
    type Output = Content;
    /// Array element access; out-of-range and non-arrays yield `null`.
    fn index(&self, i: usize) -> &Content {
        match self {
            Content::Seq(items) => items.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! content_partial_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Content {
            fn eq(&self, other: &$t) -> bool {
                #[allow(clippy::cast_lossless, clippy::cast_precision_loss)]
                match *self {
                    Content::U64(x) => x as f64 == *other as f64,
                    Content::I64(x) => x as f64 == *other as f64,
                    Content::F64(x) => x == *other as f64,
                    _ => false,
                }
            }
        }
        impl PartialEq<Content> for $t {
            fn eq(&self, other: &Content) -> bool {
                other == self
            }
        }
    )*};
}

content_partial_eq_num!(f64, i32, i64, u64, u32, usize);

impl PartialEq<&str> for Content {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Content {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}

impl Deserialize for Content {
    fn from_content(content: &Content) -> Result<Self, Error> {
        Ok(content.clone())
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_bool().ok_or_else(|| mismatch("bool", content))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let raw = match *content {
                    Content::U64(x) => Some(x),
                    Content::I64(x) if x >= 0 => Some(x as u64),
                    // Accept integral floats: JSON writers may emit `3.0`.
                    Content::F64(x) if x >= 0.0 && x.fract() == 0.0 && x <= u64::MAX as f64 => {
                        Some(x as u64)
                    }
                    _ => None,
                };
                raw.and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| mismatch(stringify!($t), content))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v >= 0 {
                    Content::U64(v as u64)
                } else {
                    Content::I64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let raw = match *content {
                    Content::I64(x) => Some(x),
                    Content::U64(x) => i64::try_from(x).ok(),
                    Content::F64(x)
                        if x.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&x) =>
                    {
                        Some(x as i64)
                    }
                    _ => None,
                };
                raw.and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| mismatch(stringify!($t), content))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content.as_f64().ok_or_else(|| mismatch("number", content))
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, Error> {
        #[allow(clippy::cast_possible_truncation)]
        content
            .as_f64()
            .map(|x| x as f32)
            .ok_or_else(|| mismatch("number", content))
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, Error> {
        content
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| mismatch("string", content))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let items = content
            .as_array()
            .ok_or_else(|| mismatch("array", content))?;
        items
            .iter()
            .enumerate()
            .map(|(i, item)| T::from_content(item).map_err(|e| e.in_context(&format!("[{i}]"))))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(content: &Content) -> Result<Self, Error> {
                let items = content.as_array().ok_or_else(|| mismatch("array", content))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected array of {expected}, found {}",
                        items.len()
                    )));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for std::ops::Range<T> {
    fn to_content(&self) -> Content {
        // serde serializes Range as a {"start", "end"} struct.
        Content::Map(vec![
            ("start".to_owned(), self.start.to_content()),
            ("end".to_owned(), self.end.to_content()),
        ])
    }
}

impl<T: Deserialize> Deserialize for std::ops::Range<T> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let start = content
            .get("start")
            .ok_or_else(|| Error::custom("missing field `start`"))?;
        let end = content
            .get("end")
            .ok_or_else(|| Error::custom("missing field `end`"))?;
        Ok(T::from_content(start)?..T::from_content(end)?)
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output (HashMap iteration order varies).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_object()
            .ok_or_else(|| mismatch("object", content))?;
        entries
            .iter()
            .map(|(k, v)| {
                V::from_content(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_context(k))
            })
            .collect()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, Error> {
        let entries = content
            .as_object()
            .ok_or_else(|| mismatch("object", content))?;
        entries
            .iter()
            .map(|(k, v)| {
                V::from_content(v)
                    .map(|v| (k.clone(), v))
                    .map_err(|e| e.in_context(k))
            })
            .collect()
    }
}

/// Support helpers used by `serde_derive`'s generated code. Not part of
/// serde's public API; the derive output references them by path.
pub mod __private {
    use super::{Content, Deserialize, Error};

    /// Looks up a struct field in a decoded object.
    pub fn field<'c>(content: &'c Content, name: &str) -> Option<&'c Content> {
        content.get(name)
    }

    /// Decodes a required field.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the field is missing or mistyped.
    pub fn required<T: Deserialize>(content: &Content, name: &str) -> Result<T, Error> {
        match content.get(name) {
            Some(v) => T::from_content(v).map_err(|e| e.in_context(name)),
            None => Err(Error::custom(format!("missing field `{name}`"))),
        }
    }

    /// Decodes an optional field, falling back to `Default` when absent
    /// or null (`#[serde(default)]` semantics).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the field is present but mistyped.
    pub fn defaulted<T: Deserialize + Default>(content: &Content, name: &str) -> Result<T, Error> {
        match content.get(name) {
            Some(Content::Null) | None => Ok(T::default()),
            Some(v) => T::from_content(v).map_err(|e| e.in_context(name)),
        }
    }

    /// Asserts the content is an object (struct deserialization entry).
    ///
    /// # Errors
    ///
    /// Returns [`Error`] for non-objects.
    pub fn expect_map(content: &Content, ty: &str) -> Result<(), Error> {
        if matches!(content, Content::Map(_)) {
            Ok(())
        } else {
            Err(Error::custom(format!("{ty}: expected object")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_impl_roundtrips() {
        let v = vec![(1usize, 2u64), (3, 4)];
        let c = v.to_content();
        let back: Vec<(usize, u64)> = Deserialize::from_content(&c).unwrap();
        assert_eq!(back, v);

        let r = 3u64..9;
        let back: std::ops::Range<u64> = Deserialize::from_content(&r.to_content()).unwrap();
        assert_eq!(back, 3..9);

        let o: Option<f64> = None;
        assert_eq!(o.to_content(), Content::Null);
        let s: Option<String> = Deserialize::from_content(&Content::Str("hi".into())).unwrap();
        assert_eq!(s.as_deref(), Some("hi"));
    }

    #[test]
    fn value_accessors() {
        let v = Content::Map(vec![
            ("a".into(), Content::U64(3)),
            ("b".into(), Content::Seq(vec![Content::F64(0.5)])),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["a"].as_u64(), Some(3));
        assert_eq!(v["b"][0].as_f64(), Some(0.5));
        assert!(v["missing"].is_null());
        assert!(v.get("missing").is_none());
        assert_eq!(v["b"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn numeric_coercions() {
        let x: u64 = Deserialize::from_content(&Content::F64(4.0)).unwrap();
        assert_eq!(x, 4);
        let y: f64 = Deserialize::from_content(&Content::U64(7)).unwrap();
        assert_eq!(y, 7.0);
        assert!(<u64 as Deserialize>::from_content(&Content::F64(4.5)).is_err());
        assert!(<u32 as Deserialize>::from_content(&Content::U64(1 << 40)).is_err());
    }
}
