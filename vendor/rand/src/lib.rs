//! Offline stand-in for the `rand` crate, version 0.8 API (see
//! `vendor/parking_lot` for why the workspace vendors its dependencies).
//!
//! Provides the exact subset the workspace uses: the `RngCore` /
//! `SeedableRng` / `Rng` traits (with `gen`, `gen_range`), and
//! `distributions::{Distribution, Standard, Uniform-free WeightedIndex}`.
//! Conversions follow rand 0.8's conventions (`f64` from the top 53 bits
//! of a `u64`; `seed_from_u64` via the PCG32 expansion), so seeded streams
//! stay deterministic and statistically well-behaved.

/// Low-level generator interface: raw 32/64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let chunk = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// The per-generator seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with PCG32 steps (rand_core 0.6's
    /// algorithm), so the same `u64` seeds the same stream.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Sampling of typed values from raw bits (rand's `Standard` distribution,
/// expressed directly as a helper trait on the output type).
pub trait StandardSample {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand 0.8: 53 random mantissa bits mapped into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Unbiased via rejection on the top of the u64 space.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return self.start + (v % span) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                if lo == 0 && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_from(rng)
            }
        }
    )*};
}

impl_sample_range_uint!(u64, u32, usize, u16, u8);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of an inferable type (rand's `Standard`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Draws a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Distributions over typed values.
pub mod distributions {
    /// A distribution samples values of type `T` from an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from building a [`WeightedIndex`].
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights were supplied.
        NoItem,
        /// A weight was negative or non-finite.
        InvalidWeight,
        /// All weights were zero.
        AllWeightsZero,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                WeightedError::NoItem => write!(f, "no weights"),
                WeightedError::InvalidWeight => write!(f, "invalid weight"),
                WeightedError::AllWeightsZero => write!(f, "all weights zero"),
            }
        }
    }

    impl std::error::Error for WeightedError {}

    /// Samples indices `0..n` proportionally to `f64` weights, by inverse
    /// CDF over the cumulative sums.
    #[derive(Debug, Clone)]
    pub struct WeightedIndex {
        cumulative: Vec<f64>,
        total: f64,
    }

    impl WeightedIndex {
        /// Builds the sampler from weights.
        ///
        /// # Errors
        ///
        /// Returns [`WeightedError`] on empty, negative, non-finite, or
        /// all-zero weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<f64>,
        {
            use std::borrow::Borrow;
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w = *w.borrow();
                if !(w.is_finite() && w >= 0.0) {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() {
                return Err(WeightedError::NoItem);
            }
            if total <= 0.0 {
                return Err(WeightedError::AllWeightsZero);
            }
            Ok(Self { cumulative, total })
        }
    }

    impl Distribution<usize> for WeightedIndex {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> usize {
            let x: f64 = super::StandardSample::sample_standard(rng);
            let target = x * self.total;
            // First index whose cumulative weight exceeds the draw; clamp
            // for the (measure-zero) x == 1.0 - ulp edge.
            let i = self.cumulative.partition_point(|&c| c <= target);
            i.min(self.cumulative.len() - 1)
        }
    }

    /// Marker for the `Standard` distribution (API compatibility).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    impl<T: super::StandardSample> Distribution<T> for Standard {
        fn sample<R: super::Rng + ?Sized>(&self, rng: &mut R) -> T {
            T::sample_standard(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::*;

    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SplitMix(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SplitMix(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
        }
        let w = rng.gen_range(5usize..=5);
        assert_eq!(w, 5);
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SplitMix(3);
        let d = WeightedIndex::new([1.0, 0.0, 3.0]).unwrap();
        let mut counts = [0u32; 3];
        for _ in 0..4000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 2);
        assert!(WeightedIndex::new::<[f64; 0]>([]).is_err());
        assert!(WeightedIndex::new([0.0]).is_err());
        assert!(WeightedIndex::new([-1.0]).is_err());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        struct Raw([u8; 8]);
        impl SeedableRng for Raw {
            type Seed = [u8; 8];
            fn from_seed(seed: [u8; 8]) -> Self {
                Raw(seed)
            }
        }
        let a = Raw::seed_from_u64(42);
        let b = Raw::seed_from_u64(42);
        let c = Raw::seed_from_u64(43);
        assert_eq!(a.0, b.0);
        assert_ne!(a.0, c.0);
    }
}
