//! Offline stand-in for `proptest` (see `vendor/parking_lot` for why the
//! workspace vendors its dependencies).
//!
//! Implements the property-testing surface the workspace uses: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_shuffle` /
//! `prop_filter_map`, range and tuple strategies, `any::<T>()`,
//! [`collection::vec`], a small regex-class string strategy, the
//! [`proptest!`] macro, and a [`test_runner::TestRunner`]. Failing inputs
//! are reported but **not shrunk** — a real difference from upstream that
//! only affects debugging ergonomics, not soundness: every property that
//! passes here passes there and vice versa, case generation being seeded
//! deterministically per test.

use std::fmt;

pub mod test_runner;

/// Generation-time rejection (filtered value, failed assumption).
#[derive(Debug, Clone)]
pub struct Reject(pub &'static str);

/// Deterministic generator state (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Unbiased via rejection at the top of the range.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    ///
    /// # Errors
    ///
    /// Returns [`Reject`] when the draw should be discarded (filters,
    /// assumptions); the runner retries with fresh randomness.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject>;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a value-dependent second strategy.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps values where `f` returns `Some`, unwrapped.
    fn prop_filter_map<T, F: Fn(Self::Value) -> Option<T>>(
        self,
        whence: &'static str,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap {
            inner: self,
            whence,
            f,
        }
    }

    /// Keeps values satisfying a predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Shuffles generated collections (Fisher–Yates).
    fn prop_shuffle(self) -> Shuffle<Self>
    where
        Self: Sized,
    {
        Shuffle { inner: self }
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> Result<T, Reject> {
        Ok(self.0.clone())
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Reject> {
        let first = self.inner.generate(rng)?;
        (self.f)(first).generate(rng)
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> Option<T>> Strategy for FilterMap<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        // Retry locally before rejecting the whole case: filters here are
        // expected to pass most of the time.
        for _ in 0..64 {
            if let Some(v) = (self.f)(self.inner.generate(rng)?) {
                return Ok(v);
            }
        }
        Err(Reject(self.whence))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Reject> {
        for _ in 0..64 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Reject(self.whence))
    }
}

/// See [`Strategy::prop_shuffle`].
pub struct Shuffle<S> {
    inner: S,
}

impl<S: Strategy<Value = Vec<T>>, T> Strategy for Shuffle<S> {
    type Value = Vec<T>;
    fn generate(&self, rng: &mut TestRng) -> Result<Vec<T>, Reject> {
        let mut items = self.inner.generate(rng)?;
        for i in (1..items.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
        Ok(items)
    }
}

// ---------------------------------------------------------------------------
// Primitive strategies: ranges, any, tuples, strings.
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                Ok(self.start + rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok(lo + rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                Ok((self.start as i64 + rng.below(span) as i64) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> Result<$t, Reject> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i64 - lo as i64) as u64;
                if span == u64::MAX {
                    return Ok(rng.next_u64() as $t);
                }
                Ok((lo as i64 + rng.below(span + 1) as i64) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws a value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// The canonical strategy for `T` (`proptest::arbitrary::any`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> Result<T, Reject> {
        Ok(T::arbitrary(rng))
    }
}

/// The full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Reject> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// A `&str` is a regex-flavored string strategy. Supported subset:
/// literal characters, character classes `[a-z0-9,.=-]` (ranges plus
/// literals; a trailing `-` is literal), and `{n}` / `{lo,hi}`
/// repetition. This covers the patterns used in the workspace's tests.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> Result<String, Reject> {
        let segments = parse_pattern(self);
        let mut out = String::new();
        for seg in &segments {
            let span = seg.max_reps - seg.min_reps;
            let reps = seg.min_reps
                + if span == 0 {
                    0
                } else {
                    rng.below(span as u64 + 1) as usize
                };
            for _ in 0..reps {
                let i = rng.below(seg.chars.len() as u64) as usize;
                out.push(seg.chars[i]);
            }
        }
        Ok(out)
    }
}

struct PatternSegment {
    chars: Vec<char>,
    min_reps: usize,
    max_reps: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternSegment> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut segments = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed character class")
                + i;
            let mut set = Vec::new();
            let body = &chars[i + 1..close];
            let mut j = 0;
            while j < body.len() {
                // `a-z` range (a `-` at the end is a literal).
                if j + 2 < body.len() && body[j + 1] == '-' {
                    for c in body[j]..=body[j + 2] {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(body[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = if chars[i] == '\\' && i + 1 < chars.len() {
                i += 1;
                chars[i]
            } else {
                chars[i]
            };
            i += 1;
            vec![c]
        };
        // Optional `{n}` / `{lo,hi}` quantifier.
        let (min_reps, max_reps) = if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed quantifier")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("quantifier lower bound"),
                    hi.trim().parse().expect("quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("quantifier count");
                    (n, n)
                }
            }
        } else {
            (1, 1)
        };
        segments.push(PatternSegment {
            chars: set,
            min_reps,
            max_reps,
        });
    }
    segments
}

/// Collection strategies.
pub mod collection {
    use super::{Reject, Strategy, TestRng};

    /// Sizes acceptable to [`vec`]: exact, `lo..hi`, or `lo..=hi`.
    pub trait IntoSizeRange {
        /// Lower and inclusive upper bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            assert!(self.start < self.end, "empty size range");
            (self.start, self.end - 1)
        }
    }

    impl IntoSizeRange for std::ops::RangeInclusive<usize> {
        fn bounds(&self) -> (usize, usize) {
            (*self.start(), *self.end())
        }
    }

    /// Strategy for `Vec<T>` with element strategy `element` and a size
    /// in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min_len, max_len) = size.bounds();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Reject> {
            let span = self.max_len - self.min_len;
            let len = self.min_len
                + if span == 0 {
                    0
                } else {
                    rng.below(span as u64 + 1) as usize
                };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed or discarded test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed with this message.
    Fail(String),
    /// The case was discarded (`prop_assume!` and friends).
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl fmt::Display) -> Self {
        TestCaseError::Fail(msg.to_string())
    }

    /// A discard with the given reason.
    pub fn reject(msg: impl fmt::Display) -> Self {
        TestCaseError::Reject(msg.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Everything needed by typical property tests.
pub mod prelude {
    pub use crate::collection;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, Strategy,
        TestCaseError,
    };
}

/// Asserts inside a property; failure fails the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`: {}",
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                l, r
            )));
        }
    }};
}

/// Discards the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Declares property tests. Each `fn` body runs once per generated case;
/// bindings draw from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { config = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let __strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &__config,
                &__strategy,
                |($($pat,)+)| { $body Ok(()) },
            );
        }
        $crate::__proptest_fns! { config = $cfg; $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn range_and_vec_strategies() {
        let mut rng = crate::TestRng::new(1);
        let s = collection::vec(2u64..=4, 1..=3);
        for _ in 0..100 {
            let v = s.generate(&mut rng).unwrap();
            assert!((1..=3).contains(&v.len()));
            assert!(v.iter().all(|&x| (2..=4).contains(&x)));
        }
    }

    #[test]
    fn string_pattern_strategy() {
        let mut rng = crate::TestRng::new(2);
        let s = "[a-c,.=-]{0,5}";
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng).unwrap();
            assert!(v.len() <= 5);
            assert!(v.chars().all(|c| "abc,.=-".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(
            (n, flip) in (1u64..50).prop_flat_map(|n| (Just(n), any::<bool>()))
        ) {
            prop_assume!(n != 13);
            let doubled = n * 2;
            prop_assert!(doubled >= n);
            prop_assert_eq!(doubled % 2, 0);
            let _ = flip;
        }

        #[test]
        fn shuffle_preserves_multiset(v in Just(vec![1usize, 2, 3, 4]).prop_shuffle()) {
            let mut sorted = v.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, vec![1usize, 2, 3, 4]);
        }
    }
}
