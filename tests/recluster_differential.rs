//! Differential + crash suite for online reclustering.
//!
//! Two halves:
//!
//! * A property sweep over random grids (≤ 4-D) and every curve family:
//!   a migration frozen at **every** chunk boundary must serve seeded
//!   query boxes from the mixed layout byte-identically to the pure old
//!   table, and the finished table must match a one-shot `merge_into`
//!   rewrite byte-for-byte, at the new layout's exact query cost.
//!
//! * A crash sweep over the service engine: a reclustering daemon is
//!   killed at every write-operation boundary (and at seeded random
//!   ones), rebooted, and must recover the job at a durable chunk
//!   boundary on the fault-free run's exact fence trajectory, then
//!   finish the migration to the oracle's byte-identical terminal
//!   status. Reproduce a failing seed with:
//!
//! ```text
//! SNAKES_CRASH_SEED=<seed> cargo test --release \
//!     --test recluster_differential -- --nocapture
//! ```

use proptest::prelude::*;
use snakes_sandwiches::core::schema::StarSchema;
use snakes_sandwiches::curves::{
    CompactHilbert, GrayCurve, Linearization, NestedLoops, ZOrderCurve,
};
use snakes_sandwiches::service::protocol::{MeasureSpec, ReclusterSpec, SchemaSpec, StrategySpec};
use snakes_sandwiches::service::{Deadline, Engine, Media, Request, Response};
use snakes_sandwiches::storage::{
    CellData, CrashConfig, CrashStore, Migration, StorageConfig, TableFile,
};
use std::io::Cursor;
use std::ops::Range;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Property half: freeze at every chunk boundary, on every curve family.
// ---------------------------------------------------------------------------

fn cfg() -> StorageConfig {
    StorageConfig {
        page_size: 256,
        record_size: 64,
    }
}

/// (coords, i)-tagged record so any byte mismatch pinpoints its cell.
fn record(coords: &[u64], i: u64) -> Vec<u8> {
    let mut r = vec![0u8; 64];
    let mut tag = i.wrapping_add(0x9E37_79B9);
    for (d, &c) in coords.iter().enumerate() {
        tag = tag
            .wrapping_mul(6364136223846793005)
            .wrapping_add(c ^ (d as u64) << 7);
    }
    r[..8].copy_from_slice(&tag.to_le_bytes());
    r[8] = i as u8;
    r
}

/// Pseudo-random per-cell record counts in 0..5, never all-empty.
fn seeded_counts(seed: u64, n: u64) -> Vec<u64> {
    let mut counts: Vec<u64> = (0..n)
        .map(|i| {
            (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
                >> 33)
                % 5
        })
        .collect();
    counts[0] = counts[0].max(1);
    counts
}

/// A few seeded query boxes over the grid (always includes the full box).
fn seeded_queries(seed: u64, extents: &[u64]) -> Vec<Vec<Range<u64>>> {
    let mut out = vec![extents.iter().map(|&e| 0..e).collect::<Vec<_>>()];
    let mut h = seed | 1;
    for _ in 0..3 {
        let q = extents
            .iter()
            .map(|&e| {
                h = h.wrapping_mul(0x2545_F491_4F6C_DD1D);
                let a = (h >> 33) % e;
                h ^= h >> 29;
                let b = a + 1 + (h >> 45) % (e - a);
                a..b.min(e)
            })
            .collect();
        out.push(q);
    }
    out
}

/// Every curve family on this grid, labeled. Mirrors the executor
/// differential suite: structural nested loops (plain and snaked, two
/// orders) plus the space-filling families' brute-force fallbacks.
fn curve_family(extents: &[u64]) -> Vec<(String, Box<dyn Linearization>)> {
    let k = extents.len();
    let fwd: Vec<usize> = (0..k).collect();
    let rev: Vec<usize> = (0..k).rev().collect();
    let mut out: Vec<(String, Box<dyn Linearization>)> = Vec::new();
    for order in [fwd, rev] {
        out.push((
            format!("row_major{order:?}"),
            Box::new(NestedLoops::row_major(extents.to_vec(), &order)),
        ));
        out.push((
            format!("boustrophedon{order:?}"),
            Box::new(NestedLoops::boustrophedon(extents.to_vec(), &order)),
        ));
    }
    out.push((
        "compact_hilbert".into(),
        Box::new(CompactHilbert::new(extents.to_vec())),
    ));
    // The bit-interleaving families require power-of-two extents.
    if extents.iter().all(|e| e.is_power_of_two()) {
        out.push((
            "zorder".into(),
            Box::new(ZOrderCurve::new(extents.to_vec())),
        ));
        out.push(("gray".into(), Box::new(GrayCurve::new(extents.to_vec()))));
    }
    out
}

fn build(lin: &impl Linearization, cells: &CellData) -> TableFile<Cursor<Vec<u8>>> {
    TableFile::create_in_memory(lin, cells, cfg(), record).unwrap()
}

fn collect_sorted(
    table: &mut TableFile<Cursor<Vec<u8>>>,
    lin: &impl Linearization,
    ranges: &[Range<u64>],
) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    table
        .scan(lin, ranges, |rec| out.push(rec.to_vec()))
        .unwrap();
    out.sort_unstable();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For a random grid, a random (old, new) curve pair, and random
    /// data: freeze the migration at every chunk boundary, and at each
    /// freeze the mixed-layout scan of every seeded query box must be
    /// byte-identical to the pure old layout's. The finished table must
    /// equal the one-shot rewrite, at the new layout's exact cost.
    #[test]
    fn every_chunk_boundary_serves_bit_identically(
        extents in proptest::collection::vec(1u64..=4, 1..=4),
        seed in any::<u64>(),
    ) {
        let family = curve_family(&extents);
        let old_at = (seed % family.len() as u64) as usize;
        let new_at = ((seed / 7) % family.len() as u64) as usize;
        let (old_name, old_lin) = &family[old_at];
        let (new_name, new_lin) = &family[new_at];
        let old_lin: &dyn Linearization = old_lin.as_ref();
        let new_lin: &dyn Linearization = new_lin.as_ref();
        let n: u64 = extents.iter().product();
        let cells = CellData::from_counts(extents.clone(), seeded_counts(seed, n));
        let queries = seeded_queries(seed, &extents);

        let mut pure_old = build(&old_lin, &cells);
        let mut merged = pure_old
            .merge_into(Cursor::new(Vec::new()), &old_lin, &new_lin)
            .unwrap();
        let mut mig = Migration::begin(
            build(&old_lin, &cells),
            Cursor::new(Vec::new()),
            &new_lin,
            &cells,
            1, // 1-page chunks: the maximum number of boundaries to freeze at
        )
        .unwrap();
        loop {
            for q in &queries {
                let mut mixed = Vec::new();
                let cost = mig
                    .scan_mixed(&old_lin, &new_lin, q, |_, rec| {
                        mixed.push(rec.to_vec())
                    })
                    .unwrap();
                prop_assert_eq!(cost.records, mixed.len() as u64);
                mixed.sort_unstable();
                prop_assert_eq!(
                    &mixed,
                    &collect_sorted(&mut pure_old, &old_lin, q),
                    "mixed scan diverged: {} -> {} at fence {} query {:?}",
                    old_name, new_name, mig.fence(), q
                );
            }
            if mig.step(&old_lin, &new_lin).unwrap().done {
                break;
            }
        }
        // Finished: byte-identical to the one-shot rewrite, same cost.
        let full: Vec<Range<u64>> = extents.iter().map(|&e| 0..e).collect();
        let final_cost = mig
            .scan_mixed(&old_lin, &new_lin, &full, |_, _| {})
            .unwrap();
        let (mut table, _old) = mig.finish(&new_lin, &cells).unwrap();
        prop_assert_eq!(
            collect_sorted(&mut table, &new_lin, &full),
            collect_sorted(&mut merged, &new_lin, &full),
            "finished table diverged from merge_into: {} -> {}",
            old_name, new_name
        );
        let pure_cost = table.scan(&new_lin, &full, |_| {}).unwrap();
        prop_assert_eq!(final_cost, pure_cost, "done migration must cost as the pure new layout");
    }
}

// ---------------------------------------------------------------------------
// Crash half: SIGKILL the daemon mid-migration at every write boundary.
// ---------------------------------------------------------------------------

const JOB: &str = "torture";

fn schedule_count() -> u64 {
    if let Ok(n) = std::env::var("SNAKES_CRASH_SCHEDULES") {
        return n.parse().expect("SNAKES_CRASH_SCHEDULES must be a number");
    }
    if cfg!(debug_assertions) {
        40
    } else {
        400
    }
}

fn start_request() -> Request {
    let shape = StarSchema::paper_toy();
    let mut req = Request::recluster(
        JOB,
        SchemaSpec::of(&shape),
        snakes_sandwiches::service::protocol::WorkloadSpec {
            probs: None,
            classes: None,
            marginals: None,
        },
        ReclusterSpec {
            from: Some(StrategySpec::snaked_path(vec![0, 0, 1, 1])),
            to: Some(StrategySpec::snaked_path(vec![0, 1, 0, 1])),
            chunk_pages: 1,
        },
    )
    .with_measure(MeasureSpec {
        records_per_cell: 3,
        page_size: 256,
        record_size: 64,
        physical: false,
    });
    req.id = 1;
    req
}

fn status_request() -> Request {
    let mut req = Request::recluster_status(JOB);
    req.id = 2;
    req
}

/// Drives `engine` exactly as the serving loop does: start the job, then
/// tick one chunk at a time with a WAL flush per tick and a forced
/// checkpoint midway (so checkpoint writes are kill points too). Returns
/// the start response (acknowledged or not).
fn run_script(engine: &Engine) -> Response {
    let start = engine.handle(&start_request(), &Deadline::none());
    for i in 0..64 {
        if engine.tick_reclusters(0, 1) == 0 {
            break;
        }
        let _ = engine.flush_wal();
        if i == 3 {
            let _ = engine.checkpoint();
        }
    }
    start
}

/// The fault-free oracle: every fence the migration passes through, in
/// order, plus the terminal status line.
struct Oracle {
    fences: Vec<u64>,
    final_status: String,
}

fn oracle() -> Oracle {
    let engine = Engine::new();
    let start = engine.handle(&start_request(), &Deadline::none());
    assert!(start.ok, "oracle start must be clean: {:?}", start.error);
    let mut fences = vec![0];
    while engine.tick_reclusters(0, 1) > 0 {
        let status = engine.handle(&status_request(), &Deadline::none());
        fences.push(status.recluster.as_ref().expect("status body").fence);
    }
    let final_status = engine.handle(&status_request(), &Deadline::none());
    let body = final_status.recluster.as_ref().unwrap();
    assert_eq!(body.state, "done", "oracle must finish");
    assert_eq!(body.fence, body.total_cells);
    Oracle {
        fences,
        final_status: final_status.to_line(),
    }
}

/// One torture round: run the migration over a crash-armed store, reboot
/// the surviving bytes, and hold the invariants: recovery never fails,
/// a recovered job sits exactly on the oracle's fence trajectory, and
/// finishing it lands on the oracle's byte-identical terminal status.
fn check_crash_point(config: CrashConfig, oracle: &Oracle) -> bool {
    let seed = config.seed;
    let diag = format!(
        "reproduce with:\n  SNAKES_CRASH_SEED={seed} cargo test --release \
         --test recluster_differential -- --nocapture"
    );
    let store = Arc::new(CrashStore::with_crash(config));
    let started = match Engine::new().with_durability(Media::Store(Arc::clone(&store))) {
        Ok(engine) => run_script(&engine).ok,
        Err(_) => false,
    };
    let crashed = store.crashed();
    let rebooted = Arc::new(CrashStore::reopen(&store));
    let engine = Engine::new()
        .with_durability(Media::Store(rebooted))
        .unwrap_or_else(|e| panic!("recovery must never fail, got {e}\n{diag}"));
    let status = engine.handle(&status_request(), &Deadline::none());
    if !status.ok {
        // The job may only be missing if the start was never durable —
        // impossible once the start request was acknowledged and no
        // crash intervened.
        assert!(crashed || !started, "job vanished without a crash\n{diag}");
        return crashed;
    }
    let body = status.recluster.as_ref().expect("status body");
    assert!(
        oracle.fences.contains(&body.fence),
        "recovered fence {} is not a chunk boundary of the oracle run {:?}\n{diag}",
        body.fence,
        oracle.fences
    );
    // Resume serving: every tick probes the mixed layout against the
    // synthetic generator (fail-stop on any byte divergence), and the
    // finished job must be indistinguishable from the fault-free run.
    for _ in 0..64 {
        if engine.tick_reclusters(0, 1) == 0 {
            break;
        }
        let _ = engine.flush_wal();
    }
    let done = engine.handle(&status_request(), &Deadline::none());
    assert_eq!(
        done.to_line(),
        oracle.final_status,
        "terminal status diverged from the fault-free oracle\n{diag}"
    );
    crashed
}

/// Exhaustive sweep: learn the script's write-op budget fault-free, then
/// kill at every single write boundary.
#[test]
fn every_write_boundary_resumes_the_migration() {
    let oracle = oracle();
    let probe = Arc::new(CrashStore::new());
    let engine = Engine::new()
        .with_durability(Media::Store(Arc::clone(&probe)))
        .unwrap();
    assert!(run_script(&engine).ok);
    let budget = probe.write_ops();
    assert!(budget > 20, "script too small to be interesting: {budget}");
    let mut crashes = 0u64;
    for at in 0..=budget {
        if check_crash_point(
            CrashConfig {
                seed: at,
                ops_before_crash: at,
            },
            &oracle,
        ) {
            crashes += 1;
        }
    }
    println!("exhaustive sweep: {budget} write boundaries, {crashes} mid-migration crashes");
    assert!(crashes > 0, "the sweep must actually kill mid-migration");
}

/// The script's total write-op budget, measured on a fault-free store
/// (deterministic, so seed → kill-point mappings reproduce exactly).
fn write_budget() -> u64 {
    let probe = Arc::new(CrashStore::new());
    let engine = Engine::new()
        .with_durability(Media::Store(Arc::clone(&probe)))
        .unwrap();
    assert!(run_script(&engine).ok);
    probe.write_ops()
}

/// A seed-derived kill point spanning the whole script (a few points past
/// the end, so some schedules survive).
fn config_for_seed(seed: u64, budget: u64) -> CrashConfig {
    let mut h = seed.wrapping_mul(0xD6E8_FEB8_6659_FD93).wrapping_add(1);
    h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    CrashConfig {
        seed,
        ops_before_crash: (h ^ (h >> 31)) % (budget + 8),
    }
}

/// Seeded random sweep, same env contract as the crash-recovery suite:
/// `SNAKES_CRASH_SEED` pins one schedule, `SNAKES_CRASH_SCHEDULES` sets
/// the sweep width.
#[test]
fn seeded_crash_schedules_resume_the_migration() {
    let oracle = oracle();
    let budget = write_budget();
    if let Ok(seed) = std::env::var("SNAKES_CRASH_SEED") {
        let seed = seed.parse().expect("SNAKES_CRASH_SEED must be a number");
        let crashed = check_crash_point(config_for_seed(seed, budget), &oracle);
        println!("seed {seed}: crashed={crashed}");
        return;
    }
    let mut crashes = 0u64;
    let n = schedule_count();
    for seed in 0..n {
        if check_crash_point(config_for_seed(seed, budget), &oracle) {
            crashes += 1;
        }
    }
    println!("{n} seeded schedules, {crashes} mid-migration crashes");
    assert!(crashes > 0, "the sweep must actually kill mid-migration");
    assert!(crashes < n, "some schedules must survive to the end");
}
