//! Cross-crate validation: the analytic cost model (snakes-core) against
//! physical measurement (snakes-curves fragment counting and the
//! snakes-storage page simulator).

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::snake::{snaked_dist, snaked_expected_cost};
use snakes_sandwiches::curves::{class_average_cost, cv_of, expected_cost};
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::{class_stats, CellData};

/// A few mixed-fanout schemas exercising 2 and 3 dimensions.
fn schemas() -> Vec<StarSchema> {
    vec![
        StarSchema::paper_toy(),
        StarSchema::new(vec![
            Hierarchy::new("p", vec![3, 2]).unwrap(),
            Hierarchy::new("q", vec![4]).unwrap(),
        ])
        .unwrap(),
        StarSchema::new(vec![
            Hierarchy::new("x", vec![2, 3]).unwrap(),
            Hierarchy::new("y", vec![5]).unwrap(),
            Hierarchy::new("z", vec![2, 2]).unwrap(),
        ])
        .unwrap(),
    ]
}

#[test]
fn analytic_dist_equals_fragment_count_everywhere() {
    for schema in schemas() {
        let shape = LatticeShape::of_schema(&schema);
        let model = CostModel::of_schema(&schema);
        for path in LatticePath::enumerate(&shape) {
            let plain = path_curve(&schema, &path);
            let snaked = snaked_path_curve(&schema, &path);
            for class in shape.iter() {
                let bf_plain = class_average_cost(&schema, &plain, &class);
                let an_plain = model.dist(&path, &class);
                assert!(
                    (bf_plain - an_plain).abs() < 1e-9,
                    "{schema:?} {path} {class}: plain {bf_plain} vs {an_plain}"
                );
                let bf_snaked = class_average_cost(&schema, &snaked, &class);
                let an_snaked = snaked_dist(&model, &path, &class);
                assert!(
                    (bf_snaked - an_snaked).abs() < 1e-9,
                    "{schema:?} {path} {class}: snaked {bf_snaked} vs {an_snaked}"
                );
            }
        }
    }
}

#[test]
fn cv_pricing_is_exact_for_space_filling_curves() {
    // For non-lattice-path strategies the CV-based extended cost must equal
    // brute-force fragment counting on every class.
    let schema = StarSchema::square(2, 3).unwrap(); // 8x8
    let shape = LatticeShape::of_schema(&schema);
    let curves: Vec<(&str, Box<dyn Linearization>)> = vec![
        ("hilbert", Box::new(HilbertCurve::square(3))),
        ("z-order", Box::new(ZOrderCurve::square(3))),
        ("gray", Box::new(GrayCurve::square(3))),
        (
            "boustrophedon",
            Box::new(NestedLoops::boustrophedon(vec![8, 8], &[0, 1])),
        ),
    ];
    for (name, lin) in &curves {
        let lin = lin.as_ref();
        let cv = cv_of(&schema, &lin);
        for class in shape.iter() {
            let bf = class_average_cost(&schema, &lin, &class);
            let an = cv.class_cost(&class);
            assert!(
                (bf - an).abs() < 1e-9,
                "{name} class {class}: brute {bf} vs cv {an}"
            );
        }
    }
}

#[test]
fn page_simulator_agrees_with_fragments_when_cells_are_pages() {
    // One record per cell, one record per page: physical page runs are
    // exactly cell-level fragments, so the storage simulator must agree
    // with the analytic model on every class, for several paths.
    let schema = StarSchema::new(vec![
        Hierarchy::new("a", vec![2, 2]).unwrap(),
        Hierarchy::new("b", vec![3]).unwrap(),
    ])
    .unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);
    let extents = schema.grid_shape();
    let n: u64 = extents.iter().product();
    let cells = CellData::from_counts(extents, vec![1; n as usize]);
    let cfg = snakes_sandwiches::storage::StorageConfig {
        page_size: 128,
        record_size: 125,
    };
    for path in LatticePath::enumerate(&shape) {
        for (curve, analytic) in [
            (path_curve(&schema, &path), model.class_costs(&path)),
            (
                snaked_path_curve(&schema, &path),
                snakes_sandwiches::core::snake::snaked_class_costs(&model, &path),
            ),
        ] {
            let layout = PackedLayout::pack(&curve, &cells, cfg);
            for class in shape.iter() {
                let st = class_stats(&schema, &curve, &layout, &class);
                let want = analytic[shape.rank(&class)];
                assert!(
                    (st.avg_seeks - want).abs() < 1e-9,
                    "{path} class {class}: seeks {} vs analytic {want}",
                    st.avg_seeks
                );
                // One cell per page: every selected page is necessary, so
                // normalized blocks is exactly 1 regardless of clustering —
                // the paper's point that blocks read are only loosely
                // correlated with seeks.
                assert!((st.avg_normalized_blocks - 1.0).abs() < 1e-9);
            }
        }
    }
}

#[test]
fn expected_cost_consistency_chain() {
    // expected_cost (brute force) == CostModel::expected_cost (analytic)
    // == Cv::expected_cost (CV pricing) for paths under random-ish
    // workloads.
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);
    for (i, path) in LatticePath::enumerate(&shape).into_iter().enumerate() {
        let weights: Vec<f64> = (0..shape.num_classes())
            .map(|r| ((r * 7 + i * 13) % 11 + 1) as f64)
            .collect();
        let w = Workload::from_weights(shape.clone(), weights).unwrap();
        let curve = path_curve(&schema, &path);
        let bf = expected_cost(&schema, &curve, &w);
        let an = model.expected_cost(&path, &w);
        let cv = cv_of(&schema, &curve).expected_cost(&w);
        assert!((bf - an).abs() < 1e-9, "{path}: {bf} vs {an}");
        assert!((bf - cv).abs() < 1e-9, "{path}: {bf} vs cv {cv}");
        // Snaked chain.
        let scurve = snaked_path_curve(&schema, &path);
        let sbf = expected_cost(&schema, &scurve, &w);
        let san = snaked_expected_cost(&model, &path, &w);
        let scv = cv_of(&schema, &scurve).expected_cost(&w);
        assert!((sbf - san).abs() < 1e-9);
        assert!((sbf - scv).abs() < 1e-9);
    }
}

#[test]
fn dp_beats_hilbert_when_workload_is_axis_aligned_and_loses_rarely() {
    // §7: "Lattice path clusterings can be arbitrarily better than the
    // well-known Hilbert curve clustering on some workloads, while it can
    // be more expensive than Hilbert on others."
    let schema = StarSchema::square(2, 3).unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);
    let hilbert = cv_of(&schema, &HilbertCurve::square(3));

    // Axis-aligned point workload: class (3,0) (full columns). The optimal
    // snaked lattice path answers it in 1 fragment; Hilbert cannot.
    let w = Workload::point(shape.clone(), &Class(vec![3, 0])).unwrap();
    let dp = snakes_sandwiches::core::dp::optimal_lattice_path(&model, &w);
    let snaked = snaked_expected_cost(&model, &dp.path, &w);
    let h = hilbert.expected_cost(&w);
    assert!((snaked - 1.0).abs() < 1e-9);
    assert!(h > 3.0, "Hilbert pays {h} on column scans");

    // And under the uniform workload the best snaked path still beats
    // Hilbert (Theorem 2 guarantees it for every workload).
    let uniform = Workload::uniform(shape);
    let (_, best_snaked) =
        snakes_sandwiches::core::snake::best_snaked_path_exhaustive(&model, &uniform);
    assert!(best_snaked <= hilbert.expected_cost(&uniform) + 1e-9);
}
