//! Differential harness for the run-based evaluation engine: structural
//! rank-run enumeration, the single-pass whole-lattice aggregator, and the
//! run-based storage engine must all be **exactly** equal to the
//! brute-force paths — `u64` counts equal, `f64` averages bit-equal — on
//! random grids up to 4-D, for every curve family, snaked and plain,
//! through every thread count and engine choice.

use proptest::prelude::*;
use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::Workload;
use snakes_sandwiches::curves::{
    aggregate_class_costs, class_costs, path_curve, snaked_path_curve, CompactHilbert, GrayCurve,
    Linearization, NestedLoops, ZOrderCurve,
};
use snakes_sandwiches::storage::{
    workload_stats_opts, CellData, EvalEngine, EvalOptions, PackedLayout, StorageConfig,
};
use std::ops::Range;

/// Independent reference: enumerate every selected cell's rank with an
/// odometer, sort, and merge consecutive ranks into maximal runs.
fn reference_runs(lin: &dyn Linearization, ranges: &[Range<u64>]) -> Vec<(u64, u64)> {
    let mut ranks = Vec::new();
    let mut coords: Vec<u64> = ranges.iter().map(|r| r.start).collect();
    'outer: loop {
        ranks.push(lin.rank(&coords));
        let mut d = 0;
        loop {
            if d == coords.len() {
                break 'outer;
            }
            coords[d] += 1;
            if coords[d] < ranges[d].end {
                break;
            }
            coords[d] = ranges[d].start;
            d += 1;
        }
    }
    ranks.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::new();
    for r in ranks {
        match out.last_mut() {
            Some((start, len)) if *start + *len == r => *len += 1,
            _ => out.push((r, 1)),
        }
    }
    out
}

fn collected_runs(lin: &dyn Linearization, ranges: &[Range<u64>]) -> Vec<(u64, u64)> {
    let mut got = Vec::new();
    lin.rank_runs(ranges, &mut |start, len| got.push((start, len)));
    got
}

/// Deterministic query boxes from a seed: `count` random sub-ranges per
/// dimension via a splitmix-style generator.
fn seeded_queries(seed: u64, extents: &[u64], count: usize) -> Vec<Vec<Range<u64>>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..count)
        .map(|_| {
            extents
                .iter()
                .map(|&e| {
                    let lo = next() % e;
                    let hi = lo + 1 + next() % (e - lo);
                    lo..hi
                })
                .collect()
        })
        .collect()
}

/// All rotations of `0..k` as nesting orders, so every dimension gets to
/// be innermost somewhere.
fn rotated_orders(k: usize) -> Vec<Vec<usize>> {
    (0..k)
        .map(|s| (0..k).map(|i| (i + s) % k).collect())
        .collect()
}

/// The curve families under test for arbitrary extents: nested loops
/// (plain and snaked, every rotation) plus the brute-force-fallback
/// curves (Gray, compact Hilbert).
fn curve_family(extents: &[u64]) -> Vec<(String, Box<dyn Linearization>)> {
    let mut out: Vec<(String, Box<dyn Linearization>)> = Vec::new();
    for order in rotated_orders(extents.len()) {
        out.push((
            format!("row_major{order:?}"),
            Box::new(NestedLoops::row_major(extents.to_vec(), &order)),
        ));
        out.push((
            format!("boustrophedon{order:?}"),
            Box::new(NestedLoops::boustrophedon(extents.to_vec(), &order)),
        ));
    }
    out.push((
        "compact_hilbert".to_string(),
        Box::new(CompactHilbert::new(extents.to_vec())),
    ));
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `rank_runs` equals the odometer+sort reference for every curve
    /// family on random grids up to 4-D — structural enumerations and
    /// brute-force fallbacks alike, snaked and plain.
    #[test]
    fn rank_runs_match_reference(
        extents in proptest::collection::vec(1u64..=6, 1..=4),
        seed in any::<u64>(),
    ) {
        for (name, lin) in curve_family(&extents) {
            for q in seeded_queries(seed, &extents, 4) {
                let got = collected_runs(lin.as_ref(), &q);
                let want = reference_runs(lin.as_ref(), &q);
                prop_assert_eq!(&got, &want, "curve {} query {:?}", name, q);
                // Runs partition the query box exactly.
                let cells: u64 = q.iter().map(|r| r.end - r.start).product();
                prop_assert_eq!(got.iter().map(|&(_, l)| l).sum::<u64>(), cells);
            }
        }
    }

    /// Z-order structural splitting (and Gray's brute-force fallback)
    /// equal the reference on random power-of-two grids up to 4-D.
    #[test]
    fn zorder_runs_match_reference(
        bits in proptest::collection::vec(0u32..=3, 1..=4),
        seed in any::<u64>(),
    ) {
        let extents: Vec<u64> = bits.iter().map(|&b| 1u64 << b).collect();
        let curves: [(&str, Box<dyn Linearization>); 2] = [
            ("zorder", Box::new(ZOrderCurve::new(extents.clone()))),
            ("gray", Box::new(GrayCurve::new(extents.clone()))),
        ];
        for (name, lin) in &curves {
            for q in seeded_queries(seed, &extents, 6) {
                let got = collected_runs(lin.as_ref(), &q);
                let want = reference_runs(lin.as_ref(), &q);
                prop_assert_eq!(got, want, "curve {} query {:?}", name, q);
            }
        }
    }

    /// The single-pass aggregator equals per-class brute force on random
    /// schemas up to 3-D (grids up to 4 levels deep per dimension):
    /// `u64` fragment totals exactly equal, `f64` averages bit-equal —
    /// for plain and snaked nested loops and for lattice-path curves.
    #[test]
    fn aggregator_matches_brute_force(
        dims in proptest::collection::vec(proptest::collection::vec(2u64..=3, 1..=2), 1..=3),
    ) {
        let schema = StarSchema::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, f)| Hierarchy::new(format!("d{i}"), f).expect("valid fanouts"))
                .collect(),
        )
        .expect("non-empty");
        let shape = LatticeShape::of_schema(&schema);
        let extents = schema.grid_shape();
        let mut curves: Vec<(String, Box<dyn Linearization>)> = curve_family(&extents);
        for p in snakes_sandwiches::core::path::LatticePath::enumerate(&shape).into_iter().take(3) {
            curves.push((format!("path {p}"), Box::new(path_curve(&schema, &p))));
            curves.push((format!("snaked path {p}"), Box::new(snaked_path_curve(&schema, &p))));
        }
        for (name, boxed) in curves {
            let lin: &dyn Linearization = boxed.as_ref();
            let agg = aggregate_class_costs(&schema, &lin);
            let brute = class_costs(&schema, &lin);
            for (r, (a, b)) in agg.class_costs().iter().zip(&brute).enumerate() {
                prop_assert_eq!(a.to_bits(), b.to_bits(), "curve {} class rank {}", name, r);
            }
            for u in shape.iter() {
                prop_assert_eq!(
                    agg.class_total_fragments(&u),
                    snakes_sandwiches::curves::fragments::class_total_fragments(&schema, &lin, &u),
                    "curve {} class {}", name, u
                );
            }
        }
    }
}

/// The storage engines (cells vs runs vs auto) are bit-identical through
/// `workload_stats_opts` for thread counts {1, 4}, on uniform and
/// skewed (partially empty) grids, for plain and snaked curves.
#[test]
fn workload_stats_engines_bit_identical() {
    let config = StorageConfig {
        page_size: 500,
        record_size: 125,
    };
    let schema = StarSchema::new(vec![
        Hierarchy::new("a", vec![3, 2]).unwrap(),
        Hierarchy::new("b", vec![4]).unwrap(),
        Hierarchy::new("c", vec![2, 2]).unwrap(),
    ])
    .unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let extents = schema.grid_shape();
    let n = extents.iter().product::<u64>() as usize;
    let counts: Vec<Vec<u64>> = vec![
        vec![4; n],
        (0..n).map(|i| (i as u64 * 7) % 23).collect(), // skewed, some empty
    ];
    for cell_counts in counts {
        let cells = CellData::from_counts(extents.clone(), cell_counts);
        for order in [[0, 1, 2], [2, 0, 1]] {
            for snaked in [false, true] {
                let curve = if snaked {
                    NestedLoops::boustrophedon(extents.clone(), &order)
                } else {
                    NestedLoops::row_major(extents.clone(), &order)
                };
                let layout = PackedLayout::pack(&curve, &cells, config);
                let workload = Workload::uniform(shape.clone());
                let baseline = workload_stats_opts(
                    &schema,
                    &curve,
                    &layout,
                    &workload,
                    &EvalOptions::serial().engine(EvalEngine::Cells),
                );
                for threads in [1usize, 4] {
                    for engine in [EvalEngine::Cells, EvalEngine::Runs, EvalEngine::Auto] {
                        let got = workload_stats_opts(
                            &schema,
                            &curve,
                            &layout,
                            &workload,
                            &EvalOptions::new().threads(threads).engine(engine),
                        );
                        let ctx = format!(
                            "order {order:?} snaked {snaked} threads {threads} engine {engine}"
                        );
                        assert_eq!(
                            got.avg_seeks.to_bits(),
                            baseline.avg_seeks.to_bits(),
                            "{ctx} seeks"
                        );
                        assert_eq!(
                            got.avg_normalized_blocks.to_bits(),
                            baseline.avg_normalized_blocks.to_bits(),
                            "{ctx} blocks"
                        );
                        assert_eq!(got.per_class, baseline.per_class, "{ctx} per_class");
                    }
                }
            }
        }
    }
}
