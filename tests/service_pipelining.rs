//! Request pipelining over the wire: many frames written back-to-back on
//! one connection — including hostile frames mid-pipeline — must come back
//! as in-band responses in request order, on a connection that stays
//! usable. Exercises the sharded core's ordered response slots and the
//! cross-shard forwarding path (drift frames fan out to per-shard session
//! owners but still answer in pipeline order).

use snakes_sandwiches::core::workload::WeightUpdate;
use snakes_sandwiches::service::protocol::{
    ClassWeight, DeltaSpec, DimSpec, SchemaSpec, WorkloadSpec,
};
use snakes_sandwiches::service::{
    PipelinedClient, Request, Server, ServerConfig, MAX_LINE_BYTES, PROTOCOL_VERSION,
};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server(shards: usize) -> Server {
    Server::spawn(ServerConfig {
        shards,
        ..ServerConfig::default()
    })
    .expect("spawn server")
}

fn ping_frame(id: u64) -> Vec<u8> {
    format!("{{\"v\":{PROTOCOL_VERSION},\"endpoint\":\"ping\",\"id\":{id}}}\n").into_bytes()
}

#[test]
fn pipelined_frames_answer_in_order_with_malformed_frames_in_band() {
    let server = spawn_server(0);
    let addr = server.local_addr();
    let writer = TcpStream::connect(addr).expect("connect");
    writer
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("read timeout");
    let mut reader = BufReader::new(writer.try_clone().expect("clone"));
    let mut writer = writer;

    // One burst, no reads until the end. Expected response ids in order:
    // good frames echo their id, hostile frames answer in-band as id 0.
    let mut expected: Vec<(u64, bool)> = Vec::new(); // (id, ok)
    let mut burst: Vec<u8> = Vec::new();
    for id in 1..=25u64 {
        match id {
            10 => {
                // Malformed JSON mid-pipeline.
                burst.extend_from_slice(b"}{not json\n");
                expected.push((0, false));
            }
            17 => {
                // Oversized line mid-pipeline: discarded, flagged in-band.
                burst.extend(std::iter::repeat_n(b'z', MAX_LINE_BYTES + 1));
                burst.push(b'\n');
                expected.push((0, false));
            }
            _ => {
                burst.extend_from_slice(&ping_frame(id));
                expected.push((id, true));
            }
        }
    }
    writer.write_all(&burst).expect("write burst");
    writer.flush().expect("flush");

    for (pos, (want_id, want_ok)) in expected.iter().enumerate() {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed at pipeline position {pos}");
        let resp: serde_json::Value =
            serde_json::from_str(line.trim_end()).expect("response is JSON");
        assert_eq!(
            resp["id"].as_u64(),
            Some(*want_id),
            "out-of-order response at pipeline position {pos}: {resp:?}"
        );
        assert_eq!(
            resp["ok"].as_bool(),
            Some(*want_ok),
            "wrong ok at pipeline position {pos}: {resp:?}"
        );
        if !want_ok {
            assert_eq!(resp["error"]["code"].as_str(), Some("bad_request"));
        }
    }

    // The connection survives the hostile pipeline.
    writer.write_all(&ping_frame(99)).expect("write ping");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read");
    let resp: serde_json::Value = serde_json::from_str(line.trim_end()).expect("JSON");
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    assert_eq!(resp["id"].as_u64(), Some(99));

    server.join();
}

#[test]
fn pipelined_drift_frames_preserve_order_across_shard_forwarding() {
    // Four shards, sessions striped by name: consecutive frames route to
    // different owners, but per-connection response order must hold.
    let server = spawn_server(4);
    let addr = server.local_addr();
    let mut client = PipelinedClient::connect(addr, 16).expect("connect");

    let schema = SchemaSpec {
        dims: vec![
            DimSpec {
                name: "parts".into(),
                fanouts: vec![4, 2],
            },
            DimSpec {
                name: "time".into(),
                fanouts: vec![3, 2],
            },
        ],
    };
    let workload = WorkloadSpec {
        probs: None,
        classes: Some(vec![
            ClassWeight {
                class: vec![0, 2],
                weight: 3.0,
            },
            ClassWeight {
                class: vec![2, 0],
                weight: 1.0,
            },
        ]),
        marginals: None,
    };
    let mut responses = Vec::new();
    for i in 0..48u64 {
        let mut req = Request::drift(
            &format!("session-{}", i % 7),
            vec![DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: (i % 9) as usize,
                    weight: 0.5,
                }],
            }],
        );
        // Schema + workload on every drift frame so first contact with
        // each striped session owner creates the session.
        req.schema = Some(schema.clone());
        req.workload = Some(workload.clone());
        if let Some(reaped) = client.send(req).expect("send") {
            responses.push(reaped);
        }
    }
    responses.extend(client.finish().expect("finish"));

    assert_eq!(responses.len(), 48);
    for (i, resp) in responses.iter().enumerate() {
        assert!(resp.ok, "drift {i} failed: {resp:?}");
        assert_eq!(
            resp.id,
            (i + 1) as u64,
            "response {i} out of order: {resp:?}"
        );
        let drift = resp.drift.as_ref().expect("drift body");
        assert_eq!(drift.session, format!("session-{}", (i as u64) % 7));
    }

    server.join();
}

#[test]
fn pipelined_client_reaps_in_order_under_a_small_window() {
    let server = spawn_server(2);
    let addr = server.local_addr();
    let mut client = PipelinedClient::connect(addr, 4).expect("connect");

    let mut responses = Vec::new();
    for _ in 0..30 {
        if let Some(reaped) = client.send(Request::new("ping")).expect("send") {
            responses.push(reaped);
        }
        assert!(client.in_flight() <= 4, "window exceeded");
    }
    responses.extend(client.finish().expect("finish"));
    assert_eq!(responses.len(), 30);
    for (i, resp) in responses.iter().enumerate() {
        assert!(resp.ok);
        assert_eq!(resp.id, (i + 1) as u64);
    }
    assert_eq!(client.in_flight(), 0);

    server.join();
}
