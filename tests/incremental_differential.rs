//! Differential harness for the incremental re-optimization engine: over
//! random schemas up to 4-D and random sparse drift sequences, every fast
//! path must be **exactly** equal to its from-scratch counterpart —
//! `u64` counts equal, `f64` costs bit-equal:
//!
//! 1. [`IncrementalDp::reoptimize`] (stability certificate + warm
//!    re-pricing, full-DP fallback) vs a fresh `optimal_lattice_path`
//!    per epoch;
//! 2. the [`SignatureCache`] table vs a fresh `aggregate_class_costs`
//!    walk, both as a structure (crossing counts are
//!    workload-independent, so the tables are `Eq`) and as a price on
//!    every drifted workload;
//! 3. [`CostMemo::workload_stats`] vs the unmemoized serial
//!    [`workload_stats_opts`], for both the cell-walking and run-based
//!    engines.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::{optimal_lattice_path, IncrementalDp};
use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::{VersionedWorkload, WeightUpdate, Workload, WorkloadDelta};
use snakes_sandwiches::curves::{
    aggregate_class_costs, path_curve, snaked_path_curve, SignatureCache, StrategyId,
};
use snakes_sandwiches::storage::{
    workload_stats_opts, CellData, CostMemo, EvalEngine, EvalOptions, PackedLayout, StorageConfig,
};
use std::collections::BTreeSet;

/// Random hierarchies up to 4-D, capped so the densest grid stays small
/// enough for the physical-measurement test to brute-force every class.
fn arb_dims() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(proptest::collection::vec(2u64..=3, 1..=2), 1..=4).prop_filter(
        "grid fits the brute-force budget",
        |dims| {
            dims.iter()
                .map(|f| f.iter().product::<u64>())
                .product::<u64>()
                <= 96
        },
    )
}

fn schema_of(dims: Vec<Vec<u64>>) -> StarSchema {
    StarSchema::new(
        dims.into_iter()
            .enumerate()
            .map(|(i, f)| Hierarchy::new(format!("d{i}"), f).expect("valid fanouts"))
            .collect(),
    )
    .expect("non-empty")
}

/// An irregular base workload: every class live, weights seeded so ties
/// between paths are rare but not impossible.
fn seeded_workload(shape: &LatticeShape, rng: &mut ChaCha8Rng) -> Workload {
    let weights = (0..shape.num_classes())
        .map(|_| 0.05 + rng.gen::<f64>())
        .collect();
    Workload::from_weights(shape.clone(), weights).expect("positive weights")
}

/// One sparse random delta: `changes` distinct ranks get fresh absolute
/// weights scaled by `magnitude`, everything else renormalizes.
fn random_delta(
    rng: &mut ChaCha8Rng,
    num_ranks: usize,
    changes: usize,
    magnitude: f64,
) -> WorkloadDelta {
    let mut picked = BTreeSet::new();
    while picked.len() < changes.min(num_ranks) {
        picked.insert(rng.gen_range(0..num_ranks));
    }
    let updates = picked
        .into_iter()
        .map(|rank| WeightUpdate {
            rank,
            weight: (0.05 + rng.gen::<f64>()) * magnitude / num_ranks as f64,
        })
        .collect();
    WorkloadDelta::new(updates).expect("generated weights are finite and non-negative")
}

/// The drifted workload per epoch (index 0 is the base), via
/// [`VersionedWorkload`] so renormalization happens exactly as in
/// production.
fn drift_sequence(
    shape: &LatticeShape,
    rng: &mut ChaCha8Rng,
    epochs: usize,
    changes: usize,
    magnitude: f64,
) -> Vec<Workload> {
    let mut versioned = VersionedWorkload::new(seeded_workload(shape, rng));
    let mut out = vec![versioned.workload().clone()];
    for _ in 0..epochs {
        let delta = random_delta(rng, shape.num_classes(), changes, magnitude);
        versioned.apply(&delta).expect("drifted workload is valid");
        out.push(versioned.workload().clone());
    }
    out
}

/// Drift magnitudes spanning both regimes: gentle (where the stability
/// certificate should mostly fire) through aggressive (where full DP
/// fallbacks dominate).
fn arb_magnitude() -> impl Strategy<Value = f64> {
    (0usize..3).prop_map(|i| [1e-4, 1e-2, 0.5][i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The incremental DP returns the same optimal path as a from-scratch
    /// DP on every epoch of a random drift sequence, its warm-restart
    /// cost is bit-identical to the model's linear re-pricing, and the
    /// reuse/full-run accounting covers every call.
    #[test]
    fn incremental_dp_matches_scratch_dp_under_drift(
        dims in arb_dims(),
        seed in any::<u64>(),
        epochs in 1usize..=4,
        changes in 1usize..=4,
        magnitude in arb_magnitude(),
    ) {
        let schema = schema_of(dims);
        let shape = LatticeShape::of_schema(&schema);
        let model = CostModel::of_schema(&schema);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let workloads = drift_sequence(&shape, &mut rng, epochs, changes, magnitude);

        let mut dp = IncrementalDp::new(model.clone());
        for (e, w) in workloads.iter().enumerate() {
            let out = dp.reoptimize(w);
            let scratch = optimal_lattice_path(&model, w);
            prop_assert_eq!(
                out.path.dims(), scratch.path.dims(),
                "epoch {} (reused: {})", e, out.reused
            );
            if out.reused {
                // The warm-restart price is the model's own dot product —
                // not an approximation of it.
                prop_assert_eq!(
                    out.cost.to_bits(),
                    model.expected_cost(&out.path, w).to_bits(),
                    "epoch {} warm re-pricing", e
                );
                prop_assert!(
                    (out.cost - scratch.cost).abs() <= 1e-9 * scratch.cost.abs().max(1.0),
                    "epoch {}: warm cost {} vs scratch {}", e, out.cost, scratch.cost
                );
            } else {
                // A full run *is* the scratch DP.
                prop_assert_eq!(
                    out.cost.to_bits(), scratch.cost.to_bits(),
                    "epoch {} full run", e
                );
                prop_assert_eq!(out.shift_bound.to_bits(), 0f64.to_bits());
            }
        }
        prop_assert_eq!(dp.reuses() + dp.full_runs(), workloads.len() as u64);
        prop_assert!(dp.full_runs() >= 1, "epoch 0 has no anchor to reuse");
    }

    /// The cached signature table is structurally identical (`u64`-exact
    /// crossing counts) to a fresh aggregation, and prices every drifted
    /// workload bit-identically — for the plain and snaked curves of the
    /// base workload's optimal path.
    #[test]
    fn signature_cache_prices_drift_bit_identically(
        dims in arb_dims(),
        seed in any::<u64>(),
        epochs in 1usize..=4,
        changes in 1usize..=4,
        magnitude in arb_magnitude(),
    ) {
        let schema = schema_of(dims);
        let shape = LatticeShape::of_schema(&schema);
        let model = CostModel::of_schema(&schema);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let workloads = drift_sequence(&shape, &mut rng, epochs, changes, magnitude);

        let path = optimal_lattice_path(&model, &workloads[0]).path;
        let plain = path_curve(&schema, &path);
        let snaked = snaked_path_curve(&schema, &path);
        let plain_id = StrategyId::Path { dims: path.dims().to_vec(), snaked: false };
        let snaked_id = StrategyId::Path { dims: path.dims().to_vec(), snaked: true };

        let mut cache = SignatureCache::new();
        // Prime once; crossing counts are workload-independent, so the
        // tables are reused verbatim for every epoch that follows.
        prop_assert_eq!(
            cache.get_or_compute(&schema, &plain, &plain_id),
            &aggregate_class_costs(&schema, &plain)
        );
        prop_assert_eq!(
            cache.get_or_compute(&schema, &snaked, &snaked_id),
            &aggregate_class_costs(&schema, &snaked)
        );
        for (e, w) in workloads.iter().enumerate() {
            let cached_plain = cache.get_or_compute(&schema, &plain, &plain_id).expected_cost(w);
            let cached_snaked = cache.get_or_compute(&schema, &snaked, &snaked_id).expected_cost(w);
            prop_assert_eq!(
                cached_plain.to_bits(),
                aggregate_class_costs(&schema, &plain).expected_cost(w).to_bits(),
                "plain curve, epoch {}", e
            );
            prop_assert_eq!(
                cached_snaked.to_bits(),
                aggregate_class_costs(&schema, &snaked).expected_cost(w).to_bits(),
                "snaked curve, epoch {}", e
            );
            // Paper §4.2: snaking never costs more on any workload.
            prop_assert!(cached_snaked <= cached_plain + 1e-9 * cached_plain.max(1.0));
        }
        prop_assert_eq!(cache.misses(), 2, "exactly one walk per strategy, ever");
        prop_assert_eq!(cache.hits(), 2 * workloads.len() as u64);
    }
}

proptest! {
    // Physical measurement is the expensive leg; fewer cases suffice
    // because each one covers two curves × two engines × every epoch.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The per-class cost memo reduces to bit-identical workload stats as
    /// the unmemoized serial engine — for the cell-walking and run-based
    /// engines, plain and snaked curves, on a skewed grid with empty
    /// cells, across a full drift sequence.
    #[test]
    fn cost_memo_matches_serial_engine_under_drift(
        dims in arb_dims(),
        seed in any::<u64>(),
        epochs in 1usize..=3,
        changes in 1usize..=4,
        magnitude in arb_magnitude(),
    ) {
        let schema = schema_of(dims);
        let shape = LatticeShape::of_schema(&schema);
        let model = CostModel::of_schema(&schema);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let workloads = drift_sequence(&shape, &mut rng, epochs, changes, magnitude);

        let extents = schema.grid_shape();
        let n = extents.iter().product::<u64>() as usize;
        // Skewed deterministic counts, some cells empty.
        let counts: Vec<u64> = (0..n as u64).map(|r| (r * 7 + 3) % 5).collect();
        let cells = CellData::from_counts(extents.clone(), counts);
        let config = StorageConfig { page_size: 500, record_size: 125 };

        let path = optimal_lattice_path(&model, &workloads[0]).path;
        let curves = [
            ("plain", path_curve(&schema, &path)),
            ("snaked", snaked_path_curve(&schema, &path)),
        ];
        let mut memo = CostMemo::new();
        for (name, curve) in &curves {
            let layout = PackedLayout::pack(curve, &cells, config);
            for engine in [EvalEngine::Cells, EvalEngine::Runs] {
                for (e, w) in workloads.iter().enumerate() {
                    let got = memo.workload_stats(&schema, curve, &layout, w, engine);
                    let want = workload_stats_opts(
                        &schema, curve, &layout, w, &EvalOptions::serial().engine(engine),
                    );
                    let ctx = format!("curve {name} engine {engine} epoch {e}");
                    prop_assert_eq!(
                        got.avg_seeks.to_bits(), want.avg_seeks.to_bits(),
                        "{} seeks", &ctx
                    );
                    prop_assert_eq!(
                        got.avg_normalized_blocks.to_bits(),
                        want.avg_normalized_blocks.to_bits(),
                        "{} blocks", &ctx
                    );
                    prop_assert_eq!(&got.per_class, &want.per_class, "{} per_class", &ctx);
                }
            }
        }
        // Drift never invalidates class measurements (they are
        // workload-independent): after the first pass over a distinct
        // (layout, engine) key, every class is a memo hit. The plain and
        // snaked layouts can coincide (single-level paths), so the miss
        // count is bounded, not pinned.
        let classes = workloads[0].support_by_rank().count() as u64;
        let passes = 2 * 2 * workloads.len() as u64;
        prop_assert_eq!(memo.hits() + memo.misses(), passes * classes);
        prop_assert!(memo.misses() >= classes, "at least one cold pass");
        prop_assert!(memo.misses() <= 2 * 2 * classes, "drift epochs never re-measure");
    }
}
