//! Wire-format stability of the advisor-service protocol: every public
//! DTO round-trips through JSON bit-identically, unknown fields are
//! ignored (the forward-compat contract), and representative documents
//! are pinned as golden fixtures — the current (v2, envelope-form)
//! dialect under `tests/fixtures/service/v2/`, and the legacy v1
//! flat-field documents at `tests/fixtures/service/` itself, which are
//! never regenerated: they prove the compat shim keeps accepting the
//! exact bytes v1 clients send.
//!
//! Regenerate the v2 fixtures after an intentional protocol change with
//! `UPDATE_SERVICE_FIXTURES=1 cargo test --test service_protocol`.

use snakes_sandwiches::core::eval::{EvalEngine, EvalOptions};
use snakes_sandwiches::core::explain::{ClassContribution, CostExplanation};
use snakes_sandwiches::core::workload::WeightUpdate;
use snakes_sandwiches::service::protocol::{
    AggregationStatsBody, BatchingStatsBody, CacheStatsBody, ClassWeight, DeltaSpec, DimSpec,
    DriftBody, EndpointStatsBody, ErrorBody, EvalEnvelope, MeasureSpec, MeasuredBody, PriceBody,
    ReclusterBody, ReclusterSpec, ReclusterStatsBody, RecommendationBody, RowMajorBody, SchemaSpec,
    StatsBody, StorageStatsBody, StrategySpec, WorkloadSpec,
};
use snakes_sandwiches::service::{Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION};

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) -> String {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(value, &back, "round trip changed the value");
    json
}

fn sample_schema() -> SchemaSpec {
    SchemaSpec {
        dims: vec![
            DimSpec {
                name: "parts".into(),
                fanouts: vec![40, 5],
            },
            DimSpec {
                name: "time".into(),
                fanouts: vec![12, 7],
            },
        ],
    }
}

fn sample_workload() -> WorkloadSpec {
    WorkloadSpec {
        probs: None,
        classes: Some(vec![
            ClassWeight {
                class: vec![0, 2],
                weight: 3.0,
            },
            ClassWeight {
                class: vec![2, 0],
                weight: 1.0,
            },
        ]),
        marginals: None,
    }
}

fn sample_request() -> Request {
    let mut req = Request::price(
        sample_schema(),
        sample_workload(),
        StrategySpec::snaked_path(vec![0, 1, 0, 1]),
    )
    .with_measure(MeasureSpec {
        records_per_cell: 3,
        page_size: 4_096,
        record_size: 125,
        physical: true,
    })
    .with_eval(EvalOptions::serial().engine(EvalEngine::Runs));
    req.id = 42;
    req.deadline_ms = Some(2_000);
    req
}

fn sample_recluster_request() -> Request {
    let mut req = Request::recluster(
        "sales",
        sample_schema(),
        sample_workload(),
        ReclusterSpec {
            from: Some(StrategySpec::snaked_path(vec![0, 0, 1, 1])),
            to: Some(StrategySpec::snaked_path(vec![0, 1, 0, 1])),
            chunk_pages: 2,
        },
    );
    req.id = 45;
    req
}

fn sample_recluster_response() -> Response {
    Response {
        recluster: Some(ReclusterBody {
            job: "sales".into(),
            state: "running".into(),
            from: "(0,0) -> (0,1) -> (1,1) (snaked)".into(),
            to: "(0,0) -> (1,0) -> (1,1) (snaked)".into(),
            fence: 5,
            total_cells: 16,
            chunks_applied: 3,
            records_moved: 15,
            probes: 3,
        }),
        ..Response::ok(45)
    }
}

fn sample_drift_request() -> Request {
    let mut req = Request::drift(
        "etl-night",
        vec![DeltaSpec {
            updates: vec![
                WeightUpdate {
                    rank: 0,
                    weight: 0.25,
                },
                WeightUpdate {
                    rank: 7,
                    weight: 0.5,
                },
            ],
        }],
    )
    .with_idempotency_key("etl-night-00042");
    req.id = 43;
    req
}

/// The deduplicated answer a retried `drift` receives: the first
/// execution's body, replayed from the idempotency cache under the
/// retry's id, flagged `deduplicated`.
fn sample_deduplicated_response() -> Response {
    Response {
        drift: Some(DriftBody {
            session: "etl-night".into(),
            version: 12,
            coalesced: 2,
            drift_tv: 0.0625,
            path_dims: vec![1, 0],
            path: "(0,0) -> (0,1) -> (1,1)".into(),
            cost: 4.5,
            reused: true,
            shift_bound: 0.001,
            gap: 0.75,
        }),
        deduplicated: true,
        ..Response::ok(44)
    }
}

fn sample_response() -> Response {
    Response {
        recommendation: Some(RecommendationBody {
            path_dims: vec![0, 1, 0, 1],
            path: "(0,0) -> (1,0) -> (1,1) -> (2,1) -> (2,2)".into(),
            expected_cost_plain: 12.5,
            expected_cost_snaked: 10.25,
            guarantee_factor: 2.0,
            max_snaking_benefit: 1.5,
            row_majors: vec![RowMajorBody {
                order_innermost_first: vec![0, 1],
                cost_plain: 14.0,
                cost_snaked: 12.0,
            }],
            savings_vs_worst_row_major: 0.125,
        }),
        ..Response::ok(42)
    }
}

fn sample_stats() -> StatsBody {
    StatsBody {
        uptime_ms: 60_000,
        workers: 4,
        queue_capacity: 128,
        queue_depth: 2,
        sessions: 1,
        signature_cache: CacheStatsBody {
            hits: 10,
            misses: 3,
            entries: 3,
        },
        cost_memo: CacheStatsBody {
            hits: 5,
            misses: 2,
            entries: 2,
        },
        idempotency: CacheStatsBody {
            hits: 4,
            misses: 9,
            entries: 9,
        },
        panics_caught: 2,
        batching: BatchingStatsBody {
            batches: 3,
            coalesced: 7,
        },
        storage: StorageStatsBody {
            enabled: true,
            wal_bytes: 4_096,
            wal_entries: 12,
            checkpoints: 1,
            recoveries: 1,
            recovered_sessions: 1,
            pool_hits: 96,
            pool_misses: 32,
            pool_hit_rate: 0.75,
            pool_evictions: 24,
            physical_reads: 32,
            physical_writes: 40,
        },
        aggregation: AggregationStatsBody {
            walks_blocked: 3,
            walks_scalar: 0,
            walks_parallel: 1,
            edges: 503_997,
            decode_nanos: 2_100_000,
            count_nanos: 1_900_000,
            prefix_nanos: 800,
        },
        recluster: ReclusterStatsBody {
            jobs_started: 2,
            jobs_completed: 1,
            jobs_aborted: 0,
            jobs_recovered: 1,
            active: 1,
            chunks_applied: 21,
            records_moved: 63,
            probes: 21,
            auto_triggers: 1,
        },
        endpoints: vec![EndpointStatsBody {
            endpoint: "price".into(),
            requests: 13,
            errors: 1,
            shed: 2,
            deadline_exceeded: 1,
            p50_us: 512,
            p99_us: 4_096,
            max_us: 3_900,
        }],
    }
}

#[test]
fn every_public_dto_round_trips() {
    roundtrip(&sample_schema());
    roundtrip(&sample_workload());
    roundtrip(&WorkloadSpec {
        probs: Some(vec![0.5, 0.25, 0.25]),
        classes: None,
        marginals: None,
    });
    roundtrip(&WorkloadSpec {
        probs: None,
        classes: None,
        marginals: Some(vec![vec![0.4, 0.6], vec![1.0]]),
    });
    roundtrip(&StrategySpec::snaked_path(vec![1, 0]));
    roundtrip(&StrategySpec::plain_path(vec![0, 1]));
    roundtrip(&StrategySpec::hilbert());
    roundtrip(&MeasureSpec::default());
    roundtrip(&DeltaSpec {
        updates: vec![WeightUpdate {
            rank: 3,
            weight: 0.125,
        }],
    });
    roundtrip(&EvalEnvelope::default());
    roundtrip(&ReclusterSpec::default());
    roundtrip(&ReclusterStatsBody::default());
    roundtrip(&sample_request());
    roundtrip(&sample_drift_request());
    roundtrip(&sample_recluster_request());
    roundtrip(&Request::recluster_status("sales"));
    roundtrip(&Request::recluster_abort("sales"));
    roundtrip(&sample_recluster_response());
    roundtrip(&sample_deduplicated_response());
    roundtrip(&sample_response());
    roundtrip(&Response::err(
        9,
        ErrorBody {
            code: "overloaded".into(),
            message: "overloaded; retry after 50 ms".into(),
            retry_after_ms: Some(50),
        },
    ));
    roundtrip(&Response {
        price: Some(PriceBody {
            strategy: "(0,0) -> (0,1) (snaked)".into(),
            expected_cost: 3.75,
            cache_hit: true,
            measured: Some(MeasuredBody {
                avg_seeks: 2.5,
                avg_normalized_blocks: 1.25,
            }),
        }),
        ..Response::ok(7)
    });
    roundtrip(&Response {
        drift: Some(DriftBody {
            session: "etl-night".into(),
            version: 12,
            coalesced: 3,
            drift_tv: 0.0625,
            path_dims: vec![1, 0],
            path: "(0,0) -> (0,1) -> (1,1)".into(),
            cost: 4.5,
            reused: true,
            shift_bound: 0.001,
            gap: 0.75,
        }),
        ..Response::ok(8)
    });
    roundtrip(&Response {
        stats: Some(sample_stats()),
        ..Response::ok(10)
    });
    roundtrip(&Response {
        explanation: Some(CostExplanation {
            path_dims: vec![1, 0],
            plain_total: 5.0,
            snaked_total: 4.0,
            classes: vec![ClassContribution {
                class: vec![0, 1],
                probability: 0.5,
                plain_cost: 6.0,
                snaked_cost: 5.0,
                contribution: 2.5,
                share: 0.625,
                on_path: true,
            }],
        }),
        ..Response::ok(11)
    });
}

#[test]
fn floats_survive_the_wire_bit_for_bit() {
    // Rust's f64 Display is shortest-roundtrip, so JSON carries the exact
    // bits — the bedrock of the loopback ≡ direct-call guarantee.
    for value in [
        0.1f64,
        1.0 / 3.0,
        f64::MIN_POSITIVE,
        1.2345678901234567e300,
        -7.0 / 11.0,
    ] {
        let body = MeasuredBody {
            avg_seeks: value,
            avg_normalized_blocks: value * 3.0,
        };
        let json = serde_json::to_string(&body).unwrap();
        let back: MeasuredBody = serde_json::from_str(&json).unwrap();
        assert_eq!(back.avg_seeks.to_bits(), body.avg_seeks.to_bits());
        assert_eq!(
            back.avg_normalized_blocks.to_bits(),
            body.avg_normalized_blocks.to_bits()
        );
    }
}

#[test]
fn unknown_fields_are_ignored_everywhere() {
    // A newer peer may add fields; every DTO must tolerate them.
    let req: Request = serde_json::from_str(
        r#"{"endpoint":"recommend","id":5,"priority":"high","trace_ctx":{"span":1}}"#,
    )
    .expect("unknown request fields ignored");
    assert_eq!(req.endpoint, "recommend");
    assert_eq!(req.id, 5);
    assert_eq!(req.v, PROTOCOL_VERSION, "missing v defaults to current");
    let resp: Response =
        serde_json::from_str(r#"{"v":1,"id":5,"ok":true,"server_build":"abcdef","shard":3}"#)
            .expect("unknown response fields ignored");
    assert!(resp.ok);
    let spec: SchemaSpec = serde_json::from_str(
        r#"{"dims":[{"name":"p","fanouts":[2],"collation":"binary"}],"owner":"dba"}"#,
    )
    .expect("unknown spec fields ignored");
    assert_eq!(spec.dims[0].fanouts, vec![2]);
    let strat: StrategySpec =
        serde_json::from_str(r#"{"dims":[0,1],"snaked":true,"hint":"cold"}"#).unwrap();
    assert_eq!(strat.dims, Some(vec![0, 1]));
}

#[test]
fn minimal_documents_fill_defaults() {
    let req: Request = serde_json::from_str(r#"{"endpoint":"ping"}"#).unwrap();
    assert_eq!(req.v, PROTOCOL_VERSION);
    assert_eq!(req.id, 0);
    assert!(req.schema.is_none() && req.deadline_ms.is_none() && req.eval.is_none());
    let m: MeasureSpec = serde_json::from_str("{}").unwrap();
    assert_eq!(m.records_per_cell, 1);
    assert_eq!(m.page_size, 8_192);
    assert_eq!(m.record_size, 125);
    let resp: Response = serde_json::from_str("{}").unwrap();
    assert!(!resp.ok, "ok defaults to false");
}

// ---------------------------------------------------------------------------
// Golden fixtures: the serialized form of representative documents is part
// of the public contract. A diff here is a wire-format change — bump
// PROTOCOL_VERSION or prove compatibility before regenerating. Only the
// `v2/` fixtures regenerate; the v1 documents at the directory root are a
// frozen record of what v1 clients send and MUST keep parsing forever.
// ---------------------------------------------------------------------------

fn fixture_path(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/service")
        .join(name)
}

fn check_fixture(name: &str, actual: &str) {
    let path = fixture_path(name);
    if std::env::var_os("UPDATE_SERVICE_FIXTURES").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{actual}\n")).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {name} ({e}); run with UPDATE_SERVICE_FIXTURES=1 to create it")
    });
    assert_eq!(
        expected.trim_end(),
        actual,
        "wire format drifted from fixture {name}; if intentional, regenerate \
         with UPDATE_SERVICE_FIXTURES=1"
    );
}

#[test]
fn golden_request_price() {
    check_fixture("v2/request_price.json", &sample_request().to_line());
}

#[test]
fn golden_request_drift() {
    check_fixture("v2/request_drift.json", &sample_drift_request().to_line());
}

#[test]
fn golden_request_recluster() {
    check_fixture(
        "v2/request_recluster.json",
        &sample_recluster_request().to_line(),
    );
}

#[test]
fn golden_response_recommendation() {
    check_fixture(
        "v2/response_recommendation.json",
        &sample_response().to_line(),
    );
}

#[test]
fn golden_response_overloaded() {
    let resp = Response::err(
        9,
        ErrorBody {
            code: "overloaded".into(),
            message: "overloaded; retry after 50 ms".into(),
            retry_after_ms: Some(50),
        },
    );
    check_fixture("v2/response_overloaded.json", &resp.to_line());
}

#[test]
fn golden_response_deduplicated() {
    check_fixture(
        "v2/response_deduplicated.json",
        &sample_deduplicated_response().to_line(),
    );
}

#[test]
fn golden_response_recluster() {
    check_fixture(
        "v2/response_recluster.json",
        &sample_recluster_response().to_line(),
    );
}

#[test]
fn golden_response_stats() {
    let resp = Response {
        stats: Some(sample_stats()),
        ..Response::ok(10)
    };
    check_fixture("v2/response_stats.json", &resp.to_line());
}

#[test]
fn golden_fixtures_still_parse_as_current_protocol() {
    // The pinned bytes must parse with today's code (backward compat),
    // not just compare equal when regenerated. The v2 documents carry the
    // current version; the frozen v1 documents carry v:1, still inside
    // the supported window.
    for name in [
        "v2/request_price.json",
        "v2/request_drift.json",
        "v2/request_recluster.json",
    ] {
        let raw = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let req = Request::parse(raw.trim()).expect("fixture parses");
        assert_eq!(req.v, PROTOCOL_VERSION);
    }
    for name in [
        "v2/response_recommendation.json",
        "v2/response_overloaded.json",
        "v2/response_deduplicated.json",
        "v2/response_recluster.json",
        "v2/response_stats.json",
    ] {
        let raw = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let resp = Response::parse(raw.trim()).expect("fixture parses");
        assert_eq!(resp.v, PROTOCOL_VERSION);
    }
}

#[test]
fn frozen_v1_fixtures_read_identically_through_the_shim() {
    // The v1 fixtures are the bytes real v1 clients produced. They are
    // never regenerated; the member-wise accessors must resolve their
    // flat fields exactly as the v2 envelope would carry them.
    let raw = std::fs::read_to_string(fixture_path("request_price.json")).unwrap();
    let v1 = Request::parse(raw.trim()).expect("v1 price request parses");
    assert_eq!(v1.v, MIN_PROTOCOL_VERSION);
    assert!(v1.env.is_none(), "a v1 frame has no envelope");
    let v2 = sample_request();
    assert_eq!(v1.schema_spec(), v2.schema_spec());
    assert_eq!(v1.workload_spec(), v2.workload_spec());
    assert_eq!(v1.strategy_spec(), v2.strategy_spec());
    assert_eq!(v1.measure_spec(), v2.measure_spec());
    assert_eq!(v1.eval_opts(), v2.eval_opts());

    let raw = std::fs::read_to_string(fixture_path("request_drift.json")).unwrap();
    let drift = Request::parse(raw.trim()).expect("v1 drift request parses");
    assert_eq!(drift.v, MIN_PROTOCOL_VERSION);
    assert_eq!(drift.session.as_deref(), Some("etl-night"));
    assert_eq!(drift.idempotency_key.as_deref(), Some("etl-night-00042"));

    // v1 response documents (what this server used to emit, and what it
    // still emits to v1 clients via `for_version`) parse unchanged, and
    // an old stats body without the recluster block fills defaults.
    for name in [
        "response_recommendation.json",
        "response_overloaded.json",
        "response_deduplicated.json",
        "response_stats.json",
    ] {
        let raw = std::fs::read_to_string(fixture_path(name)).expect("fixture present");
        let resp = Response::parse(raw.trim()).expect("v1 fixture parses");
        assert_eq!(resp.v, MIN_PROTOCOL_VERSION);
        if let Some(stats) = &resp.stats {
            assert_eq!(stats.recluster, ReclusterStatsBody::default());
        }
    }
}

#[test]
fn responses_are_stamped_with_the_clients_version() {
    assert_eq!(Response::ok(1).for_version(1).v, 1);
    assert_eq!(Response::ok(1).for_version(2).v, 2);
    // Out-of-range stamps clamp into the supported window.
    assert_eq!(Response::ok(1).for_version(0).v, MIN_PROTOCOL_VERSION);
    assert_eq!(Response::ok(1).for_version(99).v, PROTOCOL_VERSION);
}
