//! Differential harness for the parallel evaluation engine: for a matrix
//! of grids (2-D and 3-D, uniform and skewed cell counts) and thread
//! counts {1, 2, 4, 8}, the parallel paths must produce **bit-identical**
//! results to the serial implementation — same `f64` bits, same structs,
//! same winners. This is the tentpole correctness contract: parallelism
//! may only change wall time, never a single output bit.

use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::parallel::ParallelConfig;
use snakes_sandwiches::core::path::LatticePath;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::Workload;
use snakes_sandwiches::curves::search::{multistart_two_opt, ExplicitStrategy};
use snakes_sandwiches::curves::{
    hilbert_sandwich_pair, hilbert_sandwich_pair_with, snaked_path_curve, HilbertCurve,
    NestedLoops, ZOrderCurve,
};
use snakes_sandwiches::storage::{
    workload_stats, workload_stats_opts, CellData, EvalOptions, PackedLayout, StorageConfig,
};
use snakes_sandwiches::tpcd::{tpcd_workloads, Evaluator, TpcdConfig};

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn storage_config() -> StorageConfig {
    StorageConfig {
        page_size: 500,
        record_size: 125,
    }
}

/// Deterministic skewed cell counts: cell `i` gets `(i * 7) % 23` records,
/// so some cells are empty and page spans vary.
fn skewed_counts(n: usize) -> Vec<u64> {
    (0..n).map(|i| (i as u64 * 7) % 23).collect()
}

/// One measurement scenario: a schema, its packed grid, and a workload.
struct Scenario {
    name: &'static str,
    schema: StarSchema,
    curve: NestedLoops,
    layout: PackedLayout,
    workload: Workload,
}

fn scenarios() -> Vec<Scenario> {
    let mut out = Vec::new();

    // 2-D, uniform cells.
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let curve = NestedLoops::row_major(vec![4, 4], &[0, 1]);
    let cells = CellData::from_counts(vec![4, 4], vec![4; 16]);
    let layout = PackedLayout::pack(&curve, &cells, storage_config());
    out.push(Scenario {
        name: "2d_uniform",
        schema: schema.clone(),
        curve,
        layout,
        workload: Workload::uniform(shape),
    });

    // 2-D, skewed cells (some empty).
    let shape = LatticeShape::of_schema(&schema);
    let curve = NestedLoops::row_major(vec![4, 4], &[1, 0]);
    let cells = CellData::from_counts(vec![4, 4], skewed_counts(16));
    let layout = PackedLayout::pack(&curve, &cells, storage_config());
    out.push(Scenario {
        name: "2d_skewed",
        schema,
        curve,
        layout,
        workload: Workload::uniform(shape),
    });

    // 3-D, unbalanced hierarchies, skewed cells.
    let schema = StarSchema::new(vec![
        Hierarchy::new("a", vec![3, 2]).unwrap(),
        Hierarchy::new("b", vec![4]).unwrap(),
        Hierarchy::new("c", vec![2, 2]).unwrap(),
    ])
    .unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let extents = schema.grid_shape();
    let n = extents.iter().product::<u64>() as usize;
    let curve = NestedLoops::row_major(extents.clone(), &[2, 0, 1]);
    let cells = CellData::from_counts(extents, skewed_counts(n));
    let layout = PackedLayout::pack(&curve, &cells, storage_config());
    out.push(Scenario {
        name: "3d_skewed",
        schema,
        curve,
        layout,
        workload: Workload::uniform(shape),
    });

    out
}

/// Asserts two `f64`s carry the same bits (stronger than `==`: also
/// distinguishes `-0.0` from `0.0` and would catch NaN bit patterns).
#[track_caller]
fn assert_bits(a: f64, b: f64, what: &str) {
    assert_eq!(a.to_bits(), b.to_bits(), "{what}: {a} vs {b}");
}

#[test]
fn workload_stats_bit_identical_across_thread_counts() {
    for sc in scenarios() {
        let serial = workload_stats(&sc.schema, &sc.curve, &sc.layout, &sc.workload);
        for threads in THREADS {
            for chunk_size in [0, 1, 3] {
                let par = workload_stats_opts(
                    &sc.schema,
                    &sc.curve,
                    &sc.layout,
                    &sc.workload,
                    &EvalOptions::new().threads(threads).chunk_size(chunk_size),
                );
                let ctx = format!("{} threads={threads} chunk={chunk_size}", sc.name);
                assert_bits(
                    par.avg_normalized_blocks,
                    serial.avg_normalized_blocks,
                    &format!("{ctx} blocks"),
                );
                assert_bits(par.avg_seeks, serial.avg_seeks, &format!("{ctx} seeks"));
                // Entire per-class payload, field by field (PartialEq on
                // ClassStats compares the f64s with ==; identical bits
                // imply equality and the bit asserts above cover the
                // reduction).
                assert_eq!(par.per_class, serial.per_class, "{ctx} per_class");
            }
        }
    }
}

#[test]
fn tpcd_sweep_tables_bit_identical_across_thread_counts() {
    // The full Table-4 row: every strategy, every class, one workload —
    // measured serially, then with every thread count.
    let base = TpcdConfig {
        records: 4_000,
        ..TpcdConfig::small()
    };
    let workload = tpcd_workloads(&base)[6].workload.clone();
    let serial = Evaluator::new(base.with_eval(EvalOptions::serial())).evaluate(&workload);
    for threads in THREADS.into_iter().skip(1) {
        let par =
            Evaluator::new(base.with_eval(EvalOptions::new().threads(threads))).evaluate(&workload);
        // StrategyResult's PartialEq compares the f64 costs; equality
        // here means every measured number matches the serial run.
        assert_eq!(par, serial, "threads={threads}");
        for (p, s) in [
            (&par.optimal, &serial.optimal),
            (&par.snaked_optimal, &serial.snaked_optimal),
            (&par.hilbert, &serial.hilbert),
        ] {
            assert_bits(p.avg_seeks, s.avg_seeks, "sweep seeks");
            assert_bits(
                p.avg_normalized_blocks,
                s.avg_normalized_blocks,
                "sweep blocks",
            );
        }
    }
}

#[test]
fn two_opt_multistart_bit_identical_across_thread_counts() {
    let schema = StarSchema::square(2, 2).unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let path = LatticePath::row_major(shape.clone(), &[0, 1]).unwrap();
    let starts: Vec<ExplicitStrategy> = vec![
        ExplicitStrategy::from_linearization(&NestedLoops::row_major(vec![4, 4], &[0, 1])),
        ExplicitStrategy::from_linearization(&NestedLoops::row_major(vec![4, 4], &[1, 0])),
        ExplicitStrategy::from_linearization(&HilbertCurve::square(2)),
        ExplicitStrategy::from_linearization(&ZOrderCurve::square(2)),
        ExplicitStrategy::from_linearization(&snaked_path_curve(&schema, &path)),
    ];
    for (wi, (_, workload)) in snakes_sandwiches::core::workload::bias_family(&shape)
        .into_iter()
        .enumerate()
        .step_by(4)
    {
        let serial = multistart_two_opt(
            &schema,
            &workload,
            &starts,
            10_000,
            wi as u64,
            ParallelConfig::serial(),
        );
        for threads in THREADS.into_iter().skip(1) {
            let par = multistart_two_opt(
                &schema,
                &workload,
                &starts,
                10_000,
                wi as u64,
                ParallelConfig::with_threads(threads),
            );
            assert_eq!(
                par.restart, serial.restart,
                "workload {wi} threads={threads}"
            );
            assert_bits(
                par.cost,
                serial.cost,
                &format!("workload {wi} threads={threads} cost"),
            );
            assert_eq!(
                par.strategy.order(),
                serial.strategy.order(),
                "workload {wi} threads={threads} order"
            );
        }
    }
}

#[test]
fn sandwich_pair_search_bit_identical_across_thread_counts() {
    for n in 1..=2 {
        let serial = hilbert_sandwich_pair(n);
        for threads in THREADS.into_iter().skip(1) {
            let par = hilbert_sandwich_pair_with(n, ParallelConfig::with_threads(threads));
            assert_eq!(par, serial, "n={n} threads={threads}");
        }
    }
}
