//! End-to-end scenarios across all crates: stream → workload → DP →
//! snaked curve → packed pages → measured I/O, plus unbalanced-hierarchy
//! handling (§4.1).

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::optimal_lattice_path;
use snakes_sandwiches::core::stats::WorkloadEstimator;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::workload_stats;
use snakes_sandwiches::tpcd::{generate_cells, paper_queries, tpcd_workloads};

#[test]
fn stream_to_clustering_to_measured_io() {
    // 1. Observe a query stream dominated by the Q9-style class.
    let config = TpcdConfig {
        records: 40_000,
        ..TpcdConfig::small()
    };
    let schema = config.star_schema();
    let shape = LatticeShape::of_schema(&schema);
    let mut est = WorkloadEstimator::new(shape.clone());
    for q in paper_queries() {
        let n = if q.tpcd_number == 9 { 800 } else { 40 };
        est.observe_many(&q.class, n).unwrap();
    }
    let workload = est.to_workload_smoothed(1.0).unwrap();

    // 2. Recommend and materialize.
    let rec = recommend(&schema, &workload);
    let curve = snaked_path_curve(&schema, &rec.optimal_path);

    // 3. Pack generated data and measure.
    let cells = generate_cells(&config);
    let layout = PackedLayout::pack(&curve, &cells, config.storage());
    let measured = workload_stats(&schema, &curve, &layout, &workload);

    // 4. The recommendation must beat a deliberately bad clustering on the
    //    same data by a wide margin.
    let worst_order: Vec<usize> = {
        // Pick the row-major with the worst analytic cost.
        rec.row_majors
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(o, _, _)| o.clone())
            .unwrap()
    };
    let bad_path = LatticePath::row_major(shape, &worst_order).unwrap();
    let bad_curve = path_curve(&schema, &bad_path);
    let bad_layout = PackedLayout::pack(&bad_curve, &cells, config.storage());
    let bad = workload_stats(&schema, &bad_curve, &bad_layout, &workload);

    assert!(
        measured.avg_seeks * 2.0 < bad.avg_seeks,
        "recommended {} seeks vs worst row-major {}",
        measured.avg_seeks,
        bad.avg_seeks
    );
}

#[test]
fn unbalanced_hierarchy_advisor_matches_padded_schema() {
    // An unbalanced product hierarchy: one category with 3 leaf products at
    // depth 2, another category whose 2 products are at depth 1 (padded by
    // a dummy level per §4.1).
    //   root(0) -> c1(1), c2(2); c1 -> p(3), p(4), p(5); c2 -> p(6), p(7)
    let tree = TreeHierarchy::from_parents("product", &[0, 0, 0, 1, 1, 1, 2, 2]).unwrap();
    let view = tree.balance();
    assert_eq!(view.levels, 2);
    // Padded leaves: 3 + 2 = 5; level-1 nodes: 2 real (+ 0 dummies at that
    // depth... c2's products pad *below*, so level 1 holds c1, c2 and level
    // 0 holds 5 padded leaves).
    assert_eq!(view.leaves_per_level, vec![5, 2, 1]);

    // Fractional average fanouts drive the DP directly.
    let shape = LatticeShape::new(vec![view.levels, 1]);
    let model = CostModel::new(shape.clone(), vec![view.average_fanouts.clone(), vec![4.0]]);
    let w = Workload::uniform(shape);
    let dp = optimal_lattice_path(&model, &w);
    assert!(dp.cost >= 1.0);
    assert_eq!(dp.path.len(), 3);
}

#[test]
fn advisor_guarantee_holds_against_best_snaked_path() {
    // §5.3: snaked optimal lattice path within 2x of the optimal snaked
    // lattice path, on every 27-family workload of a 2-D slice of the
    // TPC-D schema.
    let schema = StarSchema::new(vec![
        Hierarchy::new("parts", vec![4, 5]).unwrap(),
        Hierarchy::new("time", vec![12, 7]).unwrap(),
    ])
    .unwrap();
    let model = CostModel::of_schema(&schema);
    for (_, w) in bias_family(model.shape()) {
        let dp = optimal_lattice_path(&model, &w);
        let snaked_opt = snakes_sandwiches::core::snake::snaked_expected_cost(&model, &dp.path, &w);
        let (_, best_snaked) =
            snakes_sandwiches::core::snake::best_snaked_path_exhaustive(&model, &w);
        assert!(
            snaked_opt / best_snaked < 2.0,
            "guarantee violated: {snaked_opt} vs {best_snaked}"
        );
    }
}

#[test]
fn tpcd_family_snaking_is_monotone_improvement() {
    // For every one of the 27 workloads, snaking the optimal path is a
    // (weak) improvement in the analytic model.
    let config = TpcdConfig::small();
    let schema = config.star_schema();
    let model = CostModel::of_schema(&schema);
    for nw in tpcd_workloads(&config) {
        let dp = optimal_lattice_path(&model, &nw.workload);
        let snaked =
            snakes_sandwiches::core::snake::snaked_expected_cost(&model, &dp.path, &nw.workload);
        assert!(
            snaked <= dp.cost + 1e-9,
            "workload {}: snaked {snaked} vs plain {}",
            nw.number,
            dp.cost
        );
    }
}

#[test]
fn prelude_covers_the_readme_flow() {
    // The README's five-line flow compiles and runs against the prelude
    // alone.
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let workload = Workload::uniform(shape);
    let rec = recommend(&schema, &workload);
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    assert_eq!(curve.num_cells(), 16);
    assert!(rec.snaked_cost <= rec.plain_cost);
    assert_eq!(rec.guarantee_factor, 2.0);
}
