//! Property-based tests over the core invariants, with randomly generated
//! schemas, paths, workloads, curves, and data.

use proptest::prelude::*;
use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::{optimal_lattice_path, optimal_lattice_path_exhaustive};
use snakes_sandwiches::core::parallel::metrics;
use snakes_sandwiches::core::sandwich::Cv2;
use snakes_sandwiches::core::snake::{max_benefit, snaked_expected_cost};
use snakes_sandwiches::curves::cv_of;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::exec::query_cost;
use snakes_sandwiches::storage::{workload_stats_opts, CellData, EvalOptions};

/// Serializes the two properties that read the process-global metrics
/// counters, so concurrent test threads cannot pollute each other's
/// deltas. `unwrap_or_else` keeps a poisoned lock (a failed case in the
/// other property) from cascading into spurious failures here.
static METRICS_GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Pseudo-random per-cell record counts in 0..6 from a seed (the same
/// generator `storage_invariants` uses).
fn seeded_counts(seed: u64, n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| {
            (seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407))
                >> 33)
                % 6
        })
        .collect()
}

/// A random small schema: 2-3 dimensions, 1-2 levels, fanouts 2-4 (grids
/// stay below ~4k cells).
fn schema_strategy() -> impl Strategy<Value = StarSchema> {
    proptest::collection::vec(proptest::collection::vec(2u64..=4, 1..=2), 2..=3).prop_map(|dims| {
        StarSchema::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, fanouts)| {
                    Hierarchy::new(format!("d{i}"), fanouts).expect("valid fanouts")
                })
                .collect(),
        )
        .expect("non-empty")
    })
}

/// A random workload over a shape, from positive integer weights.
fn workload_strategy(shape: LatticeShape) -> impl Strategy<Value = Workload> {
    let n = shape.num_classes();
    proptest::collection::vec(0u32..100, n).prop_filter_map("all-zero weights", move |ws| {
        let weights: Vec<f64> = ws.iter().map(|&w| w as f64).collect();
        Workload::from_weights(shape.clone(), weights).ok()
    })
}

/// A random lattice path as a shuffled dim multiset.
fn path_strategy(shape: LatticeShape) -> impl Strategy<Value = LatticePath> {
    let mut dims = Vec::new();
    for (d, &l) in shape.levels().iter().enumerate() {
        dims.extend(std::iter::repeat_n(d, l));
    }
    Just(dims)
        .prop_shuffle()
        .prop_map(move |dims| LatticePath::from_dims(shape.clone(), dims).expect("valid"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Snaking never increases expected cost — any schema, path, workload.
    #[test]
    fn snaking_never_increases_cost(
        (schema, path, workload) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape.clone()), workload_strategy(shape))
        })
    ) {
        let model = CostModel::of_schema(&schema);
        let plain = model.expected_cost(&path, &workload);
        let snaked = snaked_expected_cost(&model, &path, &workload);
        prop_assert!(snaked <= plain + 1e-9);
        // Theorem 3: and the improvement is bounded by 2.
        prop_assert!(plain / snaked < 2.0 + 1e-9);
    }

    /// Theorem 3's per-class form: max benefit < 2 for every path.
    #[test]
    fn max_benefit_below_two(
        (schema, path) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape))
        })
    ) {
        let model = CostModel::of_schema(&schema);
        prop_assert!(max_benefit(&model, &path) < 2.0);
    }

    /// The DP is optimal: no enumerated path is cheaper.
    #[test]
    fn dp_is_optimal(
        (schema, workload) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), workload_strategy(shape))
        })
    ) {
        let model = CostModel::of_schema(&schema);
        let dp = optimal_lattice_path(&model, &workload);
        let (_, best) = optimal_lattice_path_exhaustive(&model, &workload);
        prop_assert!((dp.cost - best).abs() < 1e-9);
        // The returned path realizes the returned cost.
        prop_assert!((model.expected_cost(&dp.path, &workload) - dp.cost).abs() < 1e-9);
    }

    /// Lattice-path curves are bijections, snaked or not, and their CVs
    /// have exactly N - 1 edges.
    #[test]
    fn path_curves_are_bijective(
        (schema, path, snaked) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape), any::<bool>())
        })
    ) {
        let curve = if snaked {
            snaked_path_curve(&schema, &path)
        } else {
            path_curve(&schema, &path)
        };
        let n = curve.num_cells();
        let mut seen = std::collections::HashSet::new();
        for r in 0..n {
            let c = curve.coords_vec(r);
            prop_assert_eq!(curve.rank(&c), r);
            prop_assert!(seen.insert(c));
        }
        let cv = cv_of(&schema, &curve);
        prop_assert!((cv.total_edges() - (n as f64 - 1.0)).abs() < 1e-9);
        if snaked {
            prop_assert!(cv.is_non_diagonal());
        }
    }

    /// Storage packing conserves records and respects basic inequalities.
    #[test]
    fn storage_invariants(
        (schema, path, counts_seed) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape), any::<u64>())
        })
    ) {
        let extents = schema.grid_shape();
        let n: u64 = extents.iter().product();
        // Pseudo-random counts 0..6 per cell.
        let counts: Vec<u64> = (0..n)
            .map(|i| {
                (counts_seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(i.wrapping_mul(1442695040888963407))
                    >> 33)
                    % 6
            })
            .collect();
        let total: u64 = counts.iter().sum();
        let cells = CellData::from_counts(extents.clone(), counts);
        prop_assert_eq!(cells.total_records(), total);
        let cfg = StorageConfig { page_size: 512, record_size: 125 };
        let curve = snaked_path_curve(&schema, &path);
        let layout = PackedLayout::pack(&curve, &cells, cfg);
        prop_assert_eq!(layout.total_records(), total);
        // Full-grid query: reads everything, 1 seek (pages contiguous).
        let ranges: Vec<std::ops::Range<u64>> = extents.iter().map(|&e| 0..e).collect();
        let qc = query_cost(&curve, &layout, &ranges);
        prop_assert_eq!(qc.records, total);
        if total > 0 {
            prop_assert_eq!(qc.seeks, 1);
            prop_assert_eq!(qc.blocks, layout.total_pages());
            prop_assert!(qc.blocks >= qc.min_blocks);
            prop_assert!(qc.seeks <= qc.blocks);
        }
    }

    /// Random consistent diagonal vectors survive the full sandwich
    /// pipeline, and the chain never increases cost.
    #[test]
    fn sandwich_pipeline_on_perturbed_snaked_cvs(
        (path_a, path_b, wseed) in {
            let shape = LatticeShape::new(vec![2, 2]);
            (path_strategy(shape.clone()), path_strategy(shape), any::<u32>())
        }
    ) {
        // Build a consistent diagonal vector by averaging two snaked-path
        // CVs and shifting one unit of mass to a diagonal entry when the
        // result stays consistent.
        let a = Cv2::of_snaked_path(2, &path_a);
        let b = Cv2::of_snaked_path(2, &path_b);
        let avg = |x: &[u64], y: &[u64]| -> Vec<u64> {
            x.iter().zip(y).map(|(p, q)| (p + q) / 2).collect()
        };
        let mut av = avg(a.a(), b.a());
        let bv = avg(a.b(), b.b());
        let total: u64 = av.iter().sum::<u64>() + bv.iter().sum::<u64>();
        // Repair rounding loss into a1 (always safe downward).
        if total < 15 {
            av[0] += 15 - total;
        }
        let base = Cv2::non_diagonal(2, av.clone(), bv.clone()).expect("arity");
        prop_assume!(base.is_consistent());
        // Move one unit into a diagonal slot if possible.
        let mut candidates = vec![base.clone()];
        if av[0] > 0 {
            let mut a2 = av.clone();
            a2[0] -= 1;
            let d = vec![vec![1, 0], vec![0, 0]];
            let v = Cv2::new(2, a2, bv.clone(), d).expect("arity");
            if v.is_consistent() {
                candidates.push(v);
            }
        }
        let shape = LatticeShape::new(vec![2, 2]);
        let weights: Vec<f64> = (0..shape.num_classes())
            .map(|i| ((wseed as usize * 31 + i * 17) % 13 + 1) as f64)
            .collect();
        let w = Workload::from_weights(shape, weights).expect("valid");
        for v in candidates {
            let nd = v.eliminate_diagonals().expect("Lemma 4");
            let min = nd.minimalize();
            let leaves = min.sandwich_closure().expect("closure");
            let best = leaves.iter().map(|l| l.cost(&w)).fold(f64::INFINITY, f64::min);
            prop_assert!(nd.cost(&w) <= v.cost(&w) + 1e-9);
            prop_assert!(min.cost(&w) <= nd.cost(&w) + 1e-9);
            prop_assert!(best <= min.cost(&w) + 1e-9);
            for l in &leaves {
                prop_assert!(l.to_snaked_path().is_some());
            }
        }
    }

    /// Random *diagonal* consistent vectors at n = 3 survive the full
    /// Lemma 4 → minimalize → Theorem 2 pipeline with the domination chain
    /// intact. Vectors are built by rejection: random snaked-path CV plus
    /// random moves of mass from axis entries into diagonal slots.
    #[test]
    fn sandwich_pipeline_on_random_n3_vectors(
        (path, moves, wseed) in {
            let shape = LatticeShape::new(vec![3, 3]);
            (
                path_strategy(shape),
                proptest::collection::vec((0usize..3, 0usize..3, 0usize..2, 1u64..4), 0..6),
                any::<u32>(),
            )
        }
    ) {
        let base = Cv2::of_snaked_path(3, &path);
        let mut a = base.a().to_vec();
        let mut b = base.b().to_vec();
        let mut d = vec![vec![0u64; 3]; 3];
        for &(i, j, from_a, amount) in &moves {
            // Move `amount` from a_i (or b_j) into d_ij when available.
            let src = if from_a == 0 { &mut a[i] } else { &mut b[j] };
            let take = amount.min(*src);
            *src -= take;
            d[i][j] += take;
        }
        let v = Cv2::new(3, a, b, d).expect("arity ok");
        prop_assume!(v.is_consistent());
        let shape = LatticeShape::new(vec![3, 3]);
        let weights: Vec<f64> = (0..shape.num_classes())
            .map(|i| ((wseed as usize * 29 + i * 13) % 17 + 1) as f64)
            .collect();
        let w = Workload::from_weights(shape, weights).expect("valid");
        let nd = v.eliminate_diagonals().expect("Lemma 4 split must exist");
        let min = nd.minimalize();
        let leaves = min.sandwich_closure().expect("closure terminates");
        prop_assert!(nd.cost(&w) <= v.cost(&w) + 1e-9);
        prop_assert!(min.cost(&w) <= nd.cost(&w) + 1e-9);
        let best = leaves.iter().map(|l| l.cost(&w)).fold(f64::INFINITY, f64::min);
        prop_assert!(best <= min.cost(&w) + 1e-9);
        for l in &leaves {
            prop_assert!(l.to_snaked_path().is_some(), "leaf {l} not a snaked path");
        }
    }

    /// The parallel engine is thread-count invariant: measured expected
    /// cost (and every per-class statistic) carries identical bits for
    /// any worker count on any random schema, path, workload, and data.
    #[test]
    fn measured_cost_thread_count_invariant(
        (schema, path, workload, counts_seed, threads) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (
                Just(s),
                path_strategy(shape.clone()),
                workload_strategy(shape),
                any::<u64>(),
                2usize..=8,
            )
        })
    ) {
        let _g = METRICS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let extents = schema.grid_shape();
        let n: u64 = extents.iter().product();
        let cells = CellData::from_counts(extents, seeded_counts(counts_seed, n));
        let cfg = StorageConfig { page_size: 512, record_size: 125 };
        let curve = snaked_path_curve(&schema, &path);
        let layout = PackedLayout::pack(&curve, &cells, cfg);
        let serial = workload_stats_opts(
            &schema, &curve, &layout, &workload, &EvalOptions::serial(),
        );
        let par = workload_stats_opts(
            &schema, &curve, &layout, &workload, &EvalOptions::new().threads(threads),
        );
        prop_assert_eq!(
            par.avg_normalized_blocks.to_bits(),
            serial.avg_normalized_blocks.to_bits()
        );
        prop_assert_eq!(par.avg_seeks.to_bits(), serial.avg_seeks.to_bits());
        prop_assert_eq!(par.per_class, serial.per_class);
    }

    /// Metrics-counter consistency: one measurement run advances
    /// `queries_executed` by exactly the sum of per-class query counts,
    /// for any thread count.
    #[test]
    fn metrics_count_queries_consistently(
        (schema, path, counts_seed, threads) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape), any::<u64>(), 1usize..=8)
        })
    ) {
        let _g = METRICS_GUARD.lock().unwrap_or_else(|e| e.into_inner());
        let extents = schema.grid_shape();
        let n: u64 = extents.iter().product();
        let cells = CellData::from_counts(extents, seeded_counts(counts_seed, n));
        let cfg = StorageConfig { page_size: 512, record_size: 125 };
        let curve = snaked_path_curve(&schema, &path);
        let layout = PackedLayout::pack(&curve, &cells, cfg);
        let shape = LatticeShape::of_schema(&schema);
        // Uniform workload: every class has positive probability, so the
        // run measures all of them.
        let workload = Workload::uniform(shape);
        let before = metrics::snapshot();
        let stats = workload_stats_opts(
            &schema, &curve, &layout, &workload, &EvalOptions::new().threads(threads),
        );
        let delta = metrics::snapshot().since(&before);
        let expected: u64 = stats.per_class.iter().map(|c| c.queries).sum();
        prop_assert_eq!(delta.queries_executed, expected);
        // Every query of the finest class touches its cell's pages, so a
        // non-empty grid must touch pages.
        if cells.total_records() > 0 {
            prop_assert!(delta.pages_touched > 0);
        }
    }

    /// Hilbert, Z-order and Gray curves are bijective with inverse rank on
    /// random sizes, and Hilbert stays grid-adjacent.
    #[test]
    fn space_filling_curves_bijective(bits in 1u32..=4, k in 2usize..=3) {
        let curves: Vec<Box<dyn Linearization>> = vec![
            Box::new(HilbertCurve::new(k, bits)),
            Box::new(ZOrderCurve::new(vec![1u64 << bits; k])),
            Box::new(GrayCurve::new(vec![1u64 << bits; k])),
        ];
        for lin in &curves {
            let n = lin.num_cells();
            let mut seen = std::collections::HashSet::new();
            for r in 0..n {
                let c = lin.coords_vec(r);
                prop_assert_eq!(lin.rank(&c), r);
                prop_assert!(seen.insert(c));
            }
        }
        // Hilbert adjacency.
        let h = HilbertCurve::new(k, bits);
        let mut prev = h.coords_vec(0);
        for r in 1..h.num_cells() {
            let cur = h.coords_vec(r);
            let dist: u64 = prev.iter().zip(&cur).map(|(a, b)| a.abs_diff(*b)).sum();
            prop_assert_eq!(dist, 1);
            prev = cur;
        }
    }
}
