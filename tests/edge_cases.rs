//! Degenerate and boundary configurations across the stack: fanout-1
//! levels (dummy levels from §4.1 padding), single-cell grids, one
//! dimension, and empty data.

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::optimal_lattice_path;
use snakes_sandwiches::core::snake::snaked_expected_cost;
use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::exec::query_cost;
use snakes_sandwiches::storage::CellData;

#[test]
fn fanout_one_levels_are_harmless() {
    // §4.1 padding introduces fanout-1 dummy levels; everything must keep
    // working and costs must be unchanged relative to the unpadded schema.
    let padded = StarSchema::new(vec![
        Hierarchy::new("a", vec![2, 1, 2]).unwrap(), // dummy middle level
        Hierarchy::new("b", vec![3]).unwrap(),
    ])
    .unwrap();
    let shape = LatticeShape::of_schema(&padded);
    let model = CostModel::of_schema(&padded);
    let w = Workload::uniform(shape.clone());
    let dp = optimal_lattice_path(&model, &w);
    assert!(dp.cost >= 1.0);
    // Physical curves stay bijective with the dummy loop present.
    for p in LatticePath::enumerate(&shape) {
        let curve = snaked_path_curve(&padded, &p);
        let mut seen = std::collections::HashSet::new();
        for r in 0..curve.num_cells() {
            assert!(seen.insert(curve.coords_vec(r)));
        }
        // Snaking still never hurts.
        assert!(snaked_expected_cost(&model, &p, &w) <= model.expected_cost(&p, &w) + 1e-9);
    }
}

#[test]
fn single_cell_grid() {
    let schema = StarSchema::new(vec![
        Hierarchy::new("x", vec![1]).unwrap(),
        Hierarchy::new("y", vec![1]).unwrap(),
    ])
    .unwrap();
    let shape = LatticeShape::of_schema(&schema);
    assert_eq!(schema.num_cells(), 1);
    let model = CostModel::of_schema(&schema);
    let w = Workload::uniform(shape.clone());
    let dp = optimal_lattice_path(&model, &w);
    assert!((dp.cost - 1.0).abs() < 1e-12);
    for p in LatticePath::enumerate(&shape) {
        let curve = path_curve(&schema, &p);
        assert_eq!(curve.num_cells(), 1);
        assert_eq!(curve.coords_vec(0), vec![0, 0]);
    }
}

#[test]
fn one_dimensional_schema_end_to_end() {
    let schema = StarSchema::new(vec![Hierarchy::new("t", vec![4, 3]).unwrap()]).unwrap();
    let shape = LatticeShape::of_schema(&schema);
    let w = Workload::uniform(shape.clone());
    let rec = recommend(&schema, &w);
    // One dimension has exactly one path; everything is on it.
    assert!((rec.plain_cost - 1.0).abs() < 1e-12);
    assert!((rec.snaked_cost - 1.0).abs() < 1e-12);
    assert_eq!(rec.row_majors.len(), 1);
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    let cells = CellData::from_counts(vec![12], vec![2; 12]);
    let layout = PackedLayout::pack(
        &curve,
        &cells,
        StorageConfig {
            page_size: 512,
            record_size: 125,
        },
    );
    // One-element slice is intentional: a query region over the single dim.
    #[allow(clippy::single_range_in_vec_init)]
    let c = query_cost(&curve, &layout, &[0..12]);
    assert_eq!(c.seeks, 1);
    assert_eq!(c.records, 24);
}

#[test]
fn empty_table_scans_cleanly() {
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let p = LatticePath::row_major(shape, &[0, 1]).unwrap();
    let curve = path_curve(&schema, &p);
    let cells = CellData::empty(vec![4, 4]);
    let layout = PackedLayout::pack(
        &curve,
        &cells,
        StorageConfig {
            page_size: 512,
            record_size: 125,
        },
    );
    assert_eq!(layout.total_pages(), 0);
    let c = query_cost(&curve, &layout, &[0..4, 0..4]);
    assert_eq!(c.seeks, 0);
    assert_eq!(c.blocks, 0);
    assert_eq!(c.normalized_blocks(), None);
}

#[test]
fn workload_mass_entirely_on_bottom_and_top() {
    // Degenerate workloads: all mass on ⊥ (every strategy costs 1) and all
    // on ⊤ (likewise), so the DP is indifferent but must stay correct.
    let schema = StarSchema::paper_toy();
    let model = CostModel::of_schema(&schema);
    let shape = model.shape().clone();
    for class in [shape.bottom(), shape.top()] {
        let w = Workload::point(shape.clone(), &class).unwrap();
        for p in LatticePath::enumerate(&shape) {
            assert!((model.expected_cost(&p, &w) - 1.0).abs() < 1e-12);
            assert!((snaked_expected_cost(&model, &p, &w) - 1.0).abs() < 1e-12);
        }
    }
}
