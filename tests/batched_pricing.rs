//! Batched signature pricing must be invisible in the results: a
//! coalesced same-fingerprint batch (one [`BatchScope`] shared across the
//! tick) returns bit-identical responses to strictly serial evaluation
//! (a fresh scope per request), across both evaluation engines. Also
//! drives the batch path end-to-end over the wire and checks the
//! `stats.batching` counters move.

use snakes_sandwiches::core::eval::{EvalEngine, EvalOptions};
use snakes_sandwiches::service::protocol::{
    ClassWeight, DimSpec, MeasureSpec, SchemaSpec, StrategySpec, WorkloadSpec,
};
use snakes_sandwiches::service::{
    BatchScope, Deadline, Engine, PipelinedClient, Request, Server, ServerConfig,
};
use std::time::Instant;

fn sample_schema() -> SchemaSpec {
    SchemaSpec {
        dims: vec![
            DimSpec {
                name: "parts".into(),
                fanouts: vec![40, 5],
            },
            DimSpec {
                name: "time".into(),
                fanouts: vec![12, 7],
            },
        ],
    }
}

fn sample_workload(variant: u64) -> WorkloadSpec {
    WorkloadSpec {
        probs: None,
        classes: Some(vec![
            ClassWeight {
                class: vec![0, 2],
                weight: 3.0 + variant as f64,
            },
            ClassWeight {
                class: vec![2, 0],
                weight: 1.0,
            },
        ]),
        marginals: None,
    }
}

fn price_request(id: u64, variant: u64, engine: EvalEngine) -> Request {
    let mut req = Request::price(
        sample_schema(),
        sample_workload(variant),
        StrategySpec::snaked_path(vec![0, 1, 0, 1]),
    );
    req.id = id;
    req.eval = Some(EvalOptions::serial().engine(engine));
    req
}

fn recommend_request(id: u64, variant: u64) -> Request {
    let mut req = Request::recommend(sample_schema(), sample_workload(variant));
    req.id = id;
    req
}

/// The same mixed burst priced two ways: one shared scope (coalesced) vs
/// a fresh scope per request (strictly serial). Every response must be
/// bit-identical, including `cache_hit` flags.
fn assert_batch_matches_serial(requests: &[Request]) {
    let deadline = Deadline::from_ms(Instant::now(), None);

    let serial_engine = Engine::new();
    let serial: Vec<String> = requests
        .iter()
        .map(|req| {
            let mut scope = BatchScope::new();
            serde_json::to_string(&serial_engine.handle_batched(req, &deadline, &mut scope))
                .expect("serialize")
        })
        .collect();

    let batched_engine = Engine::new();
    let mut scope = BatchScope::new();
    let batched: Vec<String> = requests
        .iter()
        .map(|req| {
            serde_json::to_string(&batched_engine.handle_batched(req, &deadline, &mut scope))
                .expect("serialize")
        })
        .collect();

    for (i, (s, b)) in serial.iter().zip(&batched).enumerate() {
        assert_eq!(s, b, "request {i} diverged between serial and batched");
    }
}

#[test]
fn batched_price_is_bit_identical_to_serial_on_both_engines() {
    for engine in [EvalEngine::Cells, EvalEngine::Runs] {
        // Three distinct fingerprints, each repeated: leaders compute,
        // followers replay; serial followers hit the signature cache.
        let mut requests = Vec::new();
        let mut id = 0;
        for round in 0..3 {
            for variant in 0..3 {
                id += 1;
                requests.push(price_request(id, variant, engine));
                let _ = round;
            }
        }
        assert_batch_matches_serial(&requests);
    }
}

#[test]
fn batched_recommend_is_bit_identical_to_serial() {
    let mut requests = Vec::new();
    for id in 1..=9u64 {
        requests.push(recommend_request(id, id % 3));
    }
    assert_batch_matches_serial(&requests);
}

#[test]
fn batched_measured_price_is_bit_identical_to_serial() {
    // Physical measurement rides along with the analytic price: the
    // measured body must also survive coalescing bit-for-bit.
    let mut requests = Vec::new();
    for id in 1..=6u64 {
        let mut req = price_request(id, id % 2, EvalEngine::Cells);
        req.measure = Some(MeasureSpec {
            records_per_cell: 3,
            page_size: 4_096,
            record_size: 125,
            physical: true,
        });
        requests.push(req);
    }
    assert_batch_matches_serial(&requests);
}

#[test]
fn coalescing_is_observable_over_the_wire() {
    // One shard, one pipelined burst of identical price requests: they
    // land in the same tick, so the batch layer must coalesce some of
    // them — visible in `stats.batching` — and every response must carry
    // the same cost bits as a direct library call.
    let server = Server::spawn(ServerConfig {
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();

    let expected = {
        let engine = Engine::new();
        let deadline = Deadline::from_ms(Instant::now(), None);
        let resp = engine.handle(&price_request(1, 0, EvalEngine::Cells), &deadline);
        assert!(resp.ok, "{resp:?}");
        resp.price.expect("price body").expected_cost
    };

    let mut client = PipelinedClient::connect(addr, 32).expect("connect");
    let mut responses = Vec::new();
    for id in 1..=32u64 {
        if let Some(r) = client
            .send(price_request(id, 0, EvalEngine::Cells))
            .expect("send")
        {
            responses.push(r);
        }
    }
    responses.extend(client.finish().expect("finish"));
    assert_eq!(responses.len(), 32);
    for resp in &responses {
        assert!(resp.ok, "{resp:?}");
        let price = resp.price.as_ref().expect("price body");
        assert_eq!(
            price.expected_cost.to_bits(),
            expected.to_bits(),
            "wire response cost diverged from direct library call"
        );
    }

    let stats = client
        .send(Request::new("stats"))
        .expect("send stats")
        .map(Ok)
        .unwrap_or_else(|| {
            client
                .finish()
                .map(|mut v| v.pop().expect("stats response"))
        })
        .expect("stats response");
    let body = stats.stats.expect("stats body");
    assert!(
        body.batching.coalesced > 0,
        "expected coalesced followers after an identical pipelined burst, saw {:?}",
        body.batching
    );
    assert!(body.batching.batches > 0);

    server.join();
}
