//! Differential harness for the aggregation kernel family: the blocked +
//! LUT kernel, the scalar fallback, and the multi-worker curve walk must
//! all be **bit-identical** to the retained scalar reference
//! (`aggregate_class_costs_reference`) — same `u64` signature and
//! internal-edge tables, same `f64` bits in every derived cost — across
//! every curve family, random grids up to 4-D, and 1/2/4 workers.
//!
//! The kernels are exact integer pipelines until the final
//! normalization, so equality here is `==` on whole structs and
//! `to_bits()` on derived floats — no tolerances anywhere.

use proptest::prelude::*;
use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::parallel::{metrics, ParallelConfig};
use snakes_sandwiches::core::path::LatticePath;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::Workload;
use snakes_sandwiches::curves::{
    aggregate_class_costs, aggregate_class_costs_reference, aggregate_class_costs_with, path_curve,
    snaked_path_curve, AggregateOptions, CompactHilbert, GrayCurve, Linearization, NestedLoops,
    ZOrderCurve,
};

const THREADS: [usize; 3] = [1, 2, 4];

/// Random star schema up to 4-D, fanouts 1..=4 (fanout 1 exercises
/// zero-width LUT fields), at most two levels per dimension, grid capped
/// so the scalar reference stays fast.
fn schema_strategy() -> impl Strategy<Value = StarSchema> {
    proptest::collection::vec(proptest::collection::vec(1u64..=4, 1..=2), 1..=4)
        .prop_filter("grid too large", |dims| {
            dims.iter()
                .map(|f| f.iter().product::<u64>())
                .product::<u64>()
                <= 4096
        })
        .prop_map(build_schema)
}

/// Random power-of-two star schema (Z-order and Gray require pow2
/// extents) up to 3-D.
fn pow2_schema_strategy() -> impl Strategy<Value = StarSchema> {
    proptest::collection::vec(
        proptest::collection::vec((0u32..=2).prop_map(|e| 1u64 << e), 1..=2),
        1..=3,
    )
    .prop_filter("grid too large", |dims| {
        dims.iter()
            .map(|f| f.iter().product::<u64>())
            .product::<u64>()
            <= 4096
    })
    .prop_map(build_schema)
}

fn build_schema(dims: Vec<Vec<u64>>) -> StarSchema {
    StarSchema::new(
        dims.into_iter()
            .enumerate()
            .map(|(i, fanouts)| Hierarchy::new(format!("d{i}"), fanouts).expect("valid fanouts"))
            .collect(),
    )
    .expect("non-empty")
}

/// A random lattice path as a shuffled dim multiset.
fn path_strategy(shape: LatticeShape) -> impl Strategy<Value = LatticePath> {
    let mut dims = Vec::new();
    for (d, &l) in shape.levels().iter().enumerate() {
        dims.extend(std::iter::repeat_n(d, l));
    }
    Just(dims)
        .prop_shuffle()
        .prop_map(move |dims| LatticePath::from_dims(shape.clone(), dims).expect("valid"))
}

/// The contract: every production kernel — blocked serial, and the
/// parallel walk at each worker count — reproduces the scalar reference
/// exactly, in the `u64` tables and in every derived `f64` bit.
fn assert_kernels_match(schema: &StarSchema, lin: &(impl Linearization + Sync)) {
    let reference = aggregate_class_costs_reference(schema, lin);
    let blocked = aggregate_class_costs(schema, lin);
    assert_eq!(blocked, reference, "blocked kernel diverged");

    for threads in THREADS {
        let par = aggregate_class_costs_with(
            schema,
            lin,
            AggregateOptions::with_parallel(ParallelConfig::with_threads(threads)),
        );
        assert_eq!(
            par, reference,
            "parallel walk diverged at {threads} workers"
        );
    }

    // u64 table equality implies these, but the paper-facing surface is
    // the floats — pin them bit-for-bit explicitly.
    for (r, b) in reference.class_costs().iter().zip(&blocked.class_costs()) {
        assert_eq!(r.to_bits(), b.to_bits(), "class cost bits diverged");
    }
    let shape = LatticeShape::of_schema(schema);
    let uniform = Workload::uniform(shape);
    assert_eq!(
        reference.expected_cost(&uniform).to_bits(),
        blocked.expected_cost(&uniform).to_bits(),
        "expected cost bits diverged"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Nested row-major and boustrophedon loops over a random dim order.
    #[test]
    fn nested_loops_kernels_match(
        (schema, seed) in schema_strategy().prop_flat_map(|s| {
            let k = s.dims().len();
            (Just(s), proptest::collection::vec(0usize..100, k))
        })
    ) {
        let grid = schema.grid_shape();
        let mut order: Vec<usize> = (0..grid.len()).collect();
        // Deterministic shuffle from the seed vector.
        for (i, &r) in seed.iter().enumerate() {
            order.swap(i, r % grid.len());
        }
        assert_kernels_match(&schema, &NestedLoops::row_major(grid.clone(), &order));
        assert_kernels_match(&schema, &NestedLoops::boustrophedon(grid, &order));
    }

    /// Plain and snaked lattice-path curves over a random path.
    #[test]
    fn path_curve_kernels_match(
        (schema, path) in schema_strategy().prop_flat_map(|s| {
            let shape = LatticeShape::of_schema(&s);
            (Just(s), path_strategy(shape))
        })
    ) {
        assert_kernels_match(&schema, &path_curve(&schema, &path));
        assert_kernels_match(&schema, &snaked_path_curve(&schema, &path));
    }

    /// Z-order and Gray curves over power-of-two grids.
    #[test]
    fn zorder_and_gray_kernels_match(schema in pow2_schema_strategy()) {
        assert_kernels_match(&schema, &ZOrderCurve::new(schema.grid_shape()));
        assert_kernels_match(&schema, &GrayCurve::new(schema.grid_shape()));
    }

    /// Compact Hilbert over arbitrary (non-pow2) grids.
    #[test]
    fn hilbert_kernels_match(schema in schema_strategy()) {
        assert_kernels_match(&schema, &CompactHilbert::new(schema.grid_shape()));
    }
}

/// CI smoke: a grid big enough that a 2-worker walk genuinely splits into
/// two spans (the worker cap yields ≥ 2), then bit-identity against the
/// reference. Run by the workflow's forced-parallel step.
#[test]
fn forced_two_worker_parallel_smoke() {
    let schema = build_schema(vec![vec![64], vec![32], vec![33]]);
    let curve = NestedLoops::boustrophedon(schema.grid_shape(), &[2, 0, 1]);

    let before = metrics::snapshot();
    let parallel = aggregate_class_costs_with(
        &schema,
        &curve,
        AggregateOptions::with_parallel(ParallelConfig::with_threads(2)),
    );
    let delta = metrics::snapshot().since(&before);
    assert!(
        delta.agg_walks_parallel >= 1,
        "2-worker walk did not take the parallel path (edges {})",
        delta.agg_edges
    );

    let reference = aggregate_class_costs_reference(&schema, &curve);
    assert_eq!(parallel, reference, "forced 2-worker walk diverged");
}
