//! Theorem 2 end-to-end: for every workload, some snaked lattice path is
//! globally optimal.
//!
//! Two attacks:
//!
//! 1. **Exhaustive over strategies** (2x2 grid, n = 1): every one of the
//!    4! visiting orders of the grid is priced by brute-force fragment
//!    counting; the best snaked lattice path must match the minimum.
//! 2. **Exhaustive over characteristic vectors** (4x4 grid, n = 2): every
//!    consistent CV — a superset of the CVs of real strategies (Lemma 2
//!    gives necessary conditions) — is priced by the extended cost; the
//!    best snaked lattice path must cost no more than any of them, which is
//!    the strengthened claim the paper's sandwich proof establishes.

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::sandwich::Cv2;
use snakes_sandwiches::core::snake::best_snaked_path_exhaustive;
use snakes_sandwiches::prelude::*;

/// All permutations of `0..n` (small n).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    if n == 1 {
        return vec![vec![0]];
    }
    let mut out = Vec::new();
    for p in permutations(n - 1) {
        for i in 0..n {
            let mut q: Vec<usize> = p.iter().map(|&x| if x >= i { x + 1 } else { x }).collect();
            q.insert(0, i);
            // q[0] = i, rest is p remapped: gives all perms with each first
            // element.
            out.push(q);
        }
    }
    out
}

/// Fragment cost of an arbitrary cell visiting order, per class, on a 2x2
/// grid (n = 1).
fn order_class_costs(schema: &StarSchema, order: &[usize]) -> Vec<f64> {
    // order[i] = canonical cell index visited at rank i; canonical index =
    // x + 2*y.
    let cells: Vec<Vec<u64>> = order
        .iter()
        .map(|&c| vec![(c % 2) as u64, (c / 2) as u64])
        .collect();
    snakes_sandwiches::core::cv::Cv::from_cells(schema, &cells).class_costs()
}

fn test_workloads(shape: &LatticeShape) -> Vec<Workload> {
    let mut ws: Vec<Workload> = bias_family(shape).into_iter().map(|(_, w)| w).collect();
    for c in shape.iter() {
        ws.push(Workload::point(shape.clone(), &c).expect("valid"));
    }
    // A few fixed mixtures.
    let n = shape.num_classes();
    for k in 1..4 {
        let weights: Vec<f64> = (0..n).map(|i| ((i * k + 1) % 5 + 1) as f64).collect();
        ws.push(Workload::from_weights(shape.clone(), weights).expect("valid"));
    }
    ws
}

#[test]
fn snaked_lattice_paths_beat_all_strategies_on_2x2() {
    let schema = StarSchema::square(2, 1).expect("valid");
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);
    // All 24 visiting orders of the 4 cells.
    let all_costs: Vec<Vec<f64>> = permutations(4)
        .into_iter()
        .map(|p| order_class_costs(&schema, &p))
        .collect();
    assert_eq!(all_costs.len(), 24);
    for w in test_workloads(&shape) {
        let (_, best_snaked) = best_snaked_path_exhaustive(&model, &w);
        let global_best = all_costs
            .iter()
            .map(|costs| {
                costs
                    .iter()
                    .enumerate()
                    .map(|(r, c)| w.prob_by_rank(r) * c)
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            best_snaked <= global_best + 1e-9,
            "snaked {best_snaked} vs global {global_best}"
        );
        // And the bound is tight: some strategy achieves it (the snaked
        // path itself is one of the 24 orders).
        assert!(
            (best_snaked - global_best).abs() < 1e-9,
            "snaked paths should be among the strategies"
        );
    }
}

/// Every consistent non-negative CV with 15 edges on the 4x4 binary grid.
fn all_consistent_cv2_n2() -> Vec<Cv2> {
    let mut out = Vec::new();
    for a1 in 0..=8u64 {
        for a2 in 0..=(12 - a1.min(12)) {
            if a1 + a2 > 12 {
                continue;
            }
            for b1 in 0..=8u64 {
                for b2 in 0..=(12 - b1.min(12)) {
                    if b1 + b2 > 12 {
                        continue;
                    }
                    let fixed = a1 + a2 + b1 + b2;
                    if fixed > 15 {
                        continue;
                    }
                    let rest = 15 - fixed;
                    // Distribute `rest` over d11, d12, d21, d22.
                    for d11 in 0..=rest {
                        for d12 in 0..=(rest - d11) {
                            for d21 in 0..=(rest - d11 - d12) {
                                let d22 = rest - d11 - d12 - d21;
                                let v = Cv2::new(
                                    2,
                                    vec![a1, a2],
                                    vec![b1, b2],
                                    vec![vec![d11, d12], vec![d21, d22]],
                                )
                                .expect("arity ok");
                                if v.is_consistent() {
                                    out.push(v);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[test]
fn snaked_lattice_paths_beat_all_consistent_vectors_on_4x4() {
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let model = CostModel::of_schema(&schema);
    let consistent = all_consistent_cv2_n2();
    assert!(
        consistent.len() > 1_000,
        "expected a rich consistent set, got {}",
        consistent.len()
    );
    // Real strategies' CVs are present: the snaked lattice paths' own CVs.
    for p in LatticePath::enumerate(&shape) {
        let cv = Cv2::of_snaked_path(2, &p);
        assert!(consistent.contains(&cv), "snaked CV {cv} missing");
    }
    for w in test_workloads(&shape) {
        let (_, best_snaked) = best_snaked_path_exhaustive(&model, &w);
        let mut min_cv = f64::INFINITY;
        for v in &consistent {
            min_cv = min_cv.min(v.cost(&w));
        }
        assert!(
            best_snaked <= min_cv + 1e-9,
            "snaked {best_snaked} vs consistent-CV min {min_cv}"
        );
    }
}

#[test]
fn sandwich_pipeline_handles_sampled_consistent_vectors() {
    // Run the full Lemma 4 → minimalize → Theorem 2 pipeline on a sample of
    // consistent vectors and check the domination chain on every bias
    // workload.
    let shape = LatticeShape::new(vec![2, 2]);
    let consistent = all_consistent_cv2_n2();
    let workloads: Vec<Workload> = bias_family(&shape).into_iter().map(|(_, w)| w).collect();
    let mut checked = 0;
    for v in consistent.iter().step_by(97) {
        let nd = v.eliminate_diagonals().expect("Lemma 4 split exists");
        let min = nd.minimalize();
        let leaves = min.sandwich_closure().expect("closure terminates");
        assert!(!leaves.is_empty());
        for leaf in &leaves {
            assert!(leaf.to_snaked_path().is_some(), "leaf {leaf} not a path CV");
        }
        for w in &workloads {
            let c_v = v.cost(w);
            let c_nd = nd.cost(w);
            let c_min = min.cost(w);
            assert!(c_nd <= c_v + 1e-9, "elimination must not increase cost");
            assert!(
                c_min <= c_nd + 1e-9,
                "minimalization must not increase cost"
            );
            let best_leaf = leaves
                .iter()
                .map(|l| l.cost(w))
                .fold(f64::INFINITY, f64::min);
            assert!(
                best_leaf <= c_min + 1e-9,
                "sandwich leaves must dominate: {best_leaf} vs {c_min} for {v}"
            );
        }
        checked += 1;
    }
    assert!(checked >= 50, "sampled too few vectors: {checked}");
}
