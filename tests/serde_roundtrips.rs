//! Serialization round-trips across every serde-enabled artifact type: the
//! ops pipeline (CLI, config files, saved recommendations) depends on
//! these being stable.

use snakes_sandwiches::core::sandwich::Cv2;
use snakes_sandwiches::prelude::*;

fn roundtrip<T: serde::Serialize + serde::de::DeserializeOwned + PartialEq + std::fmt::Debug>(
    value: &T,
) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(value, &back);
}

#[test]
fn core_types_roundtrip() {
    let schema = StarSchema::new(vec![
        Hierarchy::new("p", vec![4, 5])
            .unwrap()
            .with_level_names(vec!["part".into(), "mfr".into()])
            .unwrap(),
        Hierarchy::new("t", vec![12, 7]).unwrap(),
    ])
    .unwrap();
    roundtrip(&schema);
    let shape = LatticeShape::of_schema(&schema);
    roundtrip(&shape);
    roundtrip(&Class(vec![1, 2]));
    roundtrip(&Workload::uniform(shape.clone()));
    roundtrip(&LatticePath::row_major(shape.clone(), &[1, 0]).unwrap());
    roundtrip(&Cv2::non_diagonal(2, vec![8, 4], vec![2, 1]).unwrap());
    let mut est = WorkloadEstimator::new(shape);
    est.observe(&Class(vec![0, 0])).unwrap();
    roundtrip(&est);
}

#[test]
fn warehouse_roundtrip_keeps_resolving_after_reindex() {
    let wh = Warehouse::paper_toy();
    let json = serde_json::to_string(&wh).unwrap();
    let mut back: Warehouse = serde_json::from_str(&json).unwrap();
    back.reindex();
    let q = back
        .query()
        .select("jeans", "gitano")
        .unwrap()
        .select("location", "toronto")
        .unwrap()
        .build();
    assert_eq!(q.class(), Class(vec![1, 0]));
    roundtrip(&q);
}

#[test]
fn tpcd_config_roundtrips_with_and_without_nations() {
    let base = TpcdConfig::default();
    let json = serde_json::to_string(&base).unwrap();
    let back: TpcdConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(base, back);
    let nations = base.with_supplier_nations(5);
    let json = serde_json::to_string(&nations).unwrap();
    let back: TpcdConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(nations, back);
    // Old documents without the field still parse (serde default).
    let legacy = json.replace("\"supplier_nations\":5,", "");
    let parsed: TpcdConfig = serde_json::from_str(&legacy).unwrap();
    assert_eq!(parsed.supplier_nations, None);
}

#[test]
fn explanation_serializes_for_the_cli() {
    let schema = StarSchema::paper_toy();
    let model = snakes_sandwiches::core::cost::CostModel::of_schema(&schema);
    let shape = model.shape().clone();
    let path = LatticePath::row_major(shape.clone(), &[1, 0]).unwrap();
    let w = Workload::uniform(shape);
    let e = snakes_sandwiches::core::explain::explain(&model, &path, &w);
    let json = serde_json::to_string(&e).unwrap();
    let v: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(v["classes"].as_array().unwrap().len(), 9);
    assert!(v["snaked_total"].as_f64().unwrap() > 0.0);
}
