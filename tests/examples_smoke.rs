//! Smoke tests for every example in `examples/`: run the built binary and
//! require a clean exit with non-empty output. `cargo test` builds the
//! examples alongside the test targets, so example rot (API drift, panics,
//! stale imports) now fails tier-1 instead of lingering until someone
//! happens to run the example by hand.

use std::path::PathBuf;
use std::process::Command;

/// The directory cargo put the example binaries in: the test executable
/// lives in `<target>/<profile>/deps`, examples in
/// `<target>/<profile>/examples` (robust against a custom
/// `CARGO_TARGET_DIR`).
fn examples_dir() -> PathBuf {
    let exe = std::env::current_exe().expect("test binary path");
    exe.parent()
        .and_then(|deps| deps.parent())
        .expect("target profile dir")
        .join("examples")
}

fn run_example(name: &str) {
    let bin = examples_dir().join(name);
    assert!(
        bin.exists(),
        "example binary {} not built (cargo builds examples during `cargo test`)",
        bin.display()
    );
    let output = Command::new(&bin)
        .output()
        .unwrap_or_else(|e| panic!("failed to run {}: {e}", bin.display()));
    assert!(
        output.status.success(),
        "example {name} exited with {}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(!output.stdout.is_empty(), "example {name} printed nothing");
}

macro_rules! example_smoke {
    ($($name:ident),* $(,)?) => {$(
        #[test]
        fn $name() {
            run_example(stringify!($name));
        }
    )*};
}

example_smoke!(
    curve_gallery,
    olap_session,
    quickstart,
    robust_clustering,
    toy_paper_example,
    tpcd_clustering,
    warehouse_queries,
    workload_advisor,
);
