//! End-to-end loopback tests of the advisor daemon: a real TCP server,
//! real concurrent clients, and three production-hardening guarantees —
//!
//! 1. **Fidelity**: 64+ concurrent mixed `recommend`/`price`/`drift`
//!    requests return answers bit-identical to direct library calls;
//! 2. **Load shedding**: with a tiny admission queue, a thundering herd is
//!    rejected with `overloaded` + `retry_after_ms` instead of stalling;
//! 3. **Graceful drain**: `shutdown` stops admission but every already
//!    admitted request still gets its response.

use snakes_sandwiches::core::cost::CostModel;
use snakes_sandwiches::core::dp::IncrementalDp;
use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::{VersionedWorkload, WeightUpdate, Workload, WorkloadDelta};
use snakes_sandwiches::curves::{aggregate_class_costs, snaked_path_curve};
use snakes_sandwiches::prelude::{recommend, LatticePath};
use snakes_sandwiches::service::protocol::{
    DeltaSpec, MeasureSpec, SchemaSpec, StrategySpec, WorkloadSpec,
};
use snakes_sandwiches::service::{Client, Request, Server, ServerConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;

/// A deterministic per-thread workload: irregular weights keyed by `salt`
/// so every thread prices a different distribution.
fn salted_workload(shape: &LatticeShape, salt: usize) -> Workload {
    let n = shape.num_classes();
    Workload::from_weights(
        shape.clone(),
        (0..n)
            .map(|r| 1.0 + ((r * (salt + 2) + salt) % 11) as f64 * 0.17)
            .collect(),
    )
    .expect("positive weights")
}

#[test]
fn sixty_four_concurrent_mixed_requests_are_bit_identical_to_direct_calls() {
    const CLIENTS: usize = 64;
    let server = Server::spawn(ServerConfig::default()).expect("spawn");
    let addr = server.local_addr();
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let checked = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..CLIENTS {
            let schema = &schema;
            let shape = &shape;
            let checked = &checked;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let w = salted_workload(shape, i);
                let spec = |w: &Workload| (SchemaSpec::of(schema), WorkloadSpec::of(w));
                match i % 3 {
                    0 => {
                        // recommend ≡ core::advisor::recommend
                        let (s, ws) = spec(&w);
                        let resp = client.call(Request::recommend(s, ws)).expect("call");
                        assert!(resp.ok, "{:?}", resp.error);
                        let body = resp.recommendation.unwrap();
                        let direct = recommend(schema, &w);
                        assert_eq!(body.path_dims, direct.optimal_path.dims().to_vec());
                        assert_eq!(
                            body.expected_cost_plain.to_bits(),
                            direct.plain_cost.to_bits()
                        );
                        assert_eq!(
                            body.expected_cost_snaked.to_bits(),
                            direct.snaked_cost.to_bits()
                        );
                        for (got, want) in body.row_majors.iter().zip(&direct.row_majors) {
                            assert_eq!(got.order_innermost_first, want.0);
                            assert_eq!(got.cost_plain.to_bits(), want.1.to_bits());
                            assert_eq!(got.cost_snaked.to_bits(), want.2.to_bits());
                        }
                    }
                    1 => {
                        // price ≡ curves::aggregate_class_costs + expected_cost
                        let dims = vec![i % 2, 1 - i % 2, i % 2, 1 - i % 2];
                        let (s, ws) = spec(&w);
                        let resp = client
                            .call(Request::price(
                                s,
                                ws,
                                StrategySpec::snaked_path(dims.clone()),
                            ))
                            .expect("call");
                        assert!(resp.ok, "{:?}", resp.error);
                        let body = resp.price.unwrap();
                        let path = LatticePath::from_dims(shape.clone(), dims).unwrap();
                        let curve = snaked_path_curve(schema, &path);
                        let direct = aggregate_class_costs(schema, &curve).expected_cost(&w);
                        assert_eq!(body.expected_cost.to_bits(), direct.to_bits());
                    }
                    _ => {
                        // drift ≡ VersionedWorkload + IncrementalDp, coalesced
                        let session = format!("session-{i}");
                        let mut init = Request::drift(&session, vec![]);
                        let (s, ws) = spec(&w);
                        init.schema = Some(s);
                        init.workload = Some(ws);
                        let r0 = client.call(init).expect("call");
                        assert!(r0.ok, "{:?}", r0.error);
                        let update = WeightUpdate {
                            rank: i % shape.num_classes(),
                            weight: 0.9,
                        };
                        let r1 = client
                            .call(Request::drift(
                                &session,
                                vec![DeltaSpec {
                                    updates: vec![update],
                                }],
                            ))
                            .expect("call");
                        assert!(r1.ok, "{:?}", r1.error);
                        let body = r1.drift.unwrap();
                        // Replay the session directly.
                        let mut versioned = VersionedWorkload::new(w.clone());
                        let mut dp = IncrementalDp::new(CostModel::of_schema(schema));
                        let first = dp.reoptimize(versioned.workload());
                        let d0 = r0.drift.unwrap();
                        assert_eq!(d0.cost.to_bits(), first.cost.to_bits());
                        let tv = versioned
                            .apply(&WorkloadDelta::new(vec![update]).unwrap())
                            .unwrap();
                        let second = dp.reoptimize(versioned.workload());
                        assert_eq!(body.version, 1);
                        assert_eq!(body.coalesced, 1);
                        assert_eq!(body.drift_tv.to_bits(), tv.to_bits());
                        assert_eq!(body.path_dims, second.path.dims().to_vec());
                        assert_eq!(body.cost.to_bits(), second.cost.to_bits());
                        assert_eq!(body.reused, second.reused);
                    }
                }
                checked.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(checked.load(Ordering::Relaxed), CLIENTS as u64);
    // The shared caches saw real cross-connection traffic.
    let stats = server.engine().stats_body();
    let price_stats = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "price")
        .unwrap();
    assert!(price_stats.requests > 0);
    assert_eq!(stats.sessions, (CLIENTS / 3) as u64);
    server.join();
}

/// A schema whose uniform measurement grid is large enough that a `price`
/// + `measure` request holds a worker for a while.
fn big_schema() -> StarSchema {
    StarSchema::new(vec![
        Hierarchy::new("a", vec![32, 16]).unwrap(),
        Hierarchy::new("b", vec![32, 16]).unwrap(),
    ])
    .unwrap()
}

fn slow_price_request(salt: usize) -> Request {
    let schema = big_schema();
    let shape = LatticeShape::of_schema(&schema);
    let w = salted_workload(&shape, salt);
    let mut req = Request::price(
        SchemaSpec::of(&schema),
        WorkloadSpec::of(&w),
        StrategySpec::snaked_path(vec![0, 1, 0, 1]),
    );
    // Distinct records_per_cell per caller defeats the cost memo, so every
    // request does real packing + measurement work.
    req.measure = Some(MeasureSpec {
        records_per_cell: 1 + (salt as u64 % 7),
        page_size: 4_096,
        record_size: 125,
        physical: false,
    });
    req
}

#[test]
fn thundering_herd_is_shed_not_stalled() {
    const HERD: usize = 16;
    let server = Server::spawn(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        retry_after_ms: 42,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();
    let barrier = Barrier::new(HERD);
    let ok = AtomicU64::new(0);
    let shed = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..HERD {
            let barrier = &barrier;
            let (ok, shed) = (&ok, &shed);
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let req = slow_price_request(i);
                barrier.wait();
                let resp = client.call(req).expect("shed replies arrive immediately");
                if resp.ok {
                    ok.fetch_add(1, Ordering::Relaxed);
                } else {
                    let err = resp.error.unwrap();
                    assert_eq!(err.code, "overloaded", "{err:?}");
                    assert_eq!(err.retry_after_ms, Some(42));
                    shed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    assert_eq!(ok + shed, HERD as u64);
    assert!(ok >= 1, "at least the admitted requests complete");
    assert!(
        shed >= 1,
        "a {HERD}-client herd against workers=1/queue=1 must shed"
    );
    // The metrics registry agrees with the clients' view.
    let stats = server.engine().stats_body();
    let price_stats = stats
        .endpoints
        .iter()
        .find(|e| e.endpoint == "price")
        .unwrap();
    assert_eq!(price_stats.shed, shed);
    assert_eq!(price_stats.requests, ok);
    server.join();
}

#[test]
fn deadlines_cancel_queued_and_running_work() {
    let server = Server::spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();
    // Occupy the single worker, then submit with an already-expired
    // deadline: the request must fail fast without being executed.
    std::thread::scope(|scope| {
        scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            let _ = client.call(slow_price_request(0));
        });
        scope.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(30));
            let mut client = Client::connect(addr).expect("connect");
            let mut req = slow_price_request(1);
            req.deadline_ms = Some(0);
            let resp = client.call(req).expect("deadline reply arrives");
            assert!(!resp.ok);
            assert_eq!(resp.error.unwrap().code, "deadline_exceeded");
        });
    });
    server.join();
}

#[test]
fn shutdown_while_the_admission_queue_is_saturated() {
    // workers=1, queue=1: one request runs, one fills the queue. The
    // `shutdown` endpoint is handled at dispatch, before admission, so it
    // must ack even though the queue has no free slot — and both admitted
    // requests must still complete through the drain.
    let server = Server::spawn(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();
    let delivered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for i in 0..2 {
            let delivered = &delivered;
            scope.spawn(move || {
                // Stagger: the first request must reach the worker before
                // the second arrives to occupy the queue's single slot.
                std::thread::sleep(std::time::Duration::from_millis(i as u64 * 100));
                let mut client = Client::connect(addr).expect("connect");
                let resp = client.call(slow_price_request(i)).expect("drained reply");
                assert!(resp.ok, "{:?}", resp.error);
                delivered.fetch_add(1, Ordering::Relaxed);
            });
        }
        scope.spawn(move || {
            // Wait until the worker is busy and the queue is saturated.
            std::thread::sleep(std::time::Duration::from_millis(300));
            let mut client = Client::connect(addr).expect("connect");
            let bye = client.shutdown().expect("shutdown acks on a full queue");
            assert!(bye.ok, "{:?}", bye.error);
            // New work is refused in-band while the backlog drains.
            let refused = client.call(Request::new("ping")).expect("refusal arrives");
            assert!(!refused.ok);
            assert_eq!(refused.error.unwrap().code, "shutting_down");
        });
    });
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        2,
        "the saturated backlog must drain, not drop"
    );
    // join() completes: no worker is stuck waiting on a closed queue.
    server.join();
}

#[test]
fn shutdown_drains_without_losing_admitted_responses() {
    let server = Server::spawn(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("spawn");
    let addr = server.local_addr();
    let delivered = AtomicU64::new(0);
    std::thread::scope(|scope| {
        // Two slow requests: one runs, one queues.
        for i in 0..2 {
            let delivered = &delivered;
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let resp = client.call(slow_price_request(i)).expect("drained reply");
                assert!(resp.ok, "{:?}", resp.error);
                delivered.fetch_add(1, Ordering::Relaxed);
            });
        }
        scope.spawn(move || {
            // Let both requests get admitted, then pull the plug.
            std::thread::sleep(std::time::Duration::from_millis(200));
            let mut client = Client::connect(addr).expect("connect");
            let bye = client.shutdown().expect("shutdown acks");
            assert!(bye.ok);
            // Post-drain, new work is refused in-band.
            let refused = client.call(Request::new("ping")).expect("refusal arrives");
            assert!(!refused.ok);
            assert_eq!(refused.error.unwrap().code, "shutting_down");
        });
    });
    assert_eq!(
        delivered.load(Ordering::Relaxed),
        2,
        "every admitted request keeps its response across the drain"
    );
    server.join();
}
