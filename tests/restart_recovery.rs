//! Two-generation restart test of the durable daemon: a real TCP server
//! started with a data directory (`snakes serve --data-dir`) accepts
//! keyed drifts, is shut down, and a **second process generation** over
//! the same directory must recover every session and every idempotent
//! response from the write-ahead log — versions continue where they
//! stopped, retried keys replay byte-identical answers, and the
//! recovery counters show up in `stats`.

use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::schema::StarSchema;
use snakes_sandwiches::core::workload::{WeightUpdate, Workload};
use snakes_sandwiches::service::protocol::{DeltaSpec, SchemaSpec, WorkloadSpec};
use snakes_sandwiches::service::{Client, Request, Server, ServerConfig};
use std::path::{Path, PathBuf};

const SESSION: &str = "etl-nightly";

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "snakes-restart-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        data_dir: Some(dir.to_path_buf()),
        ..ServerConfig::default()
    }
}

fn init_request(key: &str) -> Request {
    let schema = StarSchema::paper_toy();
    let shape = LatticeShape::of_schema(&schema);
    let n = shape.num_classes();
    let w = Workload::from_weights(shape, (0..n).map(|r| 1.0 + r as f64 * 0.23).collect())
        .expect("positive weights");
    let mut req = Request::drift(SESSION, vec![]);
    req.schema = Some(SchemaSpec::of(&schema));
    req.workload = Some(WorkloadSpec::of(&w));
    req.with_idempotency_key(key)
}

fn drift_request(i: usize, key: &str) -> Request {
    Request::drift(
        SESSION,
        vec![DeltaSpec {
            updates: vec![WeightUpdate {
                rank: i * 2 + 1,
                weight: 0.2 + i as f64 * 0.13,
            }],
        }],
    )
    .with_idempotency_key(key)
}

#[test]
fn sessions_and_idempotency_survive_a_daemon_restart() {
    let dir = scratch_dir("survive");

    // Generation 1: create a session and advance it twice.
    let server = Server::spawn(durable_config(&dir)).expect("spawn gen 1");
    let addr = server.local_addr();
    let mut client = Client::connect(addr).expect("connect gen 1");
    for (i, req) in [
        init_request("g1-0"),
        drift_request(1, "g1-1"),
        drift_request(2, "g1-2"),
    ]
    .into_iter()
    .enumerate()
    {
        let resp = client.call(req).expect("gen 1 call");
        assert!(resp.ok, "gen 1 request {i}: {:?}", resp.error);
        assert_eq!(resp.drift.as_ref().expect("drift body").version, i as u64);
    }
    // In-process dedup baseline: what a retry of "g1-2" answers while
    // the original generation is still alive.
    let gen1_replay = client.call(drift_request(2, "g1-2")).expect("gen 1 retry");
    assert!(gen1_replay.deduplicated, "same-generation retry must dedup");
    let stats = client.call(Request::new("stats")).expect("gen 1 stats");
    let storage = stats.stats.expect("stats body").storage;
    assert!(storage.enabled, "durability must be on");
    assert_eq!(storage.recoveries, 0, "fresh directory: nothing to recover");
    assert!(storage.wal_entries >= 3, "every drift must be logged");
    server.shutdown();
    server.join();

    // Generation 2: same directory, fresh process state.
    let server = Server::spawn(durable_config(&dir)).expect("spawn gen 2");
    let mut client = Client::connect(server.local_addr()).expect("connect gen 2");

    let stats = client.call(Request::new("stats")).expect("gen 2 stats");
    let storage = stats.stats.expect("stats body").storage;
    assert_eq!(storage.recoveries, 1, "gen 2 must have replayed the log");
    assert_eq!(storage.recovered_sessions, 1, "the session must be back");

    // A retried key replays the exact acknowledged bytes, marked as a
    // duplicate, across the restart.
    let replay = client.call(drift_request(2, "g1-2")).expect("gen 2 replay");
    assert!(replay.deduplicated, "retry across restart must deduplicate");
    // Identical to the same-generation replay, modulo the echoed id.
    let mut want = gen1_replay.clone();
    want.id = replay.id;
    assert_eq!(
        replay.to_line(),
        want.to_line(),
        "replay must be byte-identical"
    );

    // The session continues from the recovered version, not from zero.
    let resp = client.call(drift_request(3, "g2-3")).expect("gen 2 drift");
    assert!(resp.ok, "{:?}", resp.error);
    assert_eq!(
        resp.drift.expect("drift body").version,
        3,
        "version must continue across the restart"
    );

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restart_without_data_dir_is_ephemeral() {
    // Control: without --data-dir nothing persists and stats says so.
    let server = Server::spawn(ServerConfig::default()).expect("spawn");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let resp = client.call(init_request("eph-0")).expect("call");
    assert!(resp.ok, "{:?}", resp.error);
    let stats = client.call(Request::new("stats")).expect("stats");
    let storage = stats.stats.expect("stats body").storage;
    assert!(!storage.enabled);
    assert_eq!(storage.wal_entries, 0);
    server.shutdown();
    server.join();
}
