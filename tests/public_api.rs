//! Public-API snapshot: the declared `pub` surface of the redesigned
//! layers (the facade, the service crate, and the unified evaluation
//! options) against a checked-in listing.
//!
//! The point is to make API changes *deliberate*: adding, removing, or
//! re-signaturing a public item fails this test until the snapshot is
//! regenerated and the diff reviewed. Regenerate with
//!
//! ```text
//! UPDATE_API_SNAPSHOT=1 cargo test --test public_api
//! ```
//!
//! The extractor is a line scanner, not a parser: it records the first
//! line of every `pub` declaration outside `#[cfg(test)]` modules, with
//! whitespace normalized. `cargo fmt --check` in CI keeps the layout
//! canonical, so the listing is stable across machines.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// The files whose `pub` surface this snapshot pins — the layers this
/// redesign owns. Paths are workspace-relative.
const SURFACE: &[&str] = &[
    "src/lib.rs",
    "src/error.rs",
    "crates/core/src/eval.rs",
    "crates/service/src/lib.rs",
    "crates/service/src/client.rs",
    "crates/service/src/durability.rs",
    "crates/service/src/engine.rs",
    "crates/service/src/error.rs",
    "crates/service/src/fault.rs",
    "crates/service/src/metrics.rs",
    "crates/service/src/protocol.rs",
    "crates/service/src/server.rs",
    "crates/service/src/sim.rs",
    "crates/storage/src/crash.rs",
    "crates/storage/src/file.rs",
    "crates/storage/src/page.rs",
    "crates/storage/src/pool.rs",
    "crates/storage/src/wal.rs",
];

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// True when the trimmed line begins a public declaration worth pinning.
fn is_public_decl(line: &str) -> bool {
    const KINDS: &[&str] = &[
        "pub fn ",
        "pub const fn ",
        "pub unsafe fn ",
        "pub struct ",
        "pub enum ",
        "pub trait ",
        "pub type ",
        "pub const ",
        "pub static ",
        "pub mod ",
        "pub use ",
    ];
    KINDS.iter().any(|k| line.starts_with(k))
}

/// Extracts the normalized `pub` declarations of one source file,
/// skipping `#[cfg(test)] mod … { … }` blocks by brace counting.
fn extract(path: &Path) -> Vec<String> {
    let src = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()));
    let mut decls = Vec::new();
    let mut lines = src.lines().peekable();
    let mut pending: Option<String> = None;
    while let Some(raw) = lines.next() {
        let line = raw.trim();
        if line == "#[cfg(test)]" {
            // Skip the attached item (almost always `mod tests { … }`)
            // by consuming until its braces balance.
            let mut depth = 0i64;
            let mut opened = false;
            for skipped in lines.by_ref() {
                depth += skipped.matches('{').count() as i64;
                depth -= skipped.matches('}').count() as i64;
                opened |= skipped.contains('{');
                if opened && depth <= 0 {
                    break;
                }
            }
            continue;
        }
        // Multi-line signatures: accumulate until the opening brace or a
        // terminating semicolon so rustfmt re-wraps don't split entries.
        if let Some(acc) = pending.as_mut() {
            write!(acc, " {line}").unwrap();
        } else if is_public_decl(line) {
            pending = Some(line.to_string());
        }
        if let Some(acc) = &pending {
            // `pub use` braces enclose the re-export list itself — keep
            // it whole; everywhere else `{` opens a body we drop.
            let is_use = acc.starts_with("pub use ");
            let done = if is_use {
                acc.trim_end().ends_with(';')
            } else {
                acc.contains('{') || acc.trim_end().ends_with(';')
            };
            if done {
                let sig = if is_use {
                    acc.clone()
                } else {
                    acc.split('{').next().unwrap().to_string()
                };
                let sig = sig.trim().trim_end_matches(';').trim().to_string();
                let sig = sig.split_whitespace().collect::<Vec<_>>().join(" ");
                decls.push(sig);
                pending = None;
            }
        }
    }
    decls
}

fn render_surface() -> String {
    let root = workspace_root();
    let mut out = String::from(
        "# Public-API snapshot. Regenerate with:\n\
         #   UPDATE_API_SNAPSHOT=1 cargo test --test public_api\n",
    );
    for file in SURFACE {
        let decls = extract(&root.join(file));
        writeln!(out, "\n== {file}").unwrap();
        for d in decls {
            writeln!(out, "{d}").unwrap();
        }
    }
    out
}

#[test]
fn public_api_matches_snapshot() {
    let root = workspace_root();
    let snapshot_path = root.join("tests/snapshots/public_api.txt");
    let actual = render_surface();
    if std::env::var("UPDATE_API_SNAPSHOT").as_deref() == Ok("1") {
        std::fs::create_dir_all(snapshot_path.parent().unwrap()).unwrap();
        std::fs::write(&snapshot_path, &actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&snapshot_path).unwrap_or_else(|e| {
        panic!(
            "missing snapshot {} ({e}); run UPDATE_API_SNAPSHOT=1 cargo test --test public_api",
            snapshot_path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "public API surface changed; review the diff, then regenerate \
         with UPDATE_API_SNAPSHOT=1 cargo test --test public_api"
    );
}

#[test]
fn snapshot_covers_the_redesigned_entry_points() {
    // Guard the extractor itself: if the scanner ever regresses to
    // extracting nothing, the snapshot comparison would vacuously pass
    // on an empty listing.
    let surface = render_surface();
    for needle in [
        "pub struct EvalOptions",
        "pub fn threads(mut self, threads: usize) -> Self",
        "pub enum Error",
        "pub struct Request",
        "pub struct Response",
        "pub fn spawn(config: ServerConfig) -> std::io::Result<Server>",
        "pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client>",
        "pub const PROTOCOL_VERSION: u32 = 2",
        "pub const MIN_PROTOCOL_VERSION: u32 = 1",
        "pub struct EvalEnvelope",
        "pub struct ReclusterSpec",
        "pub fn tick_reclusters(&self, stripe: usize, stripes: usize) -> usize",
        "pub struct RetryingClient",
        "pub struct FaultConfig",
        "pub fn run_schedule(config: &SimConfig) -> SimReport",
    ] {
        assert!(surface.contains(needle), "missing from surface: {needle}");
    }
}
