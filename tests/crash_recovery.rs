//! The crash-recovery torture suite: a scripted advisor engine runs over
//! a [`CrashStore`] that kills the "machine" at a chosen write-operation
//! boundary (tearing the in-flight write to a strict prefix, then
//! failing every subsequent I/O), the surviving bytes are "rebooted"
//! fault-free, and a fresh engine must recover
//!
//! * every acknowledged drift — the recovered session's version and
//!   probability vector are **bit-identical** to a fault-free shadow run
//!   at that version;
//! * every acknowledged idempotent response — replayed byte-for-byte;
//! * possibly a synced-but-unacknowledged suffix (the crash landed
//!   between the WAL sync and the reply), which must still match the
//!   shadow at its version — recovery may run ahead of acknowledgement,
//!   never behind it and never off the scripted trajectory.
//!
//! Two sweeps: an exhaustive one killing at *every* write boundary the
//! script performs, and a seeded randomized one. Reproduce a failing
//! seed with:
//!
//! ```text
//! SNAKES_CRASH_SEED=<seed> cargo test --release --test crash_recovery -- --nocapture
//! ```
//!
//! Scale the random sweep with `SNAKES_CRASH_SCHEDULES=<n>` (CI runs
//! 1000 in release mode).

use snakes_core::lattice::LatticeShape;
use snakes_core::schema::StarSchema;
use snakes_core::workload::{WeightUpdate, Workload};
use snakes_service::protocol::{DeltaSpec, SchemaSpec, WorkloadSpec};
use snakes_service::{Deadline, Engine, Media, Request, Response};
use snakes_storage::{CrashConfig, CrashStore};
use std::sync::Arc;

const SESSION: &str = "torture";
/// Keyed drift requests after the initialization request.
const DRIFTS: usize = 6;

fn schedule_count() -> u64 {
    if let Ok(n) = std::env::var("SNAKES_CRASH_SCHEDULES") {
        return n.parse().expect("SNAKES_CRASH_SCHEDULES must be a number");
    }
    if cfg!(debug_assertions) {
        40
    } else {
        1000
    }
}

fn schema_spec() -> SchemaSpec {
    SchemaSpec::of(&StarSchema::paper_toy())
}

/// Irregular initial workload so no two costs tie and every delta moves
/// real probability mass.
fn workload_spec() -> WorkloadSpec {
    let shape = LatticeShape::of_schema(&StarSchema::paper_toy());
    let n = shape.num_classes();
    let w = Workload::from_weights(shape, (0..n).map(|r| 1.0 + r as f64 * 0.17).collect()).unwrap();
    WorkloadSpec::of(&w)
}

/// The scripted request sequence: one session-creating drift, then
/// `DRIFTS` single-delta drifts, all idempotency-keyed, with a forced
/// checkpoint in the middle (so checkpoint writes are kill points too).
fn script() -> Vec<Request> {
    let n = LatticeShape::of_schema(&StarSchema::paper_toy()).num_classes();
    let mut out = Vec::new();
    let mut init = Request::drift(SESSION, vec![]);
    init.schema = Some(schema_spec());
    init.workload = Some(workload_spec());
    init.id = 1;
    out.push(init.with_idempotency_key("crash-k-0"));
    for i in 1..=DRIFTS {
        let mut req = Request::drift(
            SESSION,
            vec![DeltaSpec {
                updates: vec![WeightUpdate {
                    rank: (i * 3) % n,
                    weight: 0.05 + i as f64 * 0.11,
                }],
            }],
        )
        .with_idempotency_key(format!("crash-k-{i}"));
        req.id = 1 + i as u64;
        out.push(req);
    }
    out
}

/// Runs the script against `engine`, forcing a checkpoint halfway.
/// Returns the response per request (acknowledged or not).
fn run_script(engine: &Engine) -> Vec<Response> {
    let mut out = Vec::new();
    for (i, req) in script().iter().enumerate() {
        out.push(engine.handle(req, &Deadline::none()));
        if i == DRIFTS / 2 {
            // May fail on a crashed store; the old checkpoint + full log
            // must then remain authoritative.
            let _ = engine.checkpoint();
        }
    }
    out
}

/// The fault-free oracle: the same script on an in-memory engine.
/// `responses[i]` is what request `i` must answer whenever it is
/// acknowledged at all, and `probs_at[v]` the exact distribution after
/// version `v` (request `i` commits version `i`, the init committing 0).
struct Shadow {
    responses: Vec<Response>,
    probs_at: Vec<Vec<f64>>,
}

fn shadow() -> Shadow {
    let engine = Engine::new();
    let mut responses = Vec::new();
    let mut probs_at = Vec::new();
    for req in &script() {
        let resp = engine.handle(req, &Deadline::none());
        assert!(resp.ok, "shadow run must be clean: {:?}", resp.error);
        let (version, probs) = engine.session_state(SESSION).unwrap();
        assert_eq!(version as usize, probs_at.len(), "one version per request");
        probs_at.push(probs);
        responses.push(resp);
    }
    Shadow {
        responses,
        probs_at,
    }
}

/// One torture round: run the script over a crash-armed store, reboot
/// the surviving bytes, recover, and hold every invariant. Returns
/// whether the store actually crashed during the scripted run.
fn check_crash_point(config: CrashConfig, oracle: &Shadow) -> bool {
    let seed = config.seed;
    let diag = format!(
        "reproduce with:\n  SNAKES_CRASH_SEED={seed} cargo test --release \
         --test crash_recovery -- --nocapture"
    );
    let store = Arc::new(CrashStore::with_crash(config));
    // The WAL header itself is written under crash injection: a crash
    // during engine construction acknowledges nothing.
    let responses = match Engine::new().with_durability(Media::Store(Arc::clone(&store))) {
        Ok(engine) => run_script(&engine),
        Err(_) => Vec::new(),
    };
    let acked: Vec<(usize, &Response)> =
        responses.iter().enumerate().filter(|(_, r)| r.ok).collect();
    // Acknowledged responses must match the oracle bit-for-bit even
    // before any crash talk: durability must not perturb the numbers.
    for (i, resp) in &acked {
        assert_eq!(
            resp.to_line(),
            oracle.responses[*i].to_line(),
            "acked response {i} diverged from the fault-free oracle\n{diag}"
        );
    }
    let crashed = store.crashed();
    // Reboot: only bytes that reached the store before the kill survive.
    let rebooted = Arc::new(CrashStore::reopen(&store));
    let engine = Engine::new()
        .with_durability(Media::Store(rebooted))
        .unwrap_or_else(|e| panic!("recovery must never fail, got {e}\n{diag}"));
    let acked_max = acked
        .iter()
        .filter_map(|(_, r)| r.drift.as_ref())
        .map(|d| d.version)
        .max();
    match engine.session_state(SESSION) {
        Some((version, probs)) => {
            if let Some(acked_max) = acked_max {
                assert!(
                    version >= acked_max,
                    "recovered version {version} lost acked version {acked_max}\n{diag}"
                );
            }
            let want = oracle
                .probs_at
                .get(version as usize)
                .unwrap_or_else(|| panic!("recovered off-script version {version}\n{diag}"));
            assert_eq!(probs.len(), want.len(), "{diag}");
            for (at, (a, b)) in probs.iter().zip(want).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "prob {at} at version {version} not bit-identical\n{diag}"
                );
            }
        }
        None => assert!(
            acked_max.is_none(),
            "acked session vanished across the crash\n{diag}"
        ),
    }
    // Every acknowledged response replays byte-for-byte from the
    // recovered idempotency log.
    for (i, resp) in &acked {
        let key = format!("crash-k-{i}");
        let replay = engine
            .idempotent_replay(&key)
            .unwrap_or_else(|| panic!("acked key {key} lost across the crash\n{diag}"));
        assert_eq!(
            replay.to_line(),
            resp.to_line(),
            "replayed response for {key} not byte-identical\n{diag}"
        );
    }
    crashed
}

/// Exhaustive sweep: learn the script's write-op budget on a fault-free
/// store, then kill at every single boundary from "before the first
/// write" to "after the last".
#[test]
fn every_write_boundary_recovers() {
    let oracle = shadow();
    let probe = Arc::new(CrashStore::new());
    let engine = Engine::new()
        .with_durability(Media::Store(Arc::clone(&probe)))
        .unwrap();
    run_script(&engine);
    let budget = probe.write_ops();
    assert!(budget > 20, "script too small to be interesting: {budget}");
    let mut crashes = 0u64;
    for at in 0..=budget {
        if check_crash_point(
            CrashConfig {
                seed: at,
                ops_before_crash: at,
            },
            &oracle,
        ) {
            crashes += 1;
        }
    }
    println!("exhaustive sweep: {budget} write boundaries, {crashes} mid-script crashes");
    assert!(crashes > 0, "the sweep must actually kill mid-script");
}

/// Seeded random sweep (CI scale), mirroring the fault suite's env
/// contract: `SNAKES_CRASH_SEED` pins one schedule,
/// `SNAKES_CRASH_SCHEDULES` sets the sweep width.
#[test]
fn seeded_crash_schedules_recover() {
    let oracle = shadow();
    if let Ok(seed) = std::env::var("SNAKES_CRASH_SEED") {
        let seed = seed.parse().expect("SNAKES_CRASH_SEED must be a number");
        let crashed = check_crash_point(CrashConfig::for_seed(seed), &oracle);
        println!("seed {seed}: crashed={crashed}");
        return;
    }
    let mut crashes = 0u64;
    let n = schedule_count();
    for seed in 0..n {
        if check_crash_point(CrashConfig::for_seed(seed), &oracle) {
            crashes += 1;
        }
    }
    println!("{n} seeded schedules, {crashes} mid-script crashes");
    assert!(crashes > 0, "the sweep must actually kill mid-script");
    assert!(crashes < n, "some schedules must survive to the end");
}
