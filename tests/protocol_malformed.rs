//! Malformed-frame corpus against a live server: every hostile frame must
//! be answered with an in-band protocol error — never a panic, never a
//! hang, never a dropped connection — and the same connection must stay
//! usable for well-formed requests afterwards.

use snakes_sandwiches::service::{Server, ServerConfig, MAX_LINE_BYTES, PROTOCOL_VERSION};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A raw JSON-lines connection with no client-side protocol smarts.
struct RawConn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl RawConn {
    fn open(addr: std::net::SocketAddr) -> RawConn {
        let writer = TcpStream::connect(addr).expect("connect");
        // A stuck server must fail the test, not wedge it.
        writer
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        RawConn { writer, reader }
    }

    fn send_raw(&mut self, frame: &[u8]) {
        self.writer.write_all(frame).expect("write frame");
        self.writer.flush().expect("flush");
    }

    fn recv(&mut self) -> serde_json::Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection instead of answering");
        serde_json::from_str(line.trim_end()).expect("response is valid JSON")
    }

    /// Sends one frame and asserts the in-band error reply carries `code`.
    fn expect_error(&mut self, frame: &[u8], code: &str) -> serde_json::Value {
        self.send_raw(frame);
        let resp = self.recv();
        assert_eq!(
            resp["ok"].as_bool(),
            Some(false),
            "expected an error reply, got {resp:?}"
        );
        assert_eq!(
            resp["error"]["code"].as_str(),
            Some(code),
            "wrong error code; full reply: {resp:?}"
        );
        resp
    }

    /// The connection must still serve well-formed traffic.
    fn assert_usable(&mut self) {
        self.send_raw(
            format!("{{\"v\":{PROTOCOL_VERSION},\"endpoint\":\"ping\",\"id\":7}}\n").as_bytes(),
        );
        let resp = self.recv();
        assert_eq!(
            resp["ok"].as_bool(),
            Some(true),
            "connection unusable after bad frame: {resp:?}"
        );
        assert_eq!(resp["id"], 7);
    }
}

#[test]
fn malformed_frames_get_in_band_errors_and_the_connection_survives() {
    let server = Server::spawn(ServerConfig::default()).expect("spawn");
    let addr = server.local_addr();
    let mut conn = RawConn::open(addr);

    // Truncated JSON — the line ends mid-object.
    conn.expect_error(b"{\"v\":1,\"endpoint\":\"pi\n", "bad_request");
    conn.assert_usable();

    // Not JSON at all.
    conn.expect_error(b"GET / HTTP/1.1\n", "bad_request");
    conn.assert_usable();

    // Interior NUL bytes. The lenient JSON parser may accept or reject
    // the frame; either way the server must answer in-band and keep the
    // connection alive — never crash on a control character.
    conn.send_raw(b"{\"v\":1,\"endpoint\":\"pi\x00ng\",\"id\":1}\n");
    let resp = conn.recv();
    assert!(resp["ok"].as_bool().is_some(), "{resp:?}");
    conn.assert_usable();

    // A NUL where JSON structure is expected is always malformed.
    conn.expect_error(b"\x00{\"v\":1,\"endpoint\":\"ping\"}\n", "bad_request");
    conn.assert_usable();

    // Invalid UTF-8 in the frame.
    conn.expect_error(
        b"{\"v\":1,\"endpoint\":\"\xff\xfe\",\"id\":1}\n",
        "bad_request",
    );
    conn.assert_usable();

    // Duplicate keys. The lenient parser resolves them (first wins)
    // rather than rejecting; the hard requirement is an in-band answer
    // on a connection that stays alive.
    conn.send_raw(b"{\"v\":1,\"endpoint\":\"ping\",\"endpoint\":\"stats\",\"id\":1}\n");
    let resp = conn.recv();
    assert!(resp["ok"].as_bool().is_some(), "{resp:?}");
    conn.assert_usable();

    // Wrong protocol version.
    let resp = conn.expect_error(
        b"{\"v\":99,\"endpoint\":\"ping\",\"id\":5}\n",
        "bad_request",
    );
    assert!(
        resp["error"]["message"]
            .as_str()
            .unwrap()
            .contains("unsupported protocol version"),
        "{resp:?}"
    );
    // Version errors echo the request id so clients can correlate.
    assert_eq!(resp["id"], 5);
    conn.assert_usable();

    // Unknown top-level fields are tolerated (forward compatibility):
    // the request still executes.
    conn.send_raw(b"{\"v\":1,\"endpoint\":\"ping\",\"id\":3,\"surprise\":true}\n");
    let resp = conn.recv();
    assert_eq!(resp["ok"].as_bool(), Some(true), "{resp:?}");
    assert_eq!(resp["id"], 3);

    // Blank lines are ignored, not answered.
    conn.send_raw(b"\n");
    conn.assert_usable();

    server.join();
}

#[test]
fn oversized_lines_are_rejected_without_buffering_them() {
    let server = Server::spawn(ServerConfig::default()).expect("spawn");
    let addr = server.local_addr();
    let mut conn = RawConn::open(addr);

    // A line just over the cap: rejected in-band, discarded, connection
    // stays usable.
    let mut giant = vec![b'a'; MAX_LINE_BYTES + 1];
    giant.push(b'\n');
    conn.send_raw(&giant);
    let resp = conn.recv();
    assert_eq!(resp["ok"].as_bool(), Some(false));
    assert_eq!(resp["error"]["code"].as_str(), Some("bad_request"));
    assert!(
        resp["error"]["message"]
            .as_str()
            .unwrap()
            .contains("exceeds"),
        "{resp:?}"
    );
    conn.assert_usable();

    // Much larger (8 MiB of garbage in one line): still bounded memory,
    // still one in-band error, still usable.
    let mut huge = vec![b'x'; 8 * MAX_LINE_BYTES];
    huge.push(b'\n');
    conn.send_raw(&huge);
    let resp = conn.recv();
    assert_eq!(resp["ok"].as_bool(), Some(false));
    conn.assert_usable();

    server.join();
}

#[test]
fn a_flood_of_hostile_frames_never_wedges_the_server() {
    let server = Server::spawn(ServerConfig::default()).expect("spawn");
    let addr = server.local_addr();
    // Interleave hostile and honest frames back-to-back on one socket
    // without reading until the end: exercises pipelining through the
    // error paths.
    let mut conn = RawConn::open(addr);
    let mut expected = 0;
    for i in 0..50 {
        match i % 5 {
            0 => conn.send_raw(b"}{\n"),
            1 => conn.send_raw(b"{\"v\":1}\n"), // missing endpoint
            2 => conn.send_raw(b"[1,2,3]\n"),
            3 => conn.send_raw(b"{\"v\":1,\"endpoint\":\"no_such_endpoint\",\"id\":1}\n"),
            _ => conn.send_raw(b"{\"v\":1,\"endpoint\":\"ping\",\"id\":9}\n"),
        }
        expected += 1;
    }
    for _ in 0..expected {
        let resp = conn.recv();
        assert!(resp["ok"].as_bool().is_some());
    }
    conn.assert_usable();
    server.join();
}
