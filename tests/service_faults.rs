//! The fault-injection suite: many seeded simulation schedules driving
//! the full service core through injected transport faults, handler
//! panics, deadline skew, and shutdown races, asserting the three
//! harness invariants on every one (see `snakes_service::sim`).
//!
//! Reproduce a failing seed with:
//!
//! ```text
//! SNAKES_FAULT_SEED=<seed> cargo test --release --test service_faults -- --nocapture
//! ```
//!
//! Scale the sweep with `SNAKES_FAULT_SCHEDULES=<n>` (CI runs 1000 in
//! release mode; the debug default keeps `cargo test` quick).

use snakes_service::sim::{run_schedule, SimConfig};

fn schedule_count() -> u64 {
    if let Ok(n) = std::env::var("SNAKES_FAULT_SCHEDULES") {
        return n.parse().expect("SNAKES_FAULT_SCHEDULES must be a number");
    }
    if cfg!(debug_assertions) {
        40
    } else {
        1000
    }
}

fn check_seed(seed: u64) -> snakes_service::SimReport {
    let config = SimConfig::for_seed(seed);
    let report = run_schedule(&config);
    assert!(
        report.violations.is_empty(),
        "fault schedule violated the harness invariants:\n  {}\nreproduce with:\n  \
         SNAKES_FAULT_SEED={seed} cargo test --release --test service_faults -- --nocapture",
        report.violations.join("\n  "),
    );
    report
}

/// The sweep: every seed in `0..N` (or the single `SNAKES_FAULT_SEED`)
/// must hold all three invariants, and across the whole sweep every
/// fault class must actually have fired — a harness that injects nothing
/// proves nothing.
#[test]
fn seeded_fault_schedules_hold_the_invariants() {
    if let Ok(seed) = std::env::var("SNAKES_FAULT_SEED") {
        let seed = seed.parse().expect("SNAKES_FAULT_SEED must be a number");
        let report = check_seed(seed);
        println!("seed {seed}: {report:?}");
        return;
    }
    let mut totals = (0u64, 0u64, 0u64); // (torn, chunked, dropped)
    let mut panics = 0u64;
    let mut ok = 0u64;
    let mut requests = 0u64;
    let mut deduplicated = 0u64;
    let mut shed = 0u64;
    let mut rejected = 0u64;
    for seed in 0..schedule_count() {
        let report = check_seed(seed);
        totals.0 += report.transport_faults.0;
        totals.1 += report.transport_faults.1;
        totals.2 += report.transport_faults.2;
        panics += report.panics_caught;
        ok += report.ok;
        requests += report.requests;
        deduplicated += report.deduplicated;
        shed += report.shed;
        rejected += report.rejected;
    }
    println!(
        "{requests} requests over {} schedules: {ok} ok, {deduplicated} deduplicated, \
         {rejected} rejected by drains, {shed} shed, {panics} panics caught, \
         {} torn / {} chunked / {} dropped transport faults",
        schedule_count(),
        totals.0,
        totals.1,
        totals.2,
    );
    // Aggregate coverage: the sweep must have exercised every fault class.
    assert!(requests > 0 && ok > 0, "the sweep issued no traffic");
    assert!(totals.0 > 0, "no torn writes were ever injected");
    assert!(totals.1 > 0, "no chunked writes were ever injected");
    assert!(totals.2 > 0, "no connection drops were ever injected");
    assert!(panics > 0, "no handler panics were ever injected");
    assert!(
        deduplicated > 0,
        "no retry was ever answered from the idempotency cache — the dedup path went untested"
    );
}

/// Focused regression: a single chaotic seed with an aggressive fault mix
/// and a tiny queue, exercising load shedding and retry exhaustion
/// harder than the randomized sweep.
#[test]
fn aggressive_mix_on_a_tiny_queue() {
    let mut config = SimConfig::for_seed(12345);
    config.workers = 1;
    config.queue_capacity = 1;
    config.clients = 4;
    config.requests_per_client = 6;
    config.fault = snakes_service::FaultConfig::chaos(12345);
    config.fault.shutdown_race_pct = 0;
    config.shutdown_after_ms = None;
    let report = run_schedule(&config);
    assert!(
        report.violations.is_empty(),
        "violations: {:?}\nreproduce by rerunning this test",
        report.violations
    );
}

/// Focused regression: drains racing a saturated queue — the drain must
/// never drop an admitted request on the floor (each still gets its
/// response or an in-band error, and committed deltas survive).
///
/// Every handler execution is delayed against a single worker, so the
/// queue reliably holds admitted-but-unexecuted jobs at the moment the
/// drain closes it — the exact window where a broken `pop` strands work.
/// The admitted/finished accounting check in the harness turns that
/// stranding into a named violation instead of a hang.
#[test]
fn drain_races_admitted_requests() {
    for seed in [7u64, 21, 42, 64, 97, 130, 163, 196] {
        let mut config = SimConfig::for_seed(seed);
        config.workers = 1;
        config.queue_capacity = 4;
        config.clients = 3;
        config.requests_per_client = 6;
        config.fault = snakes_service::FaultConfig::quiet(seed);
        config.fault.delay_pct = 100;
        config.fault.max_delay_ms = 2;
        config.shutdown_after_ms = Some(2 + seed % 6);
        let report = run_schedule(&config);
        assert!(
            report.violations.is_empty(),
            "seed {seed} violations: {:?}\nreproduce with: SNAKES_FAULT_SEED={seed} cargo test \
             --release --test service_faults -- --nocapture",
            report.violations
        );
    }
}
