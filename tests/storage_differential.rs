//! Differential harness for the paged storage engine: a real
//! [`TableFile`] (slotted pages behind a buffer pool) must agree with the
//! analytic executor **exactly** — `u64` seek/block/record counts equal
//! per query, `f64` class and workload averages bit-identical — across
//! curve families (nested loops plain and snaked, lattice-path curves,
//! compact Hilbert), uniform and skewed (partially empty) grids up to
//! 4-D, and both analytic engines (cells and runs). The physical scan
//! also has to return the right *bytes*: every record surfaced by a scan
//! is checked against the cell it was loaded into.

use proptest::prelude::*;
use snakes_sandwiches::core::lattice::LatticeShape;
use snakes_sandwiches::core::path::LatticePath;
use snakes_sandwiches::core::schema::{Hierarchy, StarSchema};
use snakes_sandwiches::core::workload::Workload;
use snakes_sandwiches::curves::{
    path_curve, snaked_path_curve, CompactHilbert, Linearization, NestedLoops,
};
use snakes_sandwiches::storage::{
    class_stats_with, query_cost_with, workload_stats_opts, CellData, EvalEngine, EvalOptions,
    PackedLayout, StorageConfig, TableFile,
};
use std::io::Cursor;
use std::ops::Range;

/// Tiny pages so even toy grids span many pages and the pool must evict.
const CONFIG: StorageConfig = StorageConfig {
    page_size: 64,
    record_size: 16,
};

/// Record payload: the owning cell's linear index and the record's
/// ordinal within the cell, little-endian. Lets scans verify content,
/// not just cost.
fn record_bytes(cell_index: u64, ordinal: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    out.extend_from_slice(&cell_index.to_le_bytes());
    out.extend_from_slice(&ordinal.to_le_bytes());
    out
}

fn load_table(lin: &impl Linearization, cells: &CellData) -> TableFile<Cursor<Vec<u8>>> {
    let c = cells.clone();
    TableFile::create_in_memory(lin, cells, CONFIG, move |coords, i| {
        record_bytes(c.index(coords) as u64, i)
    })
    .expect("in-memory load cannot fail")
}

/// Uniform and skewed (some cells empty) populations for a grid.
fn populations(extents: &[u64]) -> Vec<CellData> {
    let n: u64 = extents.iter().product();
    vec![
        CellData::from_counts(extents.to_vec(), vec![3; n as usize]),
        CellData::from_counts(
            extents.to_vec(),
            (0..n).map(|i| (i * 7) % 11).collect(), // skewed, some empty
        ),
    ]
}

/// The curve families under test: nested loops (plain and snaked, every
/// rotation of the nesting order) plus compact Hilbert.
fn curve_family(extents: &[u64]) -> Vec<(String, Box<dyn Linearization + Sync>)> {
    let k = extents.len();
    let mut out: Vec<(String, Box<dyn Linearization + Sync>)> = Vec::new();
    for s in 0..k {
        let order: Vec<usize> = (0..k).map(|i| (i + s) % k).collect();
        out.push((
            format!("row_major{order:?}"),
            Box::new(NestedLoops::row_major(extents.to_vec(), &order)),
        ));
        out.push((
            format!("boustrophedon{order:?}"),
            Box::new(NestedLoops::boustrophedon(extents.to_vec(), &order)),
        ));
    }
    out.push((
        "compact_hilbert".to_string(),
        Box::new(CompactHilbert::new(extents.to_vec())),
    ));
    out
}

/// Deterministic query boxes from a seed (splitmix-style).
fn seeded_queries(seed: u64, extents: &[u64], count: usize) -> Vec<Vec<Range<u64>>> {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    (0..count)
        .map(|_| {
            extents
                .iter()
                .map(|&e| {
                    let lo = next() % e;
                    let hi = lo + 1 + next() % (e - lo);
                    lo..hi
                })
                .collect()
        })
        .collect()
}

/// An irregular workload so no two class weights tie and the weighted
/// reductions exercise genuinely distinct probabilities.
fn irregular_workload(shape: &LatticeShape) -> Workload {
    let n = shape.num_classes();
    Workload::from_weights(
        shape.clone(),
        (0..n).map(|r| 1.0 + (r as f64) * 0.31).collect(),
    )
    .expect("non-empty weights")
}

/// Physical per-query scans equal the analytic per-query costs — both
/// engines, integer field by integer field — and every scanned record's
/// payload identifies the cell the scan claims it came from.
#[test]
fn per_query_costs_and_bytes_match() {
    let extents = vec![4u64, 3, 2];
    for cells in populations(&extents) {
        for (name, lin) in curve_family(&extents) {
            let lin: &(dyn Linearization + Sync) = lin.as_ref();
            let layout = PackedLayout::pack(&lin, &cells, CONFIG);
            let mut table = load_table(&lin, &cells);
            for (qi, q) in seeded_queries(0xD1FF, &extents, 12).into_iter().enumerate() {
                let mut scanned = 0u64;
                let physical = table
                    .scan_with_cells(&lin, &q, |coords, rec| {
                        let idx = u64::from_le_bytes(rec[..8].try_into().unwrap());
                        assert_eq!(
                            idx,
                            cells.index(coords) as u64,
                            "curve {name} query {qi}: record bytes belong to another cell"
                        );
                        scanned += 1;
                    })
                    .expect("in-memory scan cannot fail");
                assert_eq!(scanned, physical.records, "curve {name} query {qi}");
                assert_eq!(
                    physical.records,
                    cells.records_in(&q),
                    "curve {name} query {qi}"
                );
                for engine in [EvalEngine::Cells, EvalEngine::Runs] {
                    let analytic = query_cost_with(&lin, &layout, &q, engine);
                    assert_eq!(
                        analytic, physical,
                        "curve {name} query {qi} engine {engine} diverged"
                    );
                }
            }
        }
    }
}

/// Runs the full class-by-class and workload-level comparison for one
/// schema: physical measurements bit-identical to both analytic engines.
fn check_schema(schema: &StarSchema) {
    let shape = LatticeShape::of_schema(schema);
    let extents = schema.grid_shape();
    for cells in populations(&extents) {
        let mut curves = curve_family(&extents);
        for p in LatticePath::enumerate(&shape).into_iter().take(2) {
            curves.push((format!("path {p}"), Box::new(path_curve(schema, &p))));
            curves.push((
                format!("snaked path {p}"),
                Box::new(snaked_path_curve(schema, &p)),
            ));
        }
        for (name, lin) in curves {
            let lin: &(dyn Linearization + Sync) = lin.as_ref();
            let layout = PackedLayout::pack(&lin, &cells, CONFIG);
            let mut table = load_table(&lin, &cells);
            for class in shape.iter() {
                let physical = table
                    .class_stats(schema, &lin, &class)
                    .expect("in-memory measurement cannot fail");
                for engine in [EvalEngine::Cells, EvalEngine::Runs] {
                    let analytic = class_stats_with(schema, &lin, &layout, &class, engine);
                    let ctx = format!("curve {name} class {class} engine {engine}");
                    assert_eq!(analytic.queries, physical.queries, "{ctx} queries");
                    assert_eq!(
                        analytic.non_empty_queries, physical.non_empty_queries,
                        "{ctx} non-empty"
                    );
                    assert_eq!(analytic.max_seeks, physical.max_seeks, "{ctx} max seeks");
                    assert_eq!(
                        analytic.avg_seeks.to_bits(),
                        physical.avg_seeks.to_bits(),
                        "{ctx} seeks not bit-identical"
                    );
                    assert_eq!(
                        analytic.avg_normalized_blocks.to_bits(),
                        physical.avg_normalized_blocks.to_bits(),
                        "{ctx} blocks not bit-identical"
                    );
                }
            }
            let workload = irregular_workload(&shape);
            let physical = table
                .workload_stats(schema, &lin, &workload)
                .expect("in-memory measurement cannot fail");
            for engine in [EvalEngine::Cells, EvalEngine::Runs] {
                let analytic = workload_stats_opts(
                    schema,
                    &lin,
                    &layout,
                    &workload,
                    &EvalOptions::serial().engine(engine),
                );
                let ctx = format!("curve {name} engine {engine}");
                assert_eq!(
                    analytic.avg_seeks.to_bits(),
                    physical.avg_seeks.to_bits(),
                    "{ctx} workload seeks"
                );
                assert_eq!(
                    analytic.avg_normalized_blocks.to_bits(),
                    physical.avg_normalized_blocks.to_bits(),
                    "{ctx} workload blocks"
                );
                assert_eq!(analytic.per_class, physical.per_class, "{ctx} per-class");
            }
            // The scans really went through the pool: with 64-byte pages
            // even toy grids overflow the default pool capacity check.
            let stats = table.pool_stats();
            assert!(stats.misses > 0, "curve {name}: no physical page reads");
            assert!(
                stats.physical_writes > 0,
                "curve {name}: bulk load wrote no pages"
            );
        }
    }
}

/// The paper-shaped deterministic case: 3-D with multi-level
/// hierarchies, every class in the lattice.
#[test]
fn class_and_workload_stats_bit_identical_3d() {
    let schema = StarSchema::new(vec![
        Hierarchy::new("a", vec![3, 2]).unwrap(),
        Hierarchy::new("b", vec![4]).unwrap(),
        Hierarchy::new("c", vec![2, 2]).unwrap(),
    ])
    .unwrap();
    check_schema(&schema);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Random schemas up to 4-D: the physical engine stays bit-identical
    /// to both analytic engines on every curve family.
    #[test]
    fn physical_matches_analytic_on_random_schemas(
        dims in proptest::collection::vec(proptest::collection::vec(2u64..=3, 1..=2), 1..=4),
    ) {
        let schema = StarSchema::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, f)| Hierarchy::new(format!("d{i}"), f).expect("valid fanouts"))
                .collect(),
        )
        .expect("non-empty");
        check_schema(&schema);
    }
}
