//! One table-driven test per published number: every entry of the paper's
//! Tables 1-3 (with the two documented errata), asserted against the
//! regenerated tables of the reproduction harness.

use snakes_bench::{toy, TextTable};

fn cell(t: &TextTable, row_key: &str, col: &str) -> String {
    let ci = t.column(col).unwrap_or_else(|| panic!("no column {col}"));
    for r in 0..t.num_rows() {
        if t.cell(r, 0) == row_key {
            return t.cell(r, ci).to_string();
        }
    }
    panic!("no row {row_key}");
}

#[test]
fn table_1_every_entry() {
    let t = toy::table1();
    // (class, P1, P2, H, ~P1, ~P2) — the paper's Table 1 verbatim, except
    // ~P2/(2,0) where the paper's own formula gives 11/4 (not 12/4).
    let expected = [
        ("(0,0)", "16/16", "16/16", "16/16", "16/16", "16/16"),
        ("(1,1)", "8/4", "4/4", "4/4", "6/4", "4/4"),
        ("(2,2)", "1/1", "1/1", "1/1", "1/1", "1/1"),
        ("(1,0)", "16/8", "16/8", "10/8", "14/8", "12/8"),
        ("(0,1)", "8/8", "8/8", "10/8", "8/8", "8/8"),
        ("(2,0)", "16/4", "16/4", "8/4", "13/4", "11/4"),
        ("(0,2)", "4/4", "8/4", "9/4", "4/4", "6/4"),
        ("(2,1)", "8/2", "4/2", "2/2", "5/2", "3/2"),
        ("(1,2)", "2/2", "2/2", "3/2", "2/2", "2/2"),
    ];
    for (class, p1, p2, h, sp1, sp2) in expected {
        assert_eq!(cell(&t, class, "P1"), p1, "{class} P1");
        assert_eq!(cell(&t, class, "P2"), p2, "{class} P2");
        assert_eq!(cell(&t, class, "H"), h, "{class} H");
        assert_eq!(cell(&t, class, "~P1"), sp1, "{class} ~P1");
        assert_eq!(cell(&t, class, "~P2"), sp2, "{class} ~P2");
    }
}

#[test]
fn table_2_every_entry() {
    let t = toy::table2();
    // Paper fractions; ~P2 workloads 1-2 use the self-consistent values.
    let expected: [(&str, [f64; 5]); 3] = [
        (
            "1",
            [17.0 / 9.0, 15.0 / 9.0, 49.0 / 36.0, 14.0 / 9.0, 49.0 / 36.0],
        ),
        (
            "2",
            [
                13.0 / 6.0,
                11.0 / 6.0,
                31.0 / 24.0,
                21.0 / 12.0,
                35.0 / 24.0,
            ],
        ),
        ("3", [1.0, 5.0 / 4.0, 3.0 / 2.0, 1.0, 9.0 / 8.0]),
    ];
    for (row, vals) in expected {
        for (col, want) in ["P1", "P2", "H", "~P1", "~P2"].iter().zip(vals) {
            let got: f64 = cell(&t, row, col).parse().unwrap();
            assert!(
                (got - want).abs() < 5e-5,
                "workload {row} {col}: {got} vs {want}"
            );
        }
    }
}

#[test]
fn table_3_tracks_paper_percentages() {
    // Paper: 72/61/52, 60/42/27, 67/30/0.7 (%), fanouts 2/4/32. The 32
    // column is heavy (1M-cell Hilbert CV); keep this test at 2 and 4 and
    // let the repro binary cover 32 (EXPERIMENTS.md records 51.5/27.0/0.7).
    let t = toy::table3(&[2, 4]);
    let pct =
        |row: &str, col: &str| -> f64 { cell(&t, row, col).trim_end_matches('%').parse().unwrap() };
    let expected = [("1", 72.0, 61.0), ("2", 60.0, 42.0), ("3", 67.0, 30.0)];
    for (row, f2, f4) in expected {
        assert!((pct(row, "fanout=2") - f2).abs() < 1.5, "w{row} f2");
        assert!((pct(row, "fanout=4") - f4).abs() < 1.5, "w{row} f4");
    }
}

/// The fanout-32 column of Table 3 — heavy (the 1024x1024 Hilbert CV), so
/// ignored by default; run with `cargo test --release -- --ignored`.
/// Paper: 52 / 27 / 0.7 %.
#[test]
#[ignore = "1M-cell Hilbert CV; run with --release -- --ignored"]
fn table_3_fanout_32_column() {
    let t = toy::table3(&[32]);
    let pct = |row: &str| -> f64 {
        cell(&t, row, "fanout=32")
            .trim_end_matches('%')
            .parse()
            .unwrap()
    };
    assert!((pct("1") - 52.0).abs() < 1.0);
    assert!((pct("2") - 27.0).abs() < 1.0);
    assert!((pct("3") - 0.7).abs() < 0.2);
}

#[test]
fn theorem_3_numbers() {
    let t = toy::theorem3(6);
    // 1/(1/2 + 1/2^{n+1}) for n = 1..6.
    let expected = [
        4.0 / 3.0,
        8.0 / 5.0,
        16.0 / 9.0,
        32.0 / 17.0,
        64.0 / 33.0,
        128.0 / 65.0,
    ];
    for (r, want) in expected.iter().enumerate() {
        let measured: f64 = t.cell(r, 1).parse().unwrap();
        assert!((measured - want).abs() < 1e-5, "n={}", r + 1);
    }
}
