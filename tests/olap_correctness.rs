//! Cross-crate OLAP correctness: grouped aggregates computed through the
//! full physical stack (generate → recommend → bulk load → scan → hash
//! group-by) must equal aggregates recomputed independently from the
//! generator's cell counts.

use snakes_sandwiches::prelude::*;
use snakes_sandwiches::storage::TableFile;
use snakes_sandwiches::tpcd::{generate_cells, group_by_sum, warehouse, LineItem};

/// The measure both sides aggregate.
fn quantity(rec: &[u8]) -> f64 {
    LineItem::decode(rec).quantity
}

/// Recomputes a group-by directly from the cell counts and the
/// deterministic record synthesizer, bypassing storage entirely.
fn reference_group_by(
    wh: &Warehouse,
    cells: &snakes_sandwiches::storage::CellData,
    query: &GridQuery,
    group_levels: &[usize],
) -> std::collections::BTreeMap<Vec<u64>, (f64, u64)> {
    let ranges = query.ranges(wh);
    let mut out: std::collections::BTreeMap<Vec<u64>, (f64, u64)> = Default::default();
    let extents: Vec<u64> = ranges.iter().map(|r| r.end).collect();
    let mut coords: Vec<u64> = ranges.iter().map(|r| r.start).collect();
    let _ = extents;
    'outer: loop {
        let count = cells.count(&coords);
        if count > 0 {
            let key: Vec<u64> = coords
                .iter()
                .zip(wh.dims())
                .zip(group_levels)
                .map(|((&leaf, dim), &lvl)| {
                    if lvl == dim.levels() {
                        0
                    } else {
                        dim.hierarchy().ancestor_at_level(lvl, leaf)
                    }
                })
                .collect();
            let entry = out.entry(key).or_insert((0.0, 0));
            for i in 0..count {
                let rec =
                    LineItem::synthetic(coords[0] as u32, coords[1] as u32, coords[2] as u32, i);
                entry.0 += rec.quantity;
                entry.1 += 1;
            }
        }
        let mut d = 0;
        loop {
            if d == coords.len() {
                break 'outer;
            }
            coords[d] += 1;
            if coords[d] < ranges[d].end {
                break;
            }
            coords[d] = ranges[d].start;
            d += 1;
        }
    }
    out
}

#[test]
fn physical_group_by_equals_reference() {
    let config = TpcdConfig {
        records: 25_000,
        ..TpcdConfig::small()
    };
    let wh = warehouse(&config);
    let schema = wh.schema();
    let shape = LatticeShape::of_schema(&schema);
    let rec = recommend(&schema, &Workload::uniform(shape));
    let curve = snaked_path_curve(&schema, &rec.optimal_path);
    let cells = generate_cells(&config);
    let mut table = TableFile::create_in_memory(&curve, &cells, config.storage(), |c, i| {
        LineItem::synthetic(c[0] as u32, c[1] as u32, c[2] as u32, i)
            .encode()
            .to_vec()
    })
    .unwrap();

    let cases = [
        // (query selections, group levels)
        (vec![("time", "1994")], vec![1, 1, 2]),
        (vec![("parts", "MFR#1")], vec![0, 0, 1]),
        (
            vec![("supplier", "SUPP#5"), ("time", "1993")],
            vec![1, 0, 1],
        ),
    ];
    for (sels, group_levels) in cases {
        let mut b = wh.query();
        for (dim, member) in &sels {
            b = b.select(dim, member).unwrap();
        }
        let q = b.build();
        let physical = group_by_sum(&wh, &mut table, &curve, &q, &group_levels, quantity).unwrap();
        let reference = reference_group_by(&wh, &cells, &q, &group_levels);
        assert_eq!(
            physical.groups.len(),
            reference.len(),
            "group count for {sels:?}"
        );
        for g in &physical.groups {
            let (sum, rows) = reference
                .get(&g.key)
                .unwrap_or_else(|| panic!("missing group {:?}", g.key));
            assert_eq!(g.rows, *rows, "rows of group {:?}", g.key);
            assert!(
                (g.sum - sum).abs() < 1e-6 * sum.abs().max(1.0),
                "sum of group {:?}: {} vs {}",
                g.key,
                g.sum,
                sum
            );
        }
    }
}

#[test]
fn group_by_is_layout_independent() {
    // The same aggregate must come out of any clustering.
    let config = TpcdConfig {
        records: 15_000,
        ..TpcdConfig::small()
    };
    let wh = warehouse(&config);
    let schema = wh.schema();
    let shape = LatticeShape::of_schema(&schema);
    let cells = generate_cells(&config);
    let q = wh.query().select("time", "1995").unwrap().build();
    let group_levels = vec![1, 1, 2];
    let mut results = Vec::new();
    for path in [
        LatticePath::row_major(shape.clone(), &[0, 1, 2]).unwrap(),
        LatticePath::row_major(shape.clone(), &[2, 1, 0]).unwrap(),
    ] {
        let curve = snaked_path_curve(&schema, &path);
        let mut table = TableFile::create_in_memory(&curve, &cells, config.storage(), |c, i| {
            LineItem::synthetic(c[0] as u32, c[1] as u32, c[2] as u32, i)
                .encode()
                .to_vec()
        })
        .unwrap();
        let out = group_by_sum(&wh, &mut table, &curve, &q, &group_levels, quantity).unwrap();
        results.push(out.groups);
    }
    assert_eq!(results[0], results[1]);
}
